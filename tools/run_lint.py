#!/usr/bin/env python
"""Run repro-lint from a source checkout (no installation needed).

Thin wrapper over :mod:`repro.lint.cli` that bootstraps ``src`` onto
``sys.path`` and runs from the repository root, so CI and pre-commit
hooks can invoke it as::

    python tools/run_lint.py                    # lint src/repro vs baseline
    python tools/run_lint.py --list-rules
    python tools/run_lint.py --no-baseline --format json
    python tools/run_lint.py --format sarif --output repro-lint.sarif
    python tools/run_lint.py --summary-cache .repro-lint-cache
    python tools/run_lint.py --report-unused-suppressions

Exit status: 0 clean, 1 findings, 2 usage error (same as the CLI).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv: list[str] | None = None) -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    os.chdir(REPO_ROOT)
    from repro.lint.cli import main as lint_main

    return lint_main(argv)


if __name__ == "__main__":
    raise SystemExit(main())

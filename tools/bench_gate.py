#!/usr/bin/env python3
"""Tracked perf-regression gate over ``benchmarks/bench_micro.py``.

The micro-bench suite measures the simulation kernel's hot paths and
keeps the pre-optimisation implementations alive as in-run references
(``*_legacy`` twins), so every speedup ratio is computed inside one
process on one machine.  This script turns those measurements into a
*tracked* artifact:

``--write``
    Run the suite and write a schema-versioned baseline
    (``BENCH_PR10.json`` at the repo root) recording per-bench
    mean/stddev/rounds, end-to-end jobs/second, in-run speedup ratios,
    a machine-independent *trace fingerprint* (SHA-256 over the
    schedule signature each bench workload produces), the
    streaming-vs-eager ingestion RSS comparison, and the
    shared-memory dispatch bench (pickled bytes-per-cell, inline vs
    ``jobs_ref``, on a 120k-job x 24-cell grid).

``--check``
    Run the suite fresh, write the report to ``--out`` (a CI artifact),
    then compare against the newest committed ``BENCH_*.json``:

    * the trace fingerprints must match **exactly** -- a perf PR that
      changes any schedule is rejected outright, machine-independent;
    * the asserted speedup floors (SS vs the retained legacy kernel,
      >= 1.5x on both the SDSC-400 and congested traces) must hold;
    * the dispatch payload reduction (inline bytes-per-cell over ref
      bytes-per-cell) must stay >= 10x -- byte counts, so the floor is
      machine-independent;
    * no bench may regress by more than ``--threshold`` (default 25%)
      in *normalised* time -- each bench's per-round minimum is divided
      by the same run's event-queue minimum, so a slower CI machine
      does not fail the gate but a slower kernel does.  Minimums, not
      means: scheduler noise only ever adds time, so the min survives
      a busy single-vCPU runner that would wreck every mean.

Absolute wall-clock numbers are recorded for the human reading the
artifact; only normalised quantities, byte ratios and fingerprints gate.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import hashlib
import json
import os
import pickle
import platform
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any

REPO_ROOT = Path(__file__).resolve().parent.parent

SCHEMA = "repro.bench_gate/v1"

#: bench used as the machine-speed proxy for normalisation; pure-python
#: heap churn with no kernel code on the path
REFERENCE_BENCH = "test_event_queue_push_pop"

#: in-run speedup floors the ISSUE's acceptance criteria assert
SPEEDUP_FLOORS = {
    "ss_sdsc400_vs_legacy": 1.5,
    "ss_congested_vs_legacy": 1.5,
}

#: fast-kernel bench -> its retained legacy twin
SPEEDUP_PAIRS = {
    "ss_sdsc400_vs_legacy": (
        "test_simulation_rate_ss",
        "test_simulation_rate_ss_legacy_sweep",
    ),
    "ss_congested_vs_legacy": (
        "test_simulation_rate_ss_congested",
        "test_simulation_rate_ss_congested_legacy",
    ),
    "profile_vs_legacy": (
        "test_profile_claim_and_anchor",
        "test_profile_claim_and_anchor_legacy",
    ),
    "cluster_vs_legacy": (
        "test_cluster_allocate_release",
        "test_cluster_allocate_release_legacy",
    ),
}

#: simulation-rate bench -> number of jobs it schedules per round
JOBS_PER_ROUND = {
    "test_simulation_rate_easy": 400,
    "test_simulation_rate_ss": 400,
    "test_simulation_rate_ss_congested": 700,
    "test_swf_stream_parse": 20_000,
    "test_swf_stream_to_jobs": 20_000,
}

#: jobs in the generated log the peak-RSS ingestion gate streams
#: (the ISSUE's acceptance floor is >= 100k)
INGESTION_LOG_JOBS = 120_000

#: workload size / grid width of the shared-memory dispatch bench
DISPATCH_JOBS = 120_000
DISPATCH_CELLS = 24

#: an inline cell's pickle must be at least this many times larger than
#: a ``jobs_ref`` cell's -- the zero-copy plane's acceptance floor.
#: Byte counts are deterministic, so this gate is machine-independent.
DISPATCH_REDUCTION_MIN = 10.0

#: the streaming reader's peak RSS may be at most this fraction of the
#: eager reader's on the same log.  The eager path materialises every
#: SWFRecord and Job; the streaming path holds one of each, so its RSS
#: is the interpreter baseline -- in practice the ratio sits near 0.25.
#: Comparing two child processes on the same machine in the same run
#: makes the bound machine-independent, unlike an absolute RSS cap.
INGESTION_RSS_RATIO_MAX = 0.6

#: child measured for streaming ingestion: parse + convert the whole
#: log with the iterator API, count jobs, report peak RSS (ru_maxrss is
#: KB on Linux) and wall time
_INGEST_STREAM_CHILD = """
import json, resource, sys, time
from repro.workload.swf import stream_jobs, stream_swf
t0 = time.perf_counter()
n = sum(1 for _ in stream_jobs(stream_swf(sys.argv[1]), max_procs=128))
dt = time.perf_counter() - t0
rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({"jobs": n, "maxrss_kb": rss, "seconds": dt}))
"""

#: child measured for eager ingestion: same log, whole-list API
_INGEST_EAGER_CHILD = """
import json, resource, sys, time
from repro.workload.swf import jobs_from_swf_records, read_swf
t0 = time.perf_counter()
records = read_swf(sys.argv[1])
jobs = jobs_from_swf_records(records, max_procs=128)
dt = time.perf_counter() - t0
rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({"jobs": len(jobs), "maxrss_kb": rss, "seconds": dt}))
"""


def _run_ingest_child(code: str, log_path: Path) -> dict[str, Any]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-c", code, str(log_path)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    if proc.returncode != 0:
        raise SystemExit(f"ingestion child failed:\n{proc.stderr[-2000:]}")
    result: dict[str, Any] = json.loads(proc.stdout.strip().splitlines()[-1])
    return result


def ingestion_report() -> dict[str, Any]:
    """Measure streaming-vs-eager peak RSS on a generated >=100k-job log.

    Each reader runs in its own child process so ``ru_maxrss`` isolates
    exactly one strategy; the gate asserts the streaming reader's peak
    stays under :data:`INGESTION_RSS_RATIO_MAX` of the eager reader's --
    the O(chunk)-vs-O(log) memory claim of docs/WORKLOADS.md, enforced.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.workload.swf import write_synthetic_swf

    with tempfile.TemporaryDirectory() as tmp:
        log = Path(tmp) / "ingest.swf"
        write_synthetic_swf(log, INGESTION_LOG_JOBS)
        streaming = _run_ingest_child(_INGEST_STREAM_CHILD, log)
        eager = _run_ingest_child(_INGEST_EAGER_CHILD, log)
    ratio = streaming["maxrss_kb"] / max(eager["maxrss_kb"], 1)
    return {
        "log_jobs": INGESTION_LOG_JOBS,
        "streaming": streaming,
        "eager": eager,
        "rss_ratio": ratio,
        "rss_ratio_max": INGESTION_RSS_RATIO_MAX,
    }


def check_ingestion(ingestion: dict[str, Any]) -> list[str]:
    """Gate violations of one :func:`ingestion_report` result (empty = pass)."""
    problems: list[str] = []
    streamed = ingestion["streaming"]["jobs"]
    if streamed != INGESTION_LOG_JOBS:
        problems.append(
            f"streaming reader returned {streamed} jobs, "
            f"expected {INGESTION_LOG_JOBS}"
        )
    if streamed != ingestion["eager"]["jobs"]:
        problems.append(
            f"streaming ({streamed}) and eager ({ingestion['eager']['jobs']}) "
            "readers disagree on job count"
        )
    if ingestion["rss_ratio"] > INGESTION_RSS_RATIO_MAX:
        problems.append(
            f"streaming peak RSS is {ingestion['rss_ratio']:.2f}x the eager "
            f"reader's (limit {INGESTION_RSS_RATIO_MAX}); the parser is no "
            "longer O(chunk) memory"
        )
    return problems


def dispatch_report() -> dict[str, Any]:
    """Measure dispatch payload: inline cells vs shared-memory refs.

    Builds one deterministic 120k-job workload (plain arithmetic, no
    RNG) and a 24-cell scheduler sweep over it, then compares what the
    grid executor would actually ship to workers: ``pickle.dumps`` of
    every inline cell vs every ``jobs_ref`` cell (after publishing the
    workload once to a :class:`~repro.experiments.shm.WorkloadPlane`).
    Wall-clock for both serialisation passes plus the one-time
    worker-side decode is recorded for the human; only the byte ratio
    gates.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.core.selective_suspension import SelectiveSuspensionScheduler
    from repro.experiments.parallel import GridCell
    from repro.experiments.shm import WorkloadPlane, resolve_jobs
    from repro.workload.job import Job

    jobs = [
        Job(
            job_id=i,
            submit_time=float(i),
            run_time=300.0 + (i % 977),
            estimate=600.0 + (i % 977),
            procs=1 + (i % 64),
            memory_mb=float(i % 512),
            user=i % 100,
        )
        for i in range(DISPATCH_JOBS)
    ]
    configs = [
        SelectiveSuspensionScheduler(1.0 + 0.25 * k).config()
        for k in range(DISPATCH_CELLS)
    ]

    t0 = time.perf_counter()
    inline_blobs = [
        pickle.dumps(
            GridCell(key=f"inline{k}", jobs=jobs, n_procs=128, scheduler_config=cfg)
        )
        for k, cfg in enumerate(configs)
    ]
    inline_seconds = time.perf_counter() - t0

    plane = WorkloadPlane()
    try:
        t0 = time.perf_counter()
        ref = plane.publish(jobs)
        if ref is None:
            raise SystemExit("dispatch bench: shared memory unavailable")
        publish_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        ref_blobs = [
            pickle.dumps(
                GridCell(key=f"ref{k}", jobs_ref=ref, n_procs=128, scheduler_config=cfg)
            )
            for k, cfg in enumerate(configs)
        ]
        ref_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        decoded = resolve_jobs(ref)  # cold: what one worker pays, once
        decode_seconds = time.perf_counter() - t0
        if len(decoded) != DISPATCH_JOBS:
            raise SystemExit(
                f"dispatch bench: decode returned {len(decoded)} jobs, "
                f"expected {DISPATCH_JOBS}"
            )
    finally:
        plane.close()

    inline_bytes = sum(map(len, inline_blobs)) / DISPATCH_CELLS
    ref_bytes = sum(map(len, ref_blobs)) / DISPATCH_CELLS
    return {
        "jobs": DISPATCH_JOBS,
        "cells": DISPATCH_CELLS,
        "inline_bytes_per_cell": inline_bytes,
        "ref_bytes_per_cell": ref_bytes,
        "payload_reduction": inline_bytes / ref_bytes,
        "payload_reduction_min": DISPATCH_REDUCTION_MIN,
        "inline_pickle_seconds": inline_seconds,
        "publish_seconds": publish_seconds,
        "ref_pickle_seconds": ref_seconds,
        "decode_seconds": decode_seconds,
    }


def check_dispatch(dispatch: dict[str, Any]) -> list[str]:
    """Gate violations of one :func:`dispatch_report` result (empty = pass)."""
    problems: list[str] = []
    reduction = dispatch.get("payload_reduction", 0.0)
    if reduction < DISPATCH_REDUCTION_MIN:
        problems.append(
            f"dispatch payload reduction {reduction:.1f}x fell below the "
            f"{DISPATCH_REDUCTION_MIN:.0f}x floor "
            f"({dispatch.get('inline_bytes_per_cell', 0):,.0f} B inline vs "
            f"{dispatch.get('ref_bytes_per_cell', 0):,.0f} B per ref cell)"
        )
    return problems


def run_bench_suite() -> dict[str, Any]:
    """Run bench_micro under pytest-benchmark, return the parsed JSON."""
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "bench.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.setdefault("PYTHONHASHSEED", "0")
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            "benchmarks/bench_micro.py",
            "-q",
            "-p",
            "no:randomly",
            f"--benchmark-json={json_path}",
        ]
        proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
        if proc.returncode != 0:
            raise SystemExit(f"bench suite failed (exit {proc.returncode})")
        with open(json_path, encoding="utf-8") as fh:
            data: dict[str, Any] = json.load(fh)
        return data


def trace_fingerprints() -> dict[str, str]:
    """Machine-independent SHA-256 of each bench workload's schedule.

    Re-runs the optimised kernel on the exact workloads bench_micro
    times and hashes the externally observable per-job outcome
    (job id, first start, finish, suspension count).  Any divergence
    between two machines or two commits means the *schedule* changed,
    which a perf PR must never do.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.core.selective_suspension import SelectiveSuspensionScheduler
    from repro.sim.driver import SchedulingSimulation
    from repro.cluster.machine import Cluster
    from repro.workload.load import scale_load
    from repro.workload.synthetic import generate_trace

    def run_signature(jobs: list[Any]) -> str:
        driver = SchedulingSimulation(
            cluster=Cluster(128),
            scheduler=SelectiveSuspensionScheduler(suspension_factor=2.0),
        )
        result = driver.run(jobs)
        sig = [
            (j.job_id, j.first_start_time, j.finish_time, j.suspension_count)
            for j in result.jobs
        ]
        blob = json.dumps(sig, separators=(",", ":")).encode()
        return hashlib.sha256(blob).hexdigest()

    return {
        "ss_sdsc400": run_signature(generate_trace("SDSC", n_jobs=400, seed=3)),
        "ss_congested700": run_signature(
            scale_load(generate_trace("SDSC", n_jobs=700, seed=5), 1.8)
        ),
    }


def build_report(raw: dict[str, Any]) -> dict[str, Any]:
    """Distil the pytest-benchmark JSON into the gate's schema."""
    benches: dict[str, dict[str, Any]] = {}
    for b in raw.get("benchmarks", []):
        stats = b["stats"]
        benches[b["name"]] = {
            "mean_s": stats["mean"],
            "stddev_s": stats["stddev"],
            "median_s": stats["median"],
            "min_s": stats["min"],
            "rounds": stats["rounds"],
        }

    ref = benches.get(REFERENCE_BENCH)
    if ref is None:
        raise SystemExit(f"reference bench {REFERENCE_BENCH!r} missing from run")
    # Gate on per-round *minimums*, not means: scheduler noise (CI
    # runners are often single-vCPU and share the core with the
    # harness) only ever adds time, so the min is the one statistic a
    # busy neighbour cannot inflate -- it needs just one quiet round.
    # Means are still recorded in "benches" for the human reader.
    ref_min = ref["min_s"]

    normalised = {
        name: stats["min_s"] / ref_min
        for name, stats in sorted(benches.items())
        if name != REFERENCE_BENCH
    }

    speedups: dict[str, float] = {}
    for label, (fast, slow) in SPEEDUP_PAIRS.items():
        if fast in benches and slow in benches:
            speedups[label] = benches[slow]["min_s"] / benches[fast]["min_s"]

    rates = {
        name: JOBS_PER_ROUND[name] / benches[name]["min_s"]
        for name in JOBS_PER_ROUND
        if name in benches
    }

    return {
        "schema": SCHEMA,
        "generated_utc": _dt.datetime.now(_dt.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine_dependent": ["benches", "jobs_per_second", "ingestion"],
        "machine_independent": ["normalised", "speedups", "trace_fingerprints"],
        # dispatch wall-clocks are machine-dependent; its gating ratio
        # (payload_reduction) is a byte count and machine-independent
        "benches": benches,
        "jobs_per_second": rates,
        "normalised": normalised,
        "speedups": speedups,
        "trace_fingerprints": trace_fingerprints(),
        "ingestion": ingestion_report(),
        "dispatch": dispatch_report(),
    }


def newest_baseline(exclude: Path | None = None) -> Path | None:
    """Newest committed ``BENCH_*.json`` at the repo root, by PR number."""

    def pr_key(p: Path) -> tuple[int, str]:
        m = re.search(r"(\d+)", p.stem)
        return (int(m.group(1)) if m else -1, p.name)

    candidates = [
        p
        for p in REPO_ROOT.glob("BENCH_*.json")
        if exclude is None or p.resolve() != exclude.resolve()
    ]
    return max(candidates, key=pr_key) if candidates else None


def check_report(
    report: dict[str, Any], baseline: dict[str, Any], threshold: float
) -> list[str]:
    """All gate violations of *report* against *baseline* (empty = pass)."""
    problems: list[str] = []

    for name, want in baseline.get("trace_fingerprints", {}).items():
        got = report["trace_fingerprints"].get(name)
        if got != want:
            problems.append(
                f"trace fingerprint {name!r} changed: {want} -> {got} "
                "(the schedule itself changed; a perf PR must not do that)"
            )

    for label, floor in SPEEDUP_FLOORS.items():
        got_speedup = report["speedups"].get(label, 0.0)
        if got_speedup < floor:
            problems.append(
                f"speedup {label!r} = {got_speedup:.2f}x fell below the "
                f"asserted floor {floor:.1f}x"
            )

    base_norm = baseline.get("normalised", {})
    for name, base_val in sorted(base_norm.items()):
        cur_val = report["normalised"].get(name)
        if cur_val is None:
            problems.append(f"bench {name!r} disappeared from the suite")
            continue
        if cur_val > base_val * (1.0 + threshold):
            problems.append(
                f"bench {name!r} regressed: normalised time "
                f"{base_val:.2f} -> {cur_val:.2f} "
                f"(> {threshold:.0%} threshold)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--write",
        action="store_true",
        help="run the suite and write a new committed baseline",
    )
    mode.add_argument(
        "--check",
        action="store_true",
        help="run the suite and gate against the newest BENCH_*.json",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="report path (default: BENCH_PR10.json for --write, "
        "bench_report.json for --check)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="max allowed normalised-time regression (default 0.25 = 25%%)",
    )
    args = parser.parse_args(argv)

    out = args.out or (
        REPO_ROOT / ("BENCH_PR10.json" if args.write else "bench_report.json")
    )

    raw = run_bench_suite()
    report = build_report(raw)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"bench_gate: wrote {out}")
    for label, val in sorted(report["speedups"].items()):
        print(f"  speedup {label}: {val:.2f}x")
    for name, val in sorted(report["jobs_per_second"].items()):
        print(f"  rate {name}: {val:,.0f} jobs/s")
    ing = report["ingestion"]
    print(
        f"  ingestion RSS ({ing['log_jobs']:,} jobs): streaming "
        f"{ing['streaming']['maxrss_kb'] / 1024:.0f} MB vs eager "
        f"{ing['eager']['maxrss_kb'] / 1024:.0f} MB "
        f"(ratio {ing['rss_ratio']:.2f}, limit {INGESTION_RSS_RATIO_MAX})"
    )
    dsp = report["dispatch"]
    print(
        f"  dispatch payload ({dsp['jobs']:,} jobs x {dsp['cells']} cells): "
        f"{dsp['inline_bytes_per_cell'] / 1e6:.1f} MB inline vs "
        f"{dsp['ref_bytes_per_cell']:.0f} B per ref cell "
        f"({dsp['payload_reduction']:,.0f}x, floor {DISPATCH_REDUCTION_MIN:.0f}x)"
    )

    if args.write:
        # floors still apply when minting a baseline, and so do the
        # streaming-memory and dispatch-payload bounds
        bad = [
            f"speedup {label!r} = {report['speedups'].get(label, 0.0):.2f}x "
            f"below floor {floor:.1f}x"
            for label, floor in SPEEDUP_FLOORS.items()
            if report["speedups"].get(label, 0.0) < floor
        ]
        bad.extend(check_ingestion(report["ingestion"]))
        bad.extend(check_dispatch(report["dispatch"]))
        if bad:
            print("bench_gate: FAIL", file=sys.stderr)
            for line in bad:
                print(f"  - {line}", file=sys.stderr)
            return 1
        print("bench_gate: baseline written")
        return 0

    baseline_path = newest_baseline(exclude=out)
    if baseline_path is None:
        print("bench_gate: no committed BENCH_*.json baseline; nothing to gate")
        return 0
    print(f"bench_gate: gating against {baseline_path.name}")
    with open(baseline_path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    if baseline.get("schema") != SCHEMA:
        print(
            f"bench_gate: baseline schema {baseline.get('schema')!r} != {SCHEMA!r}; "
            "refusing to compare",
            file=sys.stderr,
        )
        return 1

    problems = check_report(report, baseline, args.threshold)
    problems.extend(check_ingestion(report["ingestion"]))
    problems.extend(check_dispatch(report["dispatch"]))
    if problems:
        print("bench_gate: FAIL", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    print("bench_gate: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Documentation checker: fenced code blocks actually run, links resolve.

Two layers of rot this catches:

1. **Executable examples.**  Markdown code fences are extracted and
   executed against the current tree:

   * ```` ```python ```` blocks run by default (they are API examples;
     if the API drifts, the docs fail CI).  A block whose *preceding*
     line is ``<!-- docs-check: skip -->`` is left alone.
   * ```` ```bash ```` blocks are **opt-in**: only blocks directly
     preceded by ``<!-- docs-check: run -->`` execute.  Most bash
     fences in the README are illustrative (multi-hour sweeps, real
     SWF logs we do not ship); the marked ones are the fast,
     self-contained demos.  ``repro-sched`` is rewritten to
     ``python -m repro`` so the blocks run from a source checkout
     without installation.

2. **Links and anchors.**  Relative markdown links must point at files
   that exist; intra-document ``#fragment`` links must match a heading
   in the target document (GitHub slug rules, simplified).

Usage::

    python tools/check_docs.py [--docs README.md docs/TRACING.md ...]

Exit status is the number of failures (0 = docs are sound).  Runs from
the repository root; CI wires this as the `docs` job.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: documents checked by default (the ones whose examples must run)
DEFAULT_DOCS = (
    "README.md",
    "docs/TRACING.md",
    "docs/STATIC_ANALYSIS.md",
    "docs/WORKLOADS.md",
    "docs/FAULT_TOLERANCE.md",
    "docs/API.md",
    "EXPERIMENTS.md",
    "DESIGN.md",
)

#: only these docs get their fenced blocks *executed* (the others are
#: still link/anchor checked -- their fences quote output, not input,
#: and docs/API.md is generated prose gated by gen_api_docs --check)
EXECUTABLE_DOCS = (
    "README.md",
    "docs/TRACING.md",
    "docs/STATIC_ANALYSIS.md",
    "docs/WORKLOADS.md",
    "DESIGN.md",
)

RUN_MARKER = "<!-- docs-check: run -->"
SKIP_MARKER = "<!-- docs-check: skip -->"

FENCE_RE = re.compile(
    r"^(?P<marker>[^\n]*)\n```(?P<lang>python|bash)\n(?P<body>.*?)^```\s*$",
    re.M | re.S,
)
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.M)


@dataclass
class Failure:
    doc: str
    what: str
    detail: str

    def __str__(self) -> str:
        return f"{self.doc}: {self.what}\n    {self.detail}"


def github_slug(heading: str) -> str:
    """GitHub's heading -> anchor slug, simplified but sufficient here."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def doc_anchors(path: Path) -> set[str]:
    return {github_slug(h) for h in HEADING_RE.findall(path.read_text())}


# ----------------------------------------------------------------------
# fenced blocks
# ----------------------------------------------------------------------
def iter_blocks(text: str):
    """Yield (lang, body, should_run) per fence, honouring the markers."""
    for m in FENCE_RE.finditer(text):
        lang, body = m.group("lang"), m.group("body")
        marker_line = m.group("marker").strip()
        if marker_line == SKIP_MARKER:
            continue
        if lang == "python":
            yield lang, body, True
        else:  # bash: opt-in only
            yield lang, body, marker_line == RUN_MARKER


def rewrite_bash(body: str) -> str:
    """Make documented commands runnable from a source checkout."""
    return body.replace("repro-sched", "python -m repro")


def run_block(lang: str, body: str, env: dict[str, str]) -> subprocess.CompletedProcess:
    if lang == "python":
        cmd = [sys.executable, "-c", body]
    else:
        cmd = ["bash", "-euo", "pipefail", "-c", rewrite_bash(body)]
    return subprocess.run(
        cmd, cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=600
    )


def check_blocks(doc: Path, failures: list[Failure]) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    # documented /tmp outputs land in a sandbox instead
    with tempfile.TemporaryDirectory(prefix="docs-check-") as sandbox:
        ran = 0
        for lang, body, should_run in iter_blocks(doc.read_text()):
            if not should_run:
                continue
            patched = body.replace("/tmp/", sandbox + "/")
            proc = run_block(lang, patched, env)
            ran += 1
            if proc.returncode != 0:
                snippet = "\n    ".join(body.strip().splitlines()[:4])
                failures.append(
                    Failure(
                        str(doc.relative_to(REPO_ROOT)),
                        f"{lang} block failed (exit {proc.returncode})",
                        snippet + "\n    stderr: " + proc.stderr.strip()[-500:],
                    )
                )
    return ran


# ----------------------------------------------------------------------
# links
# ----------------------------------------------------------------------
def check_links(doc: Path, failures: list[Failure]) -> int:
    text = doc.read_text()
    checked = 0
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # external: not checked offline
        checked += 1
        path_part, _, fragment = target.partition("#")
        base = doc.parent / path_part if path_part else doc
        rel = str(doc.relative_to(REPO_ROOT))
        if not base.exists():
            failures.append(Failure(rel, "broken link", target))
            continue
        if fragment and base.suffix == ".md":
            if github_slug(fragment) not in doc_anchors(base):
                failures.append(Failure(rel, "broken anchor", f"#{fragment}"))
    # intra-doc contents lists: every #anchor in this doc must resolve
    anchors = doc_anchors(doc)
    for frag in re.findall(r"\]\(#([^)]+)\)", text):
        if github_slug(frag) not in anchors:
            failures.append(
                Failure(str(doc.relative_to(REPO_ROOT)), "broken anchor", f"#{frag}")
            )
    return checked


# ----------------------------------------------------------------------
# quoted benchmark numbers
# ----------------------------------------------------------------------
#: a kernel-table row: `...(`<speedup label>`)... | **N.NN×** |`
BENCH_ROW_RE = re.compile(r"\(`(\w+_vs_\w+)`\)[^\n]*\*\*(\d+\.\d+)×\*\*")


def check_bench_table(doc: Path, failures: list[Failure]) -> int:
    """EXPERIMENTS.md's kernel table must quote BENCH_PR4.json exactly.

    The speedup column is a *quotation* of the committed baseline
    artifact; if either side changes without the other, the docs job
    fails instead of the table silently going stale.
    """
    rel = str(doc.relative_to(REPO_ROOT))
    rows = BENCH_ROW_RE.findall(doc.read_text())
    if not rows:
        return 0
    baseline_path = REPO_ROOT / "BENCH_PR4.json"
    if not baseline_path.exists():
        failures.append(
            Failure(rel, "missing baseline", "table quotes BENCH_PR4.json")
        )
        return len(rows)
    import json

    speedups = json.loads(baseline_path.read_text()).get("speedups", {})
    for label, quoted in rows:
        actual = speedups.get(label)
        if actual is None:
            failures.append(
                Failure(rel, "unknown bench label", f"`{label}` not in baseline")
            )
        elif f"{actual:.2f}" != quoted:
            failures.append(
                Failure(
                    rel,
                    "stale bench quote",
                    f"`{label}`: doc says {quoted}×, baseline says {actual:.2f}×",
                )
            )
    return len(rows)


#: the dispatch-table row: `...(`payload_reduction`)... | **N,NNN×** |`
DISPATCH_ROW_RE = re.compile(r"\(`payload_reduction`\)[^\n]*\*\*([\d,]+)×\*\*")


def check_dispatch_table(doc: Path, failures: list[Failure]) -> int:
    """EXPERIMENTS.md's dispatch table must quote BENCH_PR9.json exactly.

    Same discipline as the kernel table: the payload-reduction factor
    is a quotation of the committed dispatch-bench baseline, and quote
    drift on either side fails the docs job.
    """
    rel = str(doc.relative_to(REPO_ROOT))
    rows = DISPATCH_ROW_RE.findall(doc.read_text())
    if not rows:
        return 0
    baseline_path = REPO_ROOT / "BENCH_PR9.json"
    if not baseline_path.exists():
        failures.append(
            Failure(rel, "missing baseline", "table quotes BENCH_PR9.json")
        )
        return len(rows)
    import json

    dispatch = json.loads(baseline_path.read_text()).get("dispatch", {})
    actual = dispatch.get("payload_reduction")
    for quoted in rows:
        if actual is None:
            failures.append(
                Failure(rel, "stale dispatch quote", "no dispatch bench in baseline")
            )
        elif f"{actual:,.0f}" != quoted:
            failures.append(
                Failure(
                    rel,
                    "stale dispatch quote",
                    f"doc says {quoted}×, baseline says {actual:,.0f}×",
                )
            )
    return len(rows)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--docs",
        nargs="+",
        default=list(DEFAULT_DOCS),
        help="markdown files to check (relative to the repo root)",
    )
    parser.add_argument(
        "--no-exec",
        action="store_true",
        help="skip block execution, check links/anchors only",
    )
    args = parser.parse_args(argv)

    failures: list[Failure] = []
    for name in args.docs:
        doc = REPO_ROOT / name
        if not doc.exists():
            failures.append(Failure(name, "missing document", str(doc)))
            continue
        n_links = check_links(doc, failures)
        n_quotes = check_bench_table(doc, failures)
        n_quotes += check_dispatch_table(doc, failures)
        n_blocks = 0
        if not args.no_exec and name in EXECUTABLE_DOCS:
            n_blocks = check_blocks(doc, failures)
        print(
            f"{name}: {n_links} link(s), {n_blocks} executed block(s), "
            f"{n_quotes} bench quote(s)"
        )

    for f in failures:
        print(f"FAIL {f}", file=sys.stderr)
    print(f"{len(failures)} failure(s)")
    return len(failures)


if __name__ == "__main__":
    raise SystemExit(main())

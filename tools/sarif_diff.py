#!/usr/bin/env python
"""Gate CI on SARIF findings that are new against a committed baseline.

``repro-lint --format sarif`` emits a deterministic SARIF 2.1.0 report
whose results carry the linter's content fingerprint under
``partialFingerprints`` (see ``src/repro/lint/sarif.py``).  This tool
diffs such a report against the committed snapshot
``tools/sarif_baseline.sarif`` by that fingerprint, so CI fails the
moment a finding appears that the repository has not explicitly
reviewed -- independently of the in-repo suppression baseline, which a
patch could silently grow.

Usage::

    python tools/sarif_diff.py repro-lint.sarif              # gate
    python tools/sarif_diff.py repro-lint.sarif --update     # re-baseline
    python tools/sarif_diff.py a.sarif --baseline b.sarif    # plain diff

Identity is the ``reproLint/v1`` partial fingerprint (line-drift
tolerant); results without one fall back to ``(ruleId, uri, startLine,
message)``.  Suppressed results (the lint baseline's reviewed findings)
count as *known* on both sides: a suppression going stale surfaces as a
new unsuppressed finding here, not as a silent swap.

Exit status: 0 no new findings, 1 new findings (or a missing/invalid
report), 2 usage error.  Resolved findings never fail the gate -- they
are reported so the baseline can be refreshed with ``--update``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "tools" / "sarif_baseline.sarif"

#: the fingerprint key repro-lint's SARIF writer emits
FINGERPRINT_KEY = "reproLint/v1"


def _location(result: dict) -> tuple[str, int]:
    """(uri, startLine) of the result's first physical location."""
    for loc in result.get("locations", []):
        phys = loc.get("physicalLocation", {})
        uri = phys.get("artifactLocation", {}).get("uri", "?")
        line = phys.get("region", {}).get("startLine", 0)
        return str(uri), int(line)
    return "?", 0


def _identity(result: dict) -> str:
    """Stable identity of one SARIF result (fingerprint, else fields)."""
    fp = result.get("partialFingerprints", {}).get(FINGERPRINT_KEY)
    if fp:
        return str(fp)
    uri, line = _location(result)
    message = result.get("message", {}).get("text", "")
    return f"{result.get('ruleId', '?')}|{uri}|{line}|{message}"


def _is_suppressed(result: dict) -> bool:
    return bool(result.get("suppressions"))


def load_results(path: Path) -> dict[str, dict]:
    """identity -> result, over every run in the SARIF file at *path*."""
    doc = json.loads(path.read_text())
    out: dict[str, dict] = {}
    for run in doc.get("runs", []):
        for result in run.get("results", []):
            out[_identity(result)] = result
    return out


def _describe(result: dict) -> str:
    uri, line = _location(result)
    message = result.get("message", {}).get("text", "")
    return f"{uri}:{line}: {result.get('ruleId', '?')}: {message}"


def diff(
    current: dict[str, dict], baseline: dict[str, dict]
) -> tuple[list[dict], list[dict]]:
    """(new unsuppressed findings, resolved baseline findings)."""
    new = [
        r
        for key, r in sorted(current.items())
        if key not in baseline and not _is_suppressed(r)
    ]
    resolved = [
        r
        for key, r in sorted(baseline.items())
        if key not in current and not _is_suppressed(r)
    ]
    return new, resolved


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly generated SARIF report")
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help=f"committed SARIF snapshot (default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy the current report over the baseline and exit 0",
    )
    args = parser.parse_args(argv)

    current_path = Path(args.current)
    baseline_path = Path(args.baseline)
    if not current_path.is_file():
        print(f"sarif-diff: report not found: {current_path}", file=sys.stderr)
        return 1

    if args.update:
        baseline_path.write_text(current_path.read_text())
        print(f"sarif-diff: baseline updated from {current_path}")
        return 0

    if not baseline_path.is_file():
        print(
            f"sarif-diff: baseline not found: {baseline_path} "
            "(create it with --update)",
            file=sys.stderr,
        )
        return 1

    current = load_results(current_path)
    baseline = load_results(baseline_path)
    new, resolved = diff(current, baseline)

    for result in resolved:
        print(f"resolved (refresh baseline with --update): {_describe(result)}")
    if new:
        for result in new:
            print(f"NEW finding: {_describe(result)}", file=sys.stderr)
        print(
            f"sarif-diff: {len(new)} finding(s) not in {baseline_path.name}; "
            "fix them or re-baseline deliberately with --update",
            file=sys.stderr,
        )
        return 1
    print(
        f"sarif-diff: OK ({len(current)} finding(s), all known; "
        f"{len(resolved)} resolved)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

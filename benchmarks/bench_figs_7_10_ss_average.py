"""Figs 7-10: average slowdown & turnaround -- SS(1.5/2/5) vs NS vs IS.

The paper's headline figures.  Shape checks encode section IV-D's
conclusions:

* SS crushes the NS slowdown of the short-wide categories (VS-VW drops
  from ~34 to <3 on CTC, ~113 to ~7 on SDSC);
* lower SF helps the short categories;
* the VL categories get slightly worse under SS;
* IS beats SS only on the VS categories.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import N_JOBS, SEED, run_once
from repro.experiments import paper


@pytest.mark.parametrize("trace", ["CTC", "SDSC"])
def test_figs_7_10_average_metrics(benchmark, trace):
    out = run_once(
        benchmark, paper.ss_average_metrics, trace=trace, n_jobs=N_JOBS, seed=SEED
    )
    print()
    print(out.report)
    sd = out.data["slowdown"]
    ns = sd["No Suspension"]
    sf2 = sd["SF = 2"]
    sf15 = sd["SF = 1.5"]
    is_ = sd["IS"]

    # headline: the VS-VW catastrophe is fixed by SS
    cat = ("VS", "VW")
    if cat in ns and cat in sf2:
        assert sf2[cat] < ns[cat] / 3.0, f"{trace}: VS-VW {ns[cat]} -> {sf2[cat]}"

    # SS helps the short-wide block broadly
    helped = 0
    for c in (("VS", "W"), ("VS", "VW"), ("S", "W"), ("S", "VW")):
        if c in ns and c in sf2 and ns[c] > 2.0:
            assert sf2[c] < ns[c], c
            helped += 1
    assert helped >= 2

    # lower SF no worse for the very short categories (on average)
    vs_cats = [c for c in sf15 if c[0] == "VS" and c in sf2]
    if vs_cats:
        mean_15 = sum(sf15[c] for c in vs_cats) / len(vs_cats)
        mean_2 = sum(sf2[c] for c in vs_cats) / len(vs_cats)
        assert mean_15 <= mean_2 * 1.5

    # VL categories: SS may degrade them, but only slightly
    for c in (("VL", "Seq"), ("VL", "N"), ("VL", "W"), ("VL", "VW")):
        if c in ns and c in sf2:
            assert sf2[c] <= ns[c] * 3.0 + 1.0, c

    # IS is worse than SS somewhere outside VS (the long categories)
    long_cats = [c for c in is_ if c[0] in ("L", "VL") and c in sf2]
    assert any(is_[c] > sf2[c] for c in long_cats)

    # turnaround trends mirror slowdown trends (paper's Figs 8/10 note)
    tat = out.data["turnaround"]
    if cat in tat["No Suspension"] and cat in tat["SF = 2"]:
        assert tat["SF = 2"][cat] < tat["No Suspension"][cat]

"""Figs 31-34: suspension/restart overhead (section V-A).

Prices every suspend/resume cycle with the disk-swap model (memory
U(100 MB, 1 GB), 2 MB/s per processor) and compares TSS with overhead
("SF = 2 OH") against the overhead-free run, NS and IS.

Shape check = the section's one-line conclusion: "overhead does not
significantly affect the performance of the SS scheme" -- the
with-overhead run stays much closer to the overhead-free run than to
NS on the categories SS improves.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import N_JOBS, SEED, run_once
from repro.experiments import paper

#: simulates 6 runs per trace under over-estimation; capped like the
#: estimates bench to keep the harness quick
N_JOBS = min(N_JOBS, 1200)


@pytest.mark.parametrize("trace", ["CTC", "SDSC"])
def test_figs_31_34_overhead_impact(benchmark, trace):
    out = run_once(
        benchmark, paper.overhead_impact, trace=trace, n_jobs=N_JOBS, seed=SEED
    )
    print()
    print(out.report)
    sd = out.data["slowdown"]
    free = sd["SF = 2"]
    priced = sd["SF = 2 OH"]
    ns = sd["No Suspension"]

    # overhead cannot help; but its damage is small relative to the
    # SS-vs-NS improvement on the short/wide categories
    for c in (("VS", "W"), ("VS", "VW"), ("S", "W"), ("S", "VW")):
        if c in free and c in priced and c in ns and ns[c] > 3.0:
            gain = ns[c] - free[c]
            loss = priced[c] - free[c]
            assert loss < gain, f"{c}: overhead ate the whole SS gain"

    # overall: priced SS still beats NS
    mean_priced = sum(priced.values()) / len(priced)
    mean_ns = sum(ns[c] for c in priced if c in ns) / len(priced)
    assert mean_priced < mean_ns

"""Figs 4-6: execution pattern of two identical tasks vs SF.

Prints the alternation timelines at SF = 1, 1.5, 2 (the paper's three
figures) under both priority semantics, and checks the suspension-count
thresholds, including the paper's SF = 2 (zero suspensions) and golden
ratio (one suspension, age-based semantics) results.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.priorities import GOLDEN_RATIO
from repro.core.theory import threshold_for_max_suspensions, two_task_timeline
from repro.experiments import paper


def test_figs_4_6_two_task_patterns(benchmark):
    out = run_once(benchmark, paper.two_task_figures, (1.0, 1.5, 2.0))
    print()
    print(out.report)
    # Fig 6: SF = 2 -> no suspension, strict serial execution
    sf2 = out.data["SF=2"]["frozen"]
    assert sf2.suspensions == 0
    # Fig 5: 1 < SF < threshold -> exactly one suspension (frozen)
    sf15 = out.data["SF=1.5"]["frozen"]
    assert sf15.suspensions == 1
    # Fig 4: SF = 1 -> alternation bounded only by the sweep granularity
    sf1 = out.data["SF=1"]["frozen"]
    assert sf1.suspensions >= 10


def test_threshold_table(benchmark):
    """Regenerates the threshold table of repro.core.theory's docstring."""

    def build():
        rows = []
        for n in range(4):
            rows.append(
                (
                    n,
                    threshold_for_max_suspensions(n, "frozen"),
                    threshold_for_max_suspensions(n, "age"),
                )
            )
        return rows

    rows = run_once(benchmark, build)
    print()
    print("at most n suspensions | frozen SF >= | age-based SF >=")
    for n, frozen, age in rows:
        print(f"{n:>21d} | {frozen:12.4f} | {age:15.4f}")
    assert abs(rows[0][1] - 2.0) < 1e-6
    assert abs(rows[1][1] - 2**0.5) < 1e-6
    assert abs(rows[1][2] - GOLDEN_RATIO) < 1e-6  # the paper's phi


def test_alternation_work_conserving(benchmark):
    """Sanity: for any SF the two-task schedule is work conserving."""

    def sweep():
        return [two_task_timeline(sf) for sf in (1.1, 1.25, 1.4, 1.6, 2.0, 3.0)]

    outcomes = run_once(benchmark, sweep)
    for out in outcomes:
        assert out.makespan == 2.0

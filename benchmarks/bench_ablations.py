"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures -- these probe the knobs the paper fixes (or leaves
unstated) to show which ones the results actually depend on:

* the half-width rule (section IV-B) on vs off;
* TSS limit source: calibrated-from-NS vs online running averages;
* the preemption-sweep interval (60 s in the paper);
* victim placement: preemptor on victims' processors vs policy default;
* overhead severity: paper's 2 MB/s vs a 2x-slower disk.

Every ablation is expressed as a :class:`~repro.experiments.parallel.GridCell`
grid and executed through :func:`~repro.experiments.parallel.run_grid`, so
``REPRO_BENCH_WORKERS`` fans the variants of each ablation out over a
process pool and ``REPRO_BENCH_CACHE`` lets interrupted sessions resume
where they stopped.  Results are identical to the old serial
``simulate`` calls -- the grid merge is deterministic.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import CACHE, POLICY, SEED, WORKERS, run_once
from repro.core.overhead import DiskSwapOverheadModel
from repro.core.selective_suspension import SelectiveSuspensionScheduler
from repro.core.tss import TunableSelectiveSuspensionScheduler, limits_from_result
from repro.experiments.parallel import GridCell, run_grid
from repro.metrics.aggregate import overall_stats, per_category_stats
from repro.schedulers.easy import EasyBackfillScheduler
from repro.workload.archive import get_preset
from repro.workload.synthetic import generate_trace

N_JOBS = 1500
TRACE = "SDSC"


def _mean_sd(result, cat):
    stats = per_category_stats(result.jobs)
    return stats[cat].slowdown.mean if cat in stats else None


def _grid(jobs, n_procs, variants, **cell_kwargs):
    """Run one ablation: {key: scheduler_config} -> {key: result}.

    *variants* may also map to a ``(config, extra_cell_kwargs)`` pair for
    per-variant overhead models / migratable flags.
    """
    cells = []
    for key, spec in variants.items():
        extra = dict(cell_kwargs)
        if isinstance(spec, tuple):
            config, per_cell = spec
            extra.update(per_cell)
        else:
            config = spec
        cells.append(
            GridCell(
                key=key, jobs=jobs, n_procs=n_procs, scheduler_config=config, **extra
            )
        )
    return run_grid(cells, workers=WORKERS, cache=CACHE, policy=POLICY).results


@pytest.fixture(scope="module")
def workload():
    preset = get_preset(TRACE)
    return generate_trace(TRACE, n_jobs=N_JOBS, seed=SEED), preset.n_procs


def test_ablation_width_rule(benchmark, workload):
    """Without the half-width rule, wide jobs suffer narrow preemptors."""
    jobs, n_procs = workload

    def run():
        res = _grid(
            jobs,
            n_procs,
            {
                "on": SelectiveSuspensionScheduler(2.0, width_rule=True).config(),
                "off": SelectiveSuspensionScheduler(2.0, width_rule=False).config(),
            },
        )
        return res["on"], res["off"]

    with_rule, without = run_once(benchmark, run)
    print()
    rows = []
    for cat in (("VS", "VW"), ("S", "VW"), ("L", "VW"), ("VL", "VW"), ("VL", "W")):
        rows.append(
            (cat, _mean_sd(with_rule, cat), _mean_sd(without, cat))
        )
    print("category | width rule ON | width rule OFF (mean slowdown)")
    for cat, a, b in rows:
        print(f"{cat}: {a} | {b}")
    print(
        f"suspensions: on={with_rule.total_suspensions} off={without.total_suspensions}"
    )
    # dropping the rule lets narrow jobs suspend wide ones => at least
    # as many suspensions overall
    assert without.total_suspensions >= with_rule.total_suspensions * 0.8


def test_ablation_tss_limit_source(benchmark, workload):
    """Calibrated vs online TSS limits agree on the headline metrics."""
    jobs, n_procs = workload

    def run():
        # the calibrated variant's limits come from the NS run, so the
        # baseline is its own (cacheable) one-cell grid phase
        ns = run_grid(
            [
                GridCell(
                    key="ns",
                    jobs=jobs,
                    n_procs=n_procs,
                    scheduler_config=EasyBackfillScheduler().config(),
                )
            ],
            workers=WORKERS,
            cache=CACHE,
            policy=POLICY,
        ).results["ns"]
        res = _grid(
            jobs,
            n_procs,
            {
                "calibrated": TunableSelectiveSuspensionScheduler(
                    2.0, limits=limits_from_result(ns)
                ).config(),
                "online": TunableSelectiveSuspensionScheduler(2.0).config(),
            },
        )
        return ns, res["calibrated"], res["online"]

    ns, calibrated, online = run_once(benchmark, run)
    sd_cal = overall_stats(calibrated.jobs).slowdown.mean
    sd_onl = overall_stats(online.jobs).slowdown.mean
    sd_ns = overall_stats(ns.jobs).slowdown.mean
    print()
    print(f"overall slowdown: NS={sd_ns:.2f} TSS(calibrated)={sd_cal:.2f} TSS(online)={sd_onl:.2f}")
    # both TSS variants clearly beat NS, and land near each other
    assert sd_cal < sd_ns and sd_onl < sd_ns
    assert abs(sd_cal - sd_onl) < 0.5 * (sd_ns - min(sd_cal, sd_onl))


def test_ablation_preemption_interval(benchmark, workload):
    """The 60 s sweep: coarser sweeps slow the short jobs' rescue."""
    jobs, n_procs = workload
    intervals = (60.0, 600.0, 3600.0)

    def run():
        res = _grid(
            jobs,
            n_procs,
            {
                f"{interval:g}": SelectiveSuspensionScheduler(
                    2.0, preemption_interval=interval
                ).config()
                for interval in intervals
            },
        )
        return {interval: res[f"{interval:g}"] for interval in intervals}

    results = run_once(benchmark, run)
    print()
    for interval, r in results.items():
        print(
            f"interval={interval:>6.0f}s overall sd="
            f"{overall_stats(r.jobs).slowdown.mean:6.2f} suspensions={r.total_suspensions}"
        )
    sd = {k: overall_stats(r.jobs).slowdown.mean for k, r in results.items()}
    # a much coarser sweep must not *improve* responsiveness
    assert sd[3600.0] >= sd[60.0] * 0.8
    # sweeping less often suspends (weakly) less
    assert results[3600.0].total_suspensions <= results[60.0].total_suspensions


def test_ablation_overhead_severity(benchmark, workload):
    """2x slower disk: SS's advantage must survive (robustness of V-A)."""
    jobs, n_procs = workload

    def run():
        ss = SelectiveSuspensionScheduler(2.0).config()
        res = _grid(
            jobs,
            n_procs,
            {
                "ns": EasyBackfillScheduler().config(),
                "paper_disk": (
                    ss,
                    {"overhead_model": DiskSwapOverheadModel(mb_per_sec_per_proc=2.0)},
                ),
                "slow_disk": (
                    ss,
                    {"overhead_model": DiskSwapOverheadModel(mb_per_sec_per_proc=1.0)},
                ),
            },
        )
        return res["ns"], res["paper_disk"], res["slow_disk"]

    ns, paper_disk, slow_disk = run_once(benchmark, run)
    sd_ns = overall_stats(ns.jobs).slowdown.mean
    sd_paper = overall_stats(paper_disk.jobs).slowdown.mean
    sd_slow = overall_stats(slow_disk.jobs).slowdown.mean
    print()
    print(f"overall slowdown: NS={sd_ns:.2f} SS@2MB/s={sd_paper:.2f} SS@1MB/s={sd_slow:.2f}")
    assert sd_paper < sd_ns
    assert sd_slow < sd_ns  # still wins with a half-speed disk


def test_ablation_migration(benchmark, workload):
    """Cost of the no-migration constraint: local vs migratable restart.

    The paper restricts restart to the original processors because its
    clusters cannot migrate processes; Parsons & Sevcik's migratable
    model lifts that.  This quantifies what the constraint costs SS.
    """
    jobs, n_procs = workload

    def run():
        ss = SelectiveSuspensionScheduler(2.0).config()
        res = _grid(
            jobs,
            n_procs,
            {
                "local": ss,
                "migratable": (ss, {"migratable": True}),
            },
        )
        return res["local"], res["migratable"]

    local, migratable = run_once(benchmark, run)
    sd_local = overall_stats(local.jobs).slowdown.mean
    sd_migr = overall_stats(migratable.jobs).slowdown.mean
    print()
    print(
        f"overall slowdown: local={sd_local:.2f} migratable={sd_migr:.2f}   "
        f"suspensions: local={local.total_suspensions} "
        f"migratable={migratable.total_suspensions}"
    )
    # migration relaxes a constraint; it must not make things much worse
    assert sd_migr <= sd_local * 1.25


def test_ablation_gang_vs_selective(benchmark, workload):
    """Indiscriminate (gang) vs selective (SS) preemption.

    Gang scheduling rescues short jobs through blind time slicing; SS
    does it through priorities.  Compare slowdowns and suspension bills
    on the same workload -- SS should match gang's responsiveness for
    short jobs at a fraction of the context switches.
    """
    from repro.schedulers.gang import GangScheduler

    jobs, n_procs = workload

    def run():
        res = _grid(
            jobs,
            n_procs,
            {
                "ss": SelectiveSuspensionScheduler(2.0).config(),
                "gang": GangScheduler(quantum=600.0).config(),
            },
        )
        return res["ss"], res["gang"]

    ss, gang = run_once(benchmark, run)
    print()
    print(
        f"overall slowdown: SS={overall_stats(ss.jobs).slowdown.mean:.2f} "
        f"GANG={overall_stats(gang.jobs).slowdown.mean:.2f}   "
        f"suspensions: SS={ss.total_suspensions} GANG={gang.total_suspensions}"
    )
    print(
        f"VS mean sd: SS={_mean_sd(ss, ('VS', 'N'))} GANG={_mean_sd(gang, ('VS', 'N'))}"
    )
    # the selective scheme suspends far less than blind time slicing
    assert ss.total_suspensions < gang.total_suspensions


def test_ablation_conservative_substrate(benchmark, workload):
    """Conservative vs EASY as the NS baseline: both show the same
    short-wide pathology that motivates preemption."""
    from repro.schedulers.conservative import ConservativeBackfillScheduler

    jobs, n_procs = workload

    def run():
        res = _grid(
            jobs,
            n_procs,
            {
                "easy": EasyBackfillScheduler().config(),
                "cons": ConservativeBackfillScheduler().config(),
            },
        )
        return res["easy"], res["cons"]

    easy, cons = run_once(benchmark, run)
    print()
    for name, r in (("EASY", easy), ("CONS", cons)):
        print(
            f"{name}: overall sd={overall_stats(r.jobs).slowdown.mean:6.2f} "
            f"VS-VW sd={_mean_sd(r, ('VS', 'VW'))}"
        )
    for r in (easy, cons):
        vsvw = _mean_sd(r, ("VS", "VW"))
        overall = overall_stats(r.jobs).slowdown.mean
        if vsvw is not None:
            assert vsvw > overall  # the pathology exists under both

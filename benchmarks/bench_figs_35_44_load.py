"""Figs 35-44: the load-variation study (section VI).

For each load factor: overall (steady-state) utilisation per scheme
(Figs 35/38), mean slowdown and turnaround per 4-way category
(Figs 36/37/39/40); the metric-vs-utilisation pairings of Figs 41-44
are the same data re-keyed by achieved utilisation and are printed too.

Shape checks:

* utilisation rises with load and then flattens (saturation);
* SS's steady utilisation is better than or comparable to NS's at
  every load (the paper's Fig 35/38 claim);
* IS's utilisation clearly trails at high load;
* the SS-vs-NS slowdown gap widens with load for the short categories.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import CACHE, POLICY, SEED, WORKERS, run_once
from repro.analysis.tables import series_table
from repro.experiments import paper

#: slightly smaller workload: this bench simulates (loads x schemes) runs
LOAD_N_JOBS = 1500

LOADS = {
    "CTC": (1.0, 1.2, 1.4, 1.6, 1.8, 2.0),
    "SDSC": (1.0, 1.1, 1.2, 1.3, 1.4, 1.5),
}


@pytest.mark.parametrize("trace", ["CTC", "SDSC"])
def test_figs_35_44_load_variation(benchmark, trace):
    out = run_once(
        benchmark,
        paper.load_variation,
        trace=trace,
        loads=LOADS[trace],
        n_jobs=LOAD_N_JOBS,
        seed=SEED,
        workers=WORKERS,
        cache=CACHE,
        policy=POLICY,
    )
    print()
    print(out.report)

    loads = out.data["loads"]
    util = out.data["utilization"]
    ss = util["SF = 2 Tuned"]
    ns = util["No Suspension"]
    is_ = util["IS"]

    # Figs 41-44 view: metric vs achieved utilisation
    print()
    print(
        series_table(
            "load",
            loads,
            {
                "SS util %": [100 * u for u in ss],
                "NS util %": [100 * u for u in ns],
                "IS util %": [100 * u for u in is_],
            },
            title=f"{trace}: achieved steady utilisation (Figs 41-44 x-axis)",
            precision=1,
        )
    )

    # utilisation grows with load for the work-conserving schemes
    assert ss[-1] > ss[0]
    assert ns[-1] > ns[0]

    # SS utilisation comparable to NS up to (and a bit past) the
    # saturation knee.  Beyond deep overload the backlog of a *local*
    # preemptive scheme is carried as suspended jobs pinned to specific
    # processor sets, which cannot fill holes the way NS's flexible
    # queue can; at bench scale this opens a gap at the extreme load
    # points (documented deviation, see EXPERIMENTS.md Figs 35-44).
    from repro.workload.archive import get_preset

    knee = get_preset(trace).saturation_load
    for load, s_u, n_u in zip(loads, ss, ns, strict=True):
        if load <= knee:
            assert s_u >= n_u - 0.06, f"load {load}: SS {s_u:.3f} vs NS {n_u:.3f}"
        else:
            assert s_u >= n_u - 0.20, (
                f"load {load} (past knee): SS {s_u:.3f} vs NS {n_u:.3f}"
            )

    # IS trails at the highest load
    assert is_[-1] < max(ss[-1], ns[-1])

    # slowdown gap (NS - SS) grows with load in the short categories
    sd = out.data["slowdown"]
    for cat in (("S", "N"), ("S", "W")):
        if cat in sd["No Suspension"] and cat in sd["SF = 2 Tuned"]:
            ns_series = sd["No Suspension"][cat]
            ss_series = sd["SF = 2 Tuned"][cat]
            gap_lo = ns_series[0] - ss_series[0]
            gap_hi = ns_series[-1] - ss_series[-1]
            assert gap_hi >= gap_lo - 1.0, (cat, gap_lo, gap_hi)

"""Micro-benchmarks of the simulation substrate.

Conventional pytest-benchmark timings (many rounds) for the hot paths:
event calendar throughput, profile operations, cluster allocation, and
end-to-end simulation rate in jobs/second for each scheduler family.
Regressions here silently inflate every figure bench, so they are
tracked separately.
"""

from __future__ import annotations

from repro.cluster.machine import Cluster
from repro.core.priorities import suspension_priority
from repro.core.selective_suspension import SelectiveSuspensionScheduler
from repro.schedulers.easy import EasyBackfillScheduler
from repro.schedulers.profiles import AvailabilityProfile
from repro.sim.events import EventKind, EventQueue
from repro.workload.job import fresh_copies
from repro.workload.synthetic import generate_trace
from tests.conftest import run_sim

JOBS_SDSC = generate_trace("SDSC", n_jobs=400, seed=3)


class _RecomputingPriorities(dict):
    """job_id -> xfactor mapping that recomputes on *every* access.

    Stores the Job objects and calls :func:`suspension_priority` in
    ``__getitem__``, reproducing the pre-optimisation sweep's cost
    profile (priority evaluated inside sort keys and per-victim
    filters, O(queue x running) calls per sweep) while flowing through
    the same code paths as the snapshot dict.
    """

    def __init__(self, jobs, now: float) -> None:
        super().__init__((j.job_id, j) for j in jobs)
        self._now = now

    def __getitem__(self, job_id):  # type: ignore[override]
        return suspension_priority(super().__getitem__(job_id), self._now)


class LegacySweepScheduler(SelectiveSuspensionScheduler):
    """Reference SS with the naive per-access priority recomputation.

    Benchmark-only: pins down what the once-per-sweep priority snapshot
    in :meth:`SelectiveSuspensionScheduler.sweep` buys, and that it buys
    it without changing a single scheduling decision (the xfactor at a
    fixed ``now`` is transition-invariant, so snapshot and recompute
    agree exactly -- ``test_sweep_priority_snapshot_identical`` asserts
    the schedules match event for event).
    """

    def sweep(self, allow_suspension: bool) -> None:
        driver = self.driver
        assert driver is not None
        now = driver.now
        queued = driver.queued_jobs()
        pool = list(queued)
        if allow_suspension:
            pool.extend(driver.running_jobs())
        priorities = _RecomputingPriorities(pool, now)
        idle = sorted(
            queued,
            key=lambda j: (-priorities[j.job_id], j.submit_time, j.job_id),
        )
        for job in idle:
            if job.needs_specific_procs:
                self._try_resume(job, allow_suspension, priorities)
            else:
                self._try_start(job, allow_suspension, priorities)


def _schedule_signature(result):
    """Every externally observable per-job outcome, for exact equality."""
    return [
        (
            j.job_id,
            j.first_start_time,
            j.finish_time,
            j.suspension_count,
        )
        for j in result.jobs
    ]


def test_event_queue_push_pop(benchmark):
    def run():
        q = EventQueue()
        for i in range(2000):
            q.schedule(float(i % 97), EventKind.GENERIC, i)
        while q:
            q.pop()

    benchmark(run)


def test_event_queue_with_cancellation(benchmark):
    def run():
        q = EventQueue()
        events = [q.schedule(float(i % 53), EventKind.GENERIC, i) for i in range(2000)]
        for ev in events[::2]:
            q.cancel(ev)
        while q:
            q.pop()

    benchmark(run)


def test_profile_claim_and_anchor(benchmark):
    def run():
        p = AvailabilityProfile(430, origin=0.0)
        for i in range(60):
            anchor = p.find_anchor(100.0 + i, 16)
            p.claim(anchor, 100.0 + i, 16)

    benchmark(run)


def test_cluster_allocate_release(benchmark):
    def run():
        c = Cluster(430)
        held = []
        for i in range(100):
            held.append((i, c.allocate(4, owner=i)))
        for owner, procs in held:
            c.release(procs, owner)

    benchmark(run)


def test_simulation_rate_easy(benchmark):
    def run():
        return run_sim(fresh_copies(JOBS_SDSC), EasyBackfillScheduler(), n_procs=128)

    result = benchmark(run)
    assert len(result.jobs) == len(JOBS_SDSC)


def test_simulation_rate_ss(benchmark):
    def run():
        return run_sim(
            fresh_copies(JOBS_SDSC),
            SelectiveSuspensionScheduler(suspension_factor=2.0),
            n_procs=128,
        )

    result = benchmark(run)
    assert len(result.jobs) == len(JOBS_SDSC)


def test_simulation_rate_ss_null_recorder(benchmark):
    """SS throughput with the null recorder attached.

    The zero-overhead-when-off contract (docs/TRACING.md): passing a
    disabled recorder must leave ``driver.tracer is None``, so the only
    possible cost over ``test_simulation_rate_ss`` is the per-site
    ``if tracer is not None`` guards.  Compare the two benches in the
    same run; the gap stays within the noise floor (<2% measured).
    """
    from repro.cluster.machine import Cluster as _Cluster
    from repro.obs import NULL_RECORDER
    from repro.sim.driver import SchedulingSimulation

    def run():
        driver = SchedulingSimulation(
            cluster=_Cluster(128),
            scheduler=SelectiveSuspensionScheduler(suspension_factor=2.0),
            recorder=NULL_RECORDER,
        )
        return driver.run(fresh_copies(JOBS_SDSC))

    result = benchmark(run)
    assert result.counters is None  # disabled recorder -> no tracer
    assert len(result.jobs) == len(JOBS_SDSC)


def test_simulation_rate_ss_legacy_sweep(benchmark):
    """The pre-optimisation sweep, for comparison with the case above.

    Compare this bench's time against ``test_simulation_rate_ss`` in
    the same run: the gap is exactly what the once-per-sweep priority
    snapshot saves (it widens with congestion -- rerun with a larger
    trace to see the quadratic term take over).
    """

    def run():
        return run_sim(
            fresh_copies(JOBS_SDSC),
            LegacySweepScheduler(suspension_factor=2.0),
            n_procs=128,
        )

    result = benchmark(run)
    assert len(result.jobs) == len(JOBS_SDSC)


def test_sweep_priority_snapshot_identical():
    """The snapshot optimisation changes cost, not decisions.

    Runs the optimised and legacy sweeps over the same congested trace
    and asserts per-job start/finish/suspension equality, plus the
    aggregate event and suspension counters.
    """
    fast = run_sim(
        fresh_copies(JOBS_SDSC),
        SelectiveSuspensionScheduler(suspension_factor=2.0),
        n_procs=128,
    )
    slow = run_sim(
        fresh_copies(JOBS_SDSC),
        LegacySweepScheduler(suspension_factor=2.0),
        n_procs=128,
    )
    assert _schedule_signature(fast) == _schedule_signature(slow)
    assert fast.total_suspensions == slow.total_suspensions
    assert fast.makespan == slow.makespan

"""Micro-benchmarks of the simulation substrate.

Conventional pytest-benchmark timings (many rounds) for the hot paths:
event calendar throughput, profile operations, cluster allocation, and
end-to-end simulation rate in jobs/second for each scheduler family.
Regressions here silently inflate every figure bench, so they are
tracked separately.
"""

from __future__ import annotations

from repro.cluster.machine import Cluster
from repro.core.selective_suspension import SelectiveSuspensionScheduler
from repro.schedulers.easy import EasyBackfillScheduler
from repro.schedulers.profiles import AvailabilityProfile
from repro.sim.events import EventKind, EventQueue
from repro.workload.job import fresh_copies
from repro.workload.synthetic import generate_trace
from tests.conftest import run_sim

JOBS_SDSC = generate_trace("SDSC", n_jobs=400, seed=3)


def test_event_queue_push_pop(benchmark):
    def run():
        q = EventQueue()
        for i in range(2000):
            q.schedule(float(i % 97), EventKind.GENERIC, i)
        while q:
            q.pop()

    benchmark(run)


def test_event_queue_with_cancellation(benchmark):
    def run():
        q = EventQueue()
        events = [q.schedule(float(i % 53), EventKind.GENERIC, i) for i in range(2000)]
        for ev in events[::2]:
            q.cancel(ev)
        while q:
            q.pop()

    benchmark(run)


def test_profile_claim_and_anchor(benchmark):
    def run():
        p = AvailabilityProfile(430, origin=0.0)
        for i in range(60):
            anchor = p.find_anchor(100.0 + i, 16)
            p.claim(anchor, 100.0 + i, 16)

    benchmark(run)


def test_cluster_allocate_release(benchmark):
    def run():
        c = Cluster(430)
        held = []
        for i in range(100):
            held.append((i, c.allocate(4, owner=i)))
        for owner, procs in held:
            c.release(procs, owner)

    benchmark(run)


def test_simulation_rate_easy(benchmark):
    def run():
        return run_sim(fresh_copies(JOBS_SDSC), EasyBackfillScheduler(), n_procs=128)

    result = benchmark(run)
    assert len(result.jobs) == len(JOBS_SDSC)


def test_simulation_rate_ss(benchmark):
    def run():
        return run_sim(
            fresh_copies(JOBS_SDSC),
            SelectiveSuspensionScheduler(suspension_factor=2.0),
            n_procs=128,
        )

    result = benchmark(run)
    assert len(result.jobs) == len(JOBS_SDSC)

"""Micro-benchmarks of the simulation substrate.

Conventional pytest-benchmark timings (many rounds) for the hot paths:
event calendar throughput, profile operations, cluster allocation, and
end-to-end simulation rate in jobs/second for each scheduler family.
Regressions here silently inflate every figure bench, so they are
tracked separately -- ``tools/bench_gate.py`` runs this module, writes
the schema-versioned ``BENCH_PR4.json`` artifact and fails CI on
regressions against the committed baseline.

The pre-optimisation kernel survives here as *executable references*:

* :class:`LegacyCluster` -- the set/dict free-pool bookkeeping that the
  bitmask :class:`repro.cluster.machine.Cluster` replaced;
* :class:`LegacySweepScheduler` -- the SS sweep that recomputed
  priorities per access, re-sorted ``running_jobs()`` per idle job and
  rebuilt the pinned set per placement;
* :class:`LegacyAvailabilityProfile` -- the candidates-times-``fits``
  anchor rescan and the double-``list.insert`` claim.

Each has a ``*_legacy`` bench twin so every speedup claim is measured
in the same run it is reported from, and the ``test_*_identical``
cases assert the optimised kernel makes byte-for-byte the same
scheduling decisions as the legacy one -- the speedups are asserted,
not claimed.
"""

from __future__ import annotations

from typing import Iterable

import pytest

from repro.cluster.machine import AllocationError, Cluster
from repro.core.priorities import PreemptionCriteria, suspension_priority
from repro.core.selective_suspension import SelectiveSuspensionScheduler
from repro.schedulers.base import Scheduler
from repro.schedulers.easy import EasyBackfillScheduler
from repro.schedulers.profiles import AvailabilityProfile, ProfileError
from repro.sim.driver import SchedulingSimulation
from repro.sim.events import EventKind, EventQueue
from repro.workload.job import Job, fresh_copies
from repro.workload.load import scale_load
from repro.workload.swf import stream_jobs, stream_swf, write_synthetic_swf
from repro.workload.synthetic import generate_trace
from tests.conftest import run_sim

JOBS_SDSC = generate_trace("SDSC", n_jobs=400, seed=3)
#: the regime the ROADMAP cares about: a long, overloaded SDSC trace
#: where queues stay deep and the kernel's quadratic terms dominate
JOBS_CONGESTED = scale_load(generate_trace("SDSC", n_jobs=700, seed=5), 1.8)


# ----------------------------------------------------------------------
# legacy reference implementations (pre-bitmask kernel)
# ----------------------------------------------------------------------
class LegacyCluster:
    """The set/dict cluster the bitmask :class:`Cluster` replaced.

    Free pool as ``set[int]``, ownership as ``dict[proc, owner]``; same
    public API and error behaviour, so it drops into the driver for the
    ``*_legacy`` benches and the equivalence assertions.
    """

    def __init__(self, n_procs: int, policy=None) -> None:
        from repro.cluster.allocation import LowestIdFirst

        self.n_procs = int(n_procs)
        self._free: set[int] = set(range(self.n_procs))
        self._owner: dict[int, int] = {}
        self.policy = policy or LowestIdFirst()

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def busy_count(self) -> int:
        return self.n_procs - len(self._free)

    def free_set(self) -> frozenset[int]:
        return frozenset(self._free)

    def is_free(self, proc: int) -> bool:
        return proc in self._free

    def owner_of(self, proc: int) -> int | None:
        return self._owner.get(proc)

    def owners_overlapping(self, procs: Iterable[int]) -> set[int]:
        out: set[int] = set()
        for p in procs:
            owner = self._owner.get(p)
            if owner is not None:
                out.add(owner)
        return out

    def can_allocate(self, count: int) -> bool:
        return count <= len(self._free)

    def can_allocate_specific(self, procs: Iterable[int]) -> bool:
        return all(p in self._free for p in procs)

    def allocate(self, count: int, owner: int) -> frozenset[int]:
        if count <= 0:
            raise AllocationError(f"job {owner}: nonpositive request {count}")
        if count > self.n_procs:
            raise AllocationError(
                f"job {owner}: requests {count} > machine size {self.n_procs}"
            )
        if count > len(self._free):
            raise AllocationError(
                f"job {owner}: requests {count}, only {len(self._free)} free"
            )
        chosen = self.policy.select(self._free, count)
        return self._claim(chosen, owner)

    def allocate_specific(self, procs: Iterable[int], owner: int) -> frozenset[int]:
        chosen = frozenset(procs)
        if not chosen:
            raise AllocationError(f"job {owner}: empty specific allocation")
        missing = [p for p in chosen if p not in self._free]
        if missing:
            raise AllocationError(
                f"job {owner}: processors {sorted(missing)[:8]} not free"
            )
        return self._claim(chosen, owner)

    def _claim(self, chosen: frozenset[int], owner: int) -> frozenset[int]:
        for p in chosen:
            self._owner[p] = owner
        self._free -= chosen
        return chosen

    def release(self, procs: Iterable[int], owner: int) -> None:
        procs = frozenset(procs)
        for p in procs:
            actual = self._owner.get(p)
            if actual != owner:
                raise AllocationError(
                    f"release of processor {p} by job {owner}, "
                    f"but it is owned by {actual!r}"
                )
        for p in procs:
            del self._owner[p]
        self._free |= procs


class LegacyAvailabilityProfile(AvailabilityProfile):
    """The pre-optimisation profile operations.

    ``find_anchor`` re-walks the whole window per candidate (O(n^2));
    ``claim`` pays two O(n) ``list.insert`` shifts per call.  Kept as
    the measured baseline for the merged-walk/splice rewrite.
    """

    def _ensure_breakpoint(self, t: float) -> int:
        from bisect import bisect_right

        idx = bisect_right(self._times, t) - 1
        if self._times[idx] == t:
            return idx
        self._times.insert(idx + 1, t)
        self._free.insert(idx + 1, self._free[idx])
        return idx + 1

    def claim(self, start: float, duration: float, count: int) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if start < self.origin:
            raise ValueError(f"claim at t={start} before origin={self.origin}")
        end = start + duration
        i0 = self._ensure_breakpoint(start)
        i1 = self._ensure_breakpoint(end)
        for i in range(i0, i1):
            if self._free[i] < count:
                raise ProfileError(
                    f"claim of {count} procs over [{start}, {end}) underflows "
                    f"at t={self._times[i]} (free={self._free[i]})"
                )
            self._free[i] -= count

    def find_anchor(
        self, duration: float, count: int, earliest: float | None = None
    ) -> float:
        if count > self.n_procs:
            raise ProfileError(
                f"{count} processors can never be free on a "
                f"{self.n_procs}-proc machine"
            )
        start = self.origin if earliest is None else max(earliest, self.origin)
        candidates = [start, *(t for t in self._times if t > start)]
        for t in candidates:
            if self.fits(t, duration, count):
                return t
        if self._free[-1] >= count:
            return self._times[-1]
        raise ProfileError(
            f"no anchor for count={count}, duration={duration}: profile tail "
            f"only has {self._free[-1]} free -- unterminated claim?"
        )


class _RecomputingPriorities(dict):
    """job_id -> xfactor mapping that recomputes on *every* access.

    Stores the Job objects and calls :func:`suspension_priority` in
    ``__getitem__``, reproducing the pre-optimisation sweep's cost
    profile (priority evaluated inside sort keys and per-victim
    filters, O(queue x running) calls per sweep) while flowing through
    the same code paths as the snapshot dict.
    """

    def __init__(self, jobs, now: float) -> None:
        super().__init__((j.job_id, j) for j in jobs)
        self._now = now

    def __getitem__(self, job_id):  # type: ignore[override]
        return suspension_priority(super().__getitem__(job_id), self._now)


class LegacySweepScheduler(Scheduler):
    """Reference SS with the full pre-optimisation sweep.

    Benchmark-only and deliberately **self-contained** on the bare
    :class:`Scheduler` interface: since the policy-kernel refactor the
    production SS delegates its sweep to the composed
    ``SweepPreemption`` engine, so subclass overrides of the old
    ``sweep``/``_try_start`` internals would be dead code silently
    benchmarking the optimised path.  Everything here is the legacy
    implementation: priorities recomputed per access, ``running_jobs()``
    re-sorted inside every ``_try_start``, the pinned set rebuilt from
    the queue on every ``_place``, and all placement done on id sets.
    Pins down what the sweep-scoped snapshot/victim-list/pinned-mask
    structures buy, and that they buy it without changing a single
    scheduling decision (``test_kernel_equivalence_identical`` asserts
    the schedules match event for event).
    """

    scheme_id = "ss"

    def __init__(
        self,
        suspension_factor: float = 2.0,
        preemption_interval: float = 60.0,
        width_rule: bool = True,
    ) -> None:
        super().__init__()
        self.criteria = PreemptionCriteria(
            suspension_factor=suspension_factor, width_rule=width_rule
        )
        self.timer_interval = float(preemption_interval)
        self.name = f"SS(SF={suspension_factor:g})"

    def config(self) -> dict[str, object]:
        return {
            "scheme": self.scheme_id,
            "suspension_factor": self.criteria.suspension_factor,
            "preemption_interval": self.timer_interval,
            "width_rule": self.criteria.width_rule,
        }

    def on_arrival(self, job: Job) -> None:
        self.sweep(allow_suspension=False)

    def on_finish(self, job: Job) -> None:
        self.sweep(allow_suspension=False)

    def on_timer(self) -> None:
        self.sweep(allow_suspension=True)

    def victim_preemptable(
        self, victim: Job, now: float, priority: float | None = None
    ) -> bool:
        return True  # plain SS never protects a running job

    def sweep(self, allow_suspension: bool) -> None:
        driver = self.driver
        assert driver is not None
        now = driver.now
        queued = driver.queued_jobs()
        pool = list(queued)
        if allow_suspension:
            pool.extend(driver.running_jobs())
        priorities = _RecomputingPriorities(pool, now)
        idle = sorted(
            queued,
            key=lambda j: (-priorities[j.job_id], j.submit_time, j.job_id),
        )
        for job in idle:
            if job.needs_specific_procs:
                self._try_resume(job, allow_suspension, priorities)
            else:
                self._try_start(job, allow_suspension, priorities)

    def _pinned_procs(self) -> set[int]:
        driver = self.driver
        assert driver is not None
        pinned: set[int] = set()
        for j in driver.queued_jobs():
            if j.needs_specific_procs:
                pinned |= j.suspended_procs
        return pinned

    def _place(self, job: Job, preferred: frozenset[int] = frozenset()) -> frozenset[int]:
        driver = self.driver
        assert driver is not None
        free = driver.cluster.free_set()
        pinned = self._pinned_procs()
        chosen: list[int] = sorted(preferred & free)[: job.procs]
        if len(chosen) < job.procs:
            taken = set(chosen)
            unpinned = sorted(free - taken - pinned)
            chosen.extend(unpinned[: job.procs - len(chosen)])
        if len(chosen) < job.procs:
            taken = set(chosen)
            rest = sorted(free - taken)
            chosen.extend(rest[: job.procs - len(chosen)])
        return frozenset(chosen)

    def _try_start(self, job: Job, allow_suspension: bool, priorities) -> bool:
        driver = self.driver
        assert driver is not None
        if driver.cluster.can_allocate(job.procs):
            driver.start_job(job, procs=self._place(job))
            return True
        if not allow_suspension:
            return False
        free = driver.cluster.free_count
        candidates: list[Job] = []
        covered = free
        for victim in sorted(
            driver.running_jobs(),
            key=lambda r: (priorities[r.job_id], r.job_id),
        ):
            if covered >= job.procs:
                break
            victim_priority = priorities[victim.job_id]
            width = len(victim.allocated_procs)
            if not self.victim_preemptable(victim, driver.now, victim_priority):
                continue
            if not self.criteria.priority_allows(
                priorities[job.job_id], victim_priority
            ):
                continue
            if not self.criteria.width_allows(job.procs, width, reentry=False):
                continue
            candidates.append(victim)
            covered += width
        if covered < job.procs:
            return False
        chosen: list[Job] = []
        covered_free = free
        for victim in sorted(
            candidates, key=lambda c: (-len(c.allocated_procs), c.job_id)
        ):
            if covered_free >= job.procs:
                break
            chosen.append(victim)
            covered_free += len(victim.allocated_procs)
        freed: set[int] = set()
        for victim in chosen:
            freed |= victim.allocated_procs
            driver.suspend_job(victim, preemptor=job.job_id)
        driver.start_job(job, procs=self._place(job, preferred=frozenset(freed)))
        return True

    def _try_resume(self, job: Job, allow_suspension: bool, priorities) -> bool:
        driver = self.driver
        assert driver is not None
        needed = job.suspended_procs
        if driver.cluster.can_allocate_specific(needed):
            driver.start_job(job)
            return True
        if not allow_suspension:
            return False
        idle_priority = priorities[job.job_id]
        owner_ids = driver.cluster.owners_overlapping(needed)
        owners = sorted(
            (r for r in driver.running_jobs() if r.job_id in owner_ids),
            key=lambda r: r.job_id,
        )
        if len(owners) != len(owner_ids):  # pragma: no cover - defensive
            return False
        for victim in owners:
            victim_priority = priorities[victim.job_id]
            if not self.victim_preemptable(victim, driver.now, victim_priority):
                return False
            if not self.criteria.priority_allows(idle_priority, victim_priority):
                return False
        for victim in owners:
            driver.suspend_job(victim, preemptor=job.job_id)
        if driver.cluster.can_allocate_specific(needed):
            driver.start_job(job)
            return True
        return False  # pragma: no cover - owners covered all of `needed`


def run_sim_legacy(jobs, scheduler, n_procs):
    """run_sim twin on the full legacy kernel (LegacyCluster)."""
    driver = SchedulingSimulation(cluster=LegacyCluster(n_procs), scheduler=scheduler)
    return driver.run(jobs)


def _schedule_signature(result):
    """Every externally observable per-job outcome, for exact equality."""
    return [
        (
            j.job_id,
            j.first_start_time,
            j.finish_time,
            j.suspension_count,
        )
        for j in result.jobs
    ]


# ----------------------------------------------------------------------
# substrate micro-benches
# ----------------------------------------------------------------------
def test_event_queue_push_pop(benchmark):
    def run():
        q = EventQueue()
        for i in range(2000):
            q.schedule(float(i % 97), EventKind.GENERIC, i)
        while q:
            q.pop()

    benchmark(run)


def test_event_queue_with_cancellation(benchmark):
    def run():
        q = EventQueue()
        events = [q.schedule(float(i % 53), EventKind.GENERIC, i) for i in range(2000)]
        for ev in events[::2]:
            q.cancel(ev)
        while q:
            q.pop()

    benchmark(run)


def _profile_workload(profile_cls):
    p = profile_cls(430, origin=0.0)
    for i in range(300):
        width = 8 + (i * 7) % 48
        anchor = p.find_anchor(100.0 + (i % 60), width)
        p.claim(anchor, 100.0 + (i % 60), width)
    return p


def test_profile_claim_and_anchor(benchmark):
    benchmark(_profile_workload, AvailabilityProfile)


def test_profile_claim_and_anchor_legacy(benchmark):
    """The O(n^2) rescan + insert-churn profile, same workload."""
    benchmark(_profile_workload, LegacyAvailabilityProfile)


def test_profile_ops_identical():
    """Merged-walk anchors and spliced claims change cost, not plans."""
    fast = _profile_workload(AvailabilityProfile)
    slow = _profile_workload(LegacyAvailabilityProfile)
    assert fast.breakpoints() == slow.breakpoints()


def _cluster_workload(cluster_cls):
    c = cluster_cls(430)
    for round_ in range(50):
        held = []
        for i in range(100):
            held.append((i, c.allocate(4, owner=i)))
        for owner, procs in held:
            c.release(procs, owner)
    return c


def test_cluster_allocate_release(benchmark):
    c = benchmark(_cluster_workload, Cluster)
    assert c.free_count == 430


def test_cluster_allocate_release_legacy(benchmark):
    """The set/dict cluster, same allocate/release workload."""
    c = benchmark(_cluster_workload, LegacyCluster)
    assert c.free_count == 430


# ----------------------------------------------------------------------
# end-to-end simulation rate
# ----------------------------------------------------------------------
def test_simulation_rate_easy(benchmark):
    def run():
        return run_sim(fresh_copies(JOBS_SDSC), EasyBackfillScheduler(), n_procs=128)

    result = benchmark(run)
    assert len(result.jobs) == len(JOBS_SDSC)


def test_simulation_rate_ss(benchmark):
    def run():
        return run_sim(
            fresh_copies(JOBS_SDSC),
            SelectiveSuspensionScheduler(suspension_factor=2.0),
            n_procs=128,
        )

    result = benchmark(run)
    assert len(result.jobs) == len(JOBS_SDSC)


def test_simulation_rate_ss_null_recorder(benchmark):
    """SS throughput with the null recorder attached.

    The zero-overhead-when-off contract (docs/TRACING.md): passing a
    disabled recorder must leave ``driver.tracer is None``, so the only
    possible cost over ``test_simulation_rate_ss`` is the per-site
    ``if tracer is not None`` guards.  Compare the two benches in the
    same run; the gap stays within the noise floor (<2% measured).
    """
    from repro.obs import NULL_RECORDER

    def run():
        driver = SchedulingSimulation(
            cluster=Cluster(128),
            scheduler=SelectiveSuspensionScheduler(suspension_factor=2.0),
            recorder=NULL_RECORDER,
        )
        return driver.run(fresh_copies(JOBS_SDSC))

    result = benchmark(run)
    assert result.counters is None  # disabled recorder -> no tracer
    assert len(result.jobs) == len(JOBS_SDSC)


def test_simulation_rate_ss_legacy_sweep(benchmark):
    """The full pre-optimisation kernel on the same SDSC trace.

    Compare this bench's time against ``test_simulation_rate_ss`` in
    the same run: the gap is what the bitmask cluster plus the
    sweep-scoped snapshot/victim-list/pinned-mask structures save (it
    widens with congestion -- see the ``*_congested`` pair).
    """

    def run():
        return run_sim_legacy(
            fresh_copies(JOBS_SDSC),
            LegacySweepScheduler(suspension_factor=2.0),
            n_procs=128,
        )

    result = benchmark(run)
    assert len(result.jobs) == len(JOBS_SDSC)


def test_simulation_rate_ss_congested(benchmark):
    """SS on the overloaded trace where the quadratic terms dominated."""

    def run():
        return run_sim(
            fresh_copies(JOBS_CONGESTED),
            SelectiveSuspensionScheduler(suspension_factor=2.0),
            n_procs=128,
        )

    result = benchmark(run)
    assert len(result.jobs) == len(JOBS_CONGESTED)


def test_simulation_rate_ss_congested_legacy(benchmark):
    """The legacy kernel on the same overloaded trace."""

    def run():
        return run_sim_legacy(
            fresh_copies(JOBS_CONGESTED),
            LegacySweepScheduler(suspension_factor=2.0),
            n_procs=128,
        )

    result = benchmark(run)
    assert len(result.jobs) == len(JOBS_CONGESTED)


# ----------------------------------------------------------------------
# decision equivalence: the speedups change cost, never the schedule
# ----------------------------------------------------------------------
def test_kernel_equivalence_identical():
    """Optimised kernel == full legacy kernel, decision for decision.

    Runs the bitmask-cluster/incremental-sweep kernel and the complete
    legacy reference (set cluster + naive sweep) over the same traces
    and asserts per-job start/finish/suspension equality plus the
    aggregate counters.  This is the in-run witness behind every
    speedup ratio ``tools/bench_gate.py`` reports.
    """
    for jobs in (JOBS_SDSC, JOBS_CONGESTED):
        fast = run_sim(
            fresh_copies(jobs),
            SelectiveSuspensionScheduler(suspension_factor=2.0),
            n_procs=128,
        )
        slow = run_sim_legacy(
            fresh_copies(jobs),
            LegacySweepScheduler(suspension_factor=2.0),
            n_procs=128,
        )
        assert _schedule_signature(fast) == _schedule_signature(slow)
        assert fast.total_suspensions == slow.total_suspensions
        assert fast.makespan == slow.makespan


def test_sweep_priority_snapshot_identical():
    """The snapshot optimisation changes cost, not decisions.

    The original PR-1 witness, retained: optimised sweep vs the naive
    recomputing sweep on the *same* (bitmask) cluster.
    """
    fast = run_sim(
        fresh_copies(JOBS_SDSC),
        SelectiveSuspensionScheduler(suspension_factor=2.0),
        n_procs=128,
    )
    slow = run_sim(
        fresh_copies(JOBS_SDSC),
        LegacySweepScheduler(suspension_factor=2.0),
        n_procs=128,
    )
    assert _schedule_signature(fast) == _schedule_signature(slow)
    assert fast.total_suspensions == slow.total_suspensions
    assert fast.makespan == slow.makespan


# ----------------------------------------------------------------------
# ingestion: streaming SWF parse / convert throughput
# ----------------------------------------------------------------------
#: records in the bench log; large enough that per-record costs dominate
#: file-open overhead, small enough to keep the suite fast.  The >=100k
#: peak-RSS assertion lives in tools/bench_gate.py (it needs subprocess
#: isolation to measure ru_maxrss, which pytest-benchmark cannot give).
INGEST_LINES = 20_000


@pytest.fixture(scope="module")
def ingest_log(tmp_path_factory):
    path = tmp_path_factory.mktemp("ingest") / "ingest.swf"
    write_synthetic_swf(path, INGEST_LINES)
    return path


def test_swf_stream_parse(benchmark, ingest_log):
    """Raw streaming parse rate: lines -> SWFRecord, no conversion."""

    def run() -> int:
        return sum(1 for _ in stream_swf(ingest_log))

    assert benchmark(run) == INGEST_LINES


def test_swf_stream_to_jobs(benchmark, ingest_log):
    """Full ingestion rate: parse + hygiene filters + Job construction."""

    def run() -> int:
        return sum(1 for _ in stream_jobs(stream_swf(ingest_log), max_procs=128))

    assert benchmark(run) == INGEST_LINES

"""Tables II / III / VII / VIII: job distribution by category.

Regenerates the synthetic workload's category shares and checks them
against the paper's published distribution tables (the generator is a
multinomial draw over exactly those tables, so this also validates the
calibration end of the substitution described in DESIGN.md section 3).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import N_JOBS, SEED, run_once
from repro.experiments import paper
from repro.experiments.reference import (
    PAPER_TABLE_2_CTC_SHARES,
    PAPER_TABLE_3_SDSC_SHARES,
)

REFERENCE = {"CTC": PAPER_TABLE_2_CTC_SHARES, "SDSC": PAPER_TABLE_3_SDSC_SHARES}


@pytest.mark.parametrize("trace", ["CTC", "SDSC"])
def test_tables_2_3_distribution(benchmark, trace):
    out = run_once(
        benchmark, paper.job_distribution, trace=trace, n_jobs=N_JOBS, seed=SEED
    )
    print()
    print(out.report)
    shares = out.data["shares16"]
    for cat, expected in REFERENCE[trace].items():
        got = shares.get(cat, 0.0)
        assert abs(got - expected) < 0.03, f"{trace} {cat}: {got:.3f} vs {expected}"
    # 4-way shares are the 16-way shares folded (Tables VII/VIII)
    four = out.data["shares4"]
    assert abs(sum(four.values()) - 1.0) < 1e-9


def test_table_7_ctc_four_way(benchmark):
    """Table VII's published CTC 4-way split: 44/30/13/13 percent."""
    out = run_once(
        benchmark, paper.job_distribution, trace="CTC", n_jobs=N_JOBS, seed=SEED
    )
    four = out.data["shares4"]
    expected = {("S", "N"): 0.44, ("S", "W"): 0.30, ("L", "N"): 0.13, ("L", "W"): 0.13}
    for cat, val in expected.items():
        assert abs(four.get(cat, 0.0) - val) < 0.04, (cat, four.get(cat))

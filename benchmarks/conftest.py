"""Shared benchmark configuration.

Every paper-figure benchmark runs its experiment exactly once (rounds=1)
-- these are regeneration harnesses, not micro-timings -- and prints the
experiment's report so the bench log contains the same rows/series the
paper's table or figure shows.  Micro-benchmarks (bench_micro.py) use
pytest-benchmark conventionally.

Scale knobs: REPRO_BENCH_JOBS (default 2000) and REPRO_BENCH_SEED
(default 7) environment variables resize every figure bench.
"""

from __future__ import annotations

import os

import pytest

#: workload size for figure regeneration benches
N_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "2000"))
#: workload seed
SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))


def run_once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under the benchmark timer; return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def bench_sizes():
    return {"n_jobs": N_JOBS, "seed": SEED}

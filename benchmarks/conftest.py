"""Shared benchmark configuration.

Every paper-figure benchmark runs its experiment exactly once (rounds=1)
-- these are regeneration harnesses, not micro-timings -- and prints the
experiment's report so the bench log contains the same rows/series the
paper's table or figure shows.  Micro-benchmarks (bench_micro.py) use
pytest-benchmark conventionally.

Scale knobs: REPRO_BENCH_JOBS (default 2000) and REPRO_BENCH_SEED
(default 7) environment variables resize every figure bench.

Execution knobs: REPRO_BENCH_WORKERS fans the grid-shaped benches
(load variation, estimate impact, ablations) over a process pool
(0 = one worker per CPU; unset/1 = serial, the timing-honest default),
and REPRO_BENCH_CACHE points them at an on-disk result cache so a
re-run after an interrupted session skips finished cells.  Both knobs
change wall-clock only -- the simulator is deterministic and the merge
order fixed, so reports and assertions are identical either way.

Fault-tolerance knobs: REPRO_BENCH_CELL_TIMEOUT (seconds a pooled cell
may run before its worker is culled and the cell retried) and
REPRO_BENCH_CELL_RETRIES (failed attempts each cell may retry) build
the :class:`~repro.experiments.parallel.GridPolicy` every grid bench
passes through, so a long overnight sweep survives a wedged or killed
worker without code changes.  Unset, the policy is the conservative
default (no timeout, no retries) and behaviour is unchanged.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.parallel import GridPolicy

#: workload size for figure regeneration benches
N_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "2000"))
#: workload seed
SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))
#: process-pool width for grid benches (None = serial)
WORKERS: int | None = (
    int(os.environ["REPRO_BENCH_WORKERS"])
    if os.environ.get("REPRO_BENCH_WORKERS")
    else None
)
#: shared on-disk result cache for grid benches (None = off)
CACHE: ResultCache | None = (
    ResultCache(os.environ["REPRO_BENCH_CACHE"])
    if os.environ.get("REPRO_BENCH_CACHE")
    else None
)
#: fault-tolerance policy for grid benches, from REPRO_BENCH_CELL_*
POLICY: GridPolicy = GridPolicy.from_env()


def run_once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under the benchmark timer; return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def bench_sizes():
    return {"n_jobs": N_JOBS, "seed": SEED}

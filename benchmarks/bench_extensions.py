"""Extension benches: the substrate schedulers beyond the paper's set.

Not paper figures -- these place the reproduction's extra schedulers
(relaxed backfilling, speculative backfilling, gang scheduling) on the
same workloads so their trade-offs can be read against NS / SS:

* relaxed backfilling trades bounded head delay for utilisation;
* speculative backfilling redistributes delay toward jobs that win
  test runs, at a bounded waste bill;
* gang scheduling shows what *indiscriminate* preemption costs.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SEED, run_once
from repro.analysis.charts import bar_chart
from repro.core.selective_suspension import SelectiveSuspensionScheduler
from repro.experiments.runner import simulate
from repro.metrics.aggregate import overall_stats
from repro.schedulers.easy import EasyBackfillScheduler
from repro.schedulers.gang import GangScheduler
from repro.schedulers.relaxed import RelaxedBackfillScheduler
from repro.schedulers.speculative import SpeculativeBackfillScheduler
from repro.workload.archive import get_preset
from repro.workload.estimates import InaccurateEstimates
from repro.workload.synthetic import generate_trace

N_JOBS = 1200
TRACE = "SDSC"


@pytest.fixture(scope="module")
def workload():
    preset = get_preset(TRACE)
    jobs = generate_trace(
        TRACE, n_jobs=N_JOBS, seed=SEED, estimate_model=InaccurateEstimates()
    )
    return jobs, preset.n_procs


def test_extension_scheduler_zoo(benchmark, workload):
    """All substrate schedulers on one over-estimated workload."""
    jobs, n_procs = workload

    def run():
        return {
            "EASY (NS)": simulate(jobs, EasyBackfillScheduler(), n_procs),
            "RELAXED r=0.5": simulate(jobs, RelaxedBackfillScheduler(0.5), n_procs),
            "SPEC-BF": simulate(jobs, SpeculativeBackfillScheduler(), n_procs),
            "GANG 10min": simulate(jobs, GangScheduler(600.0), n_procs),
            "SS SF=2": simulate(jobs, SelectiveSuspensionScheduler(2.0), n_procs),
        }

    results = run_once(benchmark, run)
    print()
    print(
        bar_chart(
            {k: overall_stats(r.jobs).slowdown.mean for k, r in results.items()},
            title=f"{TRACE}: overall mean slowdown (log scale)",
            log=True,
        )
    )
    print(
        "suspensions: "
        + "  ".join(f"{k}={r.total_suspensions}" for k, r in results.items())
        + f"  kills: SPEC-BF={results['SPEC-BF'].total_kills}"
    )

    sd = {k: overall_stats(r.jobs).slowdown.mean for k, r in results.items()}
    # every alternative beats plain EASY on this over-estimated mix ...
    assert sd["SS SF=2"] < sd["EASY (NS)"]
    # ... and selective preemption needs far fewer suspensions than gang
    assert (
        results["SS SF=2"].total_suspensions
        < results["GANG 10min"].total_suspensions / 5
    )
    # relaxed stays in EASY's regime (bounded slip, bounded damage)
    assert sd["RELAXED r=0.5"] <= sd["EASY (NS)"] * 1.5
    # speculation actually happened and stayed bounded
    assert results["SPEC-BF"].total_kills >= 0
    assert all(j.kill_count <= 2 for j in results["SPEC-BF"].jobs)


def test_extension_relaxation_sweep(benchmark, workload):
    """Utilisation/slowdown as the relaxation allowance grows."""
    jobs, n_procs = workload

    def run():
        return {
            r: simulate(jobs, RelaxedBackfillScheduler(r), n_procs)
            for r in (0.0, 0.25, 0.5, 1.0)
        }

    results = run_once(benchmark, run)
    print()
    for r, res in results.items():
        print(
            f"relaxation={r:<5g} overall sd="
            f"{overall_stats(res.jobs).slowdown.mean:7.2f} "
            f"steady util={res.steady_utilization:.3f}"
        )
    # r=0 must equal EASY exactly
    easy = simulate(jobs, EasyBackfillScheduler(), n_procs)
    assert overall_stats(results[0.0].jobs).slowdown.mean == pytest.approx(
        overall_stats(easy.jobs).slowdown.mean
    )

"""Figs 11/12 (CTC) and 15/16 (SDSC): worst-case metrics under SS.

Section IV-E's motivation: SS improves worst cases for most categories
but can worsen some long categories -- which is what TSS then repairs
(bench_figs_13_18).  Checks: SS's worst-case slowdown beats NS for the
majority of short categories; IS's worst case on long jobs is bad.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import N_JOBS, SEED, run_once
from repro.experiments import paper


@pytest.mark.parametrize("trace", ["CTC", "SDSC"])
def test_figs_11_16_worst_case(benchmark, trace):
    out = run_once(
        benchmark, paper.ss_worst_case, trace=trace, n_jobs=N_JOBS, seed=SEED
    )
    print()
    print(out.report)
    worst_sd = out.data["slowdown"]
    ns = worst_sd["No Suspension"]
    sf2 = worst_sd["SF = 2"]
    is_ = worst_sd["IS"]

    # SS beats NS's worst case on most short categories it helps
    improved = 0
    considered = 0
    for c in ns:
        if c[0] in ("VS", "S") and c in sf2 and ns[c] > 3.0:
            considered += 1
            if sf2[c] < ns[c]:
                improved += 1
    if considered:
        assert improved >= considered / 2, (improved, considered)

    # IS's worst case on some long category exceeds SS's
    long_cats = [c for c in is_ if c[0] in ("L", "VL") and c in sf2]
    assert any(is_[c] > sf2[c] for c in long_cats)

    # worst-case turnaround is reported for the same scheme set
    assert set(out.data["turnaround"]) == {"SF = 2", "No Suspension", "IS"}

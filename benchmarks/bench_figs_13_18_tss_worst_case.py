"""Figs 13/14 (CTC) and 17/18 (SDSC): TSS repairs the worst cases.

Section IV-E: adding per-category preemption limits (1.5x the
category's average slowdown) improves worst-case slowdown/turnaround
for many categories without affecting the others.  Checks:

* TSS's worst-case turnaround is <= plain SS's for a clear majority of
  categories (within a tolerance band for the rest);
* TSS does not destroy the average-slowdown win over NS.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import N_JOBS, SEED, run_once
from repro.experiments import paper


@pytest.mark.parametrize("trace", ["CTC", "SDSC"])
def test_figs_13_18_tss_worst_case(benchmark, trace):
    out = run_once(
        benchmark, paper.tss_worst_case, trace=trace, n_jobs=N_JOBS, seed=SEED
    )
    print()
    print(out.report)
    worst_tat = out.data["turnaround"]
    ss = worst_tat["SF = 2"]
    tss = worst_tat["SF = 2 Tuned"]

    not_worse = 0
    total = 0
    for c in ss:
        if c in tss:
            total += 1
            if tss[c] <= ss[c] * 1.25:
                not_worse += 1
    assert total >= 8
    assert not_worse >= total * 0.6, f"TSS degraded too many categories: {not_worse}/{total}"

    # TSS remains a preemptive scheme: it still beats NS's worst case
    # on the very short wide categories where SS shines
    worst_sd = out.data["slowdown"]
    ns = worst_sd["No Suspension"]
    for c in (("VS", "VW"), ("VS", "W")):
        if c in ns and c in worst_sd["SF = 2 Tuned"] and ns[c] > 5.0:
            assert worst_sd["SF = 2 Tuned"][c] < ns[c]

"""Figs 19-30: impact of inaccurate user estimates (section V).

Runs the tuned schemes under the two-population over-estimation model
and reports averages for all jobs and the well/badly estimated groups
separately (the paper's 12 figures collapse into these six matrices).

Shape checks (section V's conclusions):

* SS still improves most categories over NS despite bad estimates;
* the VS categories' residual pain under SS comes from the *badly*
  estimated jobs (they look long to the xfactor and cannot preempt);
* IS's 10-minute timeslice makes it insensitive to estimates for VS.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import CACHE, N_JOBS, POLICY, SEED, WORKERS, run_once
from repro.experiments import paper

#: this bench simulates 6 schemes per trace under heavy over-estimation
#: (long queues), so it caps the workload to keep the harness quick
N_JOBS = min(N_JOBS, 1200)


@pytest.mark.parametrize("trace", ["CTC", "SDSC"])
def test_figs_19_30_estimate_impact(benchmark, trace):
    out = run_once(
        benchmark,
        paper.estimate_impact,
        trace=trace,
        n_jobs=N_JOBS,
        seed=SEED,
        workers=WORKERS,
        cache=CACHE,
        policy=POLICY,
    )
    print()
    print(out.report)

    all_sd = out.data["all"]["slowdown"]
    well_sd = out.data["well"]["slowdown"]
    badly_sd = out.data["badly"]["slowdown"]
    ns = all_sd["No Suspension"]
    tss2 = all_sd["SF = 2 Tuned"]

    # SS/TSS still wins broadly with inaccurate estimates
    improved = sum(
        1 for c in ns if c in tss2 and ns[c] > 2.0 and tss2[c] < ns[c]
    )
    contested = sum(1 for c in ns if c in tss2 and ns[c] > 2.0)
    if contested:
        assert improved >= contested / 2, (improved, contested)

    # the badly estimated short jobs fare worse than the well estimated
    # ones under the xfactor-driven schemes
    worse = 0
    compared = 0
    for c in (("VS", "Seq"), ("VS", "N"), ("VS", "W"), ("VS", "VW")):
        w = well_sd["SF = 2 Tuned"].get(c)
        b = badly_sd["SF = 2 Tuned"].get(c)
        if w is not None and b is not None:
            compared += 1
            if b >= w:
                worse += 1
    if compared:
        assert worse >= compared / 2, (worse, compared)

    # estimate split is exhaustive: every category population in "all"
    # appears in at least one of the two groups
    for c in tss2:
        assert c in well_sd["SF = 2 Tuned"] or c in badly_sd["SF = 2 Tuned"]

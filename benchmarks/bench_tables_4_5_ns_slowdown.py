"""Tables IV / V: per-category average slowdown under NS backfilling.

The calibration anchor of the whole reproduction: the synthetic CTC and
SDSC workloads are tuned so the non-preemptive baseline reproduces the
paper's per-category slowdown structure (overall 3.58 / 14.13; VS-VW
34 / 113; monotone growth with width, decay with length).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import N_JOBS, SEED, run_once
from repro.experiments import paper
from repro.experiments.reference import (
    PAPER_OVERALL_NS_SLOWDOWN,
    PAPER_TABLE_4_CTC_NS_SLOWDOWN,
    PAPER_TABLE_5_SDSC_NS_SLOWDOWN,
)

REFERENCE = {
    "CTC": PAPER_TABLE_4_CTC_NS_SLOWDOWN,
    "SDSC": PAPER_TABLE_5_SDSC_NS_SLOWDOWN,
}


@pytest.mark.parametrize("trace", ["CTC", "SDSC"])
def test_tables_4_5_ns_slowdown(benchmark, trace):
    out = run_once(
        benchmark, paper.ns_baseline_slowdowns, trace=trace, n_jobs=N_JOBS, seed=SEED
    )
    print()
    print(out.report)
    ref = REFERENCE[trace]
    grid = out.data["grid"]

    # overall lands within a factor band of the paper's number
    paper_overall = PAPER_OVERALL_NS_SLOWDOWN[trace]
    assert out.data["overall"] < 3.0 * paper_overall
    assert out.data["overall"] > paper_overall / 3.0

    # shape: VS row dominates, slowdown grows with width within VS
    vs_row = [grid.get(("VS", w)) for w in ("Seq", "N", "W", "VW")]
    vs_row = [v for v in vs_row if v is not None]
    assert vs_row == sorted(vs_row), "VS slowdown must grow with width"

    # shape: VL jobs are barely slowed anywhere
    for w in ("Seq", "N", "W", "VW"):
        val = grid.get(("VL", w))
        if val is not None:
            assert val < 4.0, f"VL {w} too slow: {val}"

    # the worst category is the paper's worst category (VS VW)
    worst = max(grid, key=lambda c: grid[c])
    assert worst == ("VS", "VW")
    # and lands within a factor-3 band of the published value
    assert grid[worst] < 3.0 * ref[("VS", "VW")]
    assert grid[worst] > ref[("VS", "VW")] / 3.0

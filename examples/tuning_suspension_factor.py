#!/usr/bin/env python3
"""Tuning the suspension factor.

Sweeps SF over [1.1, 5] on a CTC-shaped workload and shows the paper's
section IV trade-off in one table:

* low SF  -> short jobs rescued fastest, but long jobs suspended often
  (high suspension counts, worse VL slowdowns);
* SF = 2  -> the sweet spot the paper uses for its headline results;
* high SF -> approaches the non-preemptive baseline.

The sweep is an independent grid, so it fans out over the PR-1
executor: ``--workers 0`` runs every SF at once, ``--cache-dir`` makes
re-sweeps free, and ``--trace-out`` records the SF = 2 cell's decision
trace (docs/TRACING.md) -- each preemption behind the table's
suspension counts, with the xfactor that justified it.

Also prints the two-task theory thresholds so the simulated suspension
counts can be read against the analytical alternation regimes.

Run:  python examples/tuning_suspension_factor.py [--workers 0]
          [--cache-dir cache] [--trace-out sf2.jsonl]
"""

import argparse

from repro import generate_trace, overall_stats, per_category_stats
from repro.analysis.tables import render_table
from repro.core import SelectiveSuspensionScheduler
from repro.core.theory import threshold_for_max_suspensions
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import GridCell, run_grid
from repro.schedulers import EasyBackfillScheduler
from repro.workload.archive import get_preset

SFS = (1.1, 1.5, 2.0, 3.0, 5.0)
TRACED_SF = 2.0


def mean_sd(result, predicate):
    stats = per_category_stats(result.jobs)
    vals = [s.slowdown.mean for c, s in stats.items() if predicate(c)]
    return sum(vals) / len(vals) if vals else float("nan")


def main() -> None:
    parser = argparse.ArgumentParser(description="SF trade-off sweep")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size (0 = one per CPU, default serial)")
    parser.add_argument("--cache-dir", default=None,
                        help="directory for the content-addressed result cache")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help=f"JSONL decision trace of the SF={TRACED_SF:g} cell")
    args = parser.parse_args()

    preset = get_preset("CTC")
    jobs = generate_trace("CTC", n_jobs=1200, seed=9)

    cells = [
        GridCell(key="ns", jobs=jobs, n_procs=preset.n_procs,
                 scheduler_config=EasyBackfillScheduler().config()),
    ]
    for sf in SFS:
        cells.append(
            GridCell(
                key=f"sf={sf:g}",
                jobs=jobs,
                n_procs=preset.n_procs,
                scheduler_config=SelectiveSuspensionScheduler(suspension_factor=sf).config(),
                trace_path=args.trace_out if sf == TRACED_SF else None,
            )
        )
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    outcome = run_grid(cells, workers=args.workers, cache=cache)
    print(f"(simulated {outcome.executed} cell(s), {outcome.cache_hits} from cache)\n")

    ns = outcome.results["ns"]
    rows = [
        [
            "NS (no susp.)",
            overall_stats(ns.jobs).slowdown.mean,
            mean_sd(ns, lambda c: c[0] == "VS"),
            mean_sd(ns, lambda c: c[0] == "VL"),
            0,
        ]
    ]
    for sf in SFS:
        r = outcome.results[f"sf={sf:g}"]
        rows.append(
            [
                f"SS SF={sf:g}",
                overall_stats(r.jobs).slowdown.mean,
                mean_sd(r, lambda c: c[0] == "VS"),
                mean_sd(r, lambda c: c[0] == "VL"),
                r.total_suspensions,
            ]
        )

    print(
        render_table(
            ["scheme", "overall sd", "VS mean sd", "VL mean sd", "suspensions"],
            rows,
        )
    )

    print("\nTwo-task alternation thresholds (frozen-priority semantics):")
    for n in range(3):
        print(
            f"  at most {n} suspension(s) between two equal jobs needs "
            f"SF >= {threshold_for_max_suspensions(n):.4f}"
        )
    print(
        "\nReading: below SF=2 the short categories improve further, but the\n"
        "suspension count (and VL disturbance) climbs -- the paper picks 1.5-5."
    )

    if args.trace_out:
        from repro.obs import read_trace, summarize_trace

        summary = summarize_trace(read_trace(args.trace_out))
        denials = sum(summary.preempt_denials.values())
        print(
            f"\nSF={TRACED_SF:g} decision trace -> {args.trace_out}: "
            f"{summary.preempt_grants} preemptions granted, {denials} denied "
            f"({'consistent' if summary.matches_run_end else 'INCONSISTENT'} "
            "with driver totals)"
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Tuning the suspension factor.

Sweeps SF over [1.1, 5] on a CTC-shaped workload and shows the paper's
section IV trade-off in one table:

* low SF  -> short jobs rescued fastest, but long jobs suspended often
  (high suspension counts, worse VL slowdowns);
* SF = 2  -> the sweet spot the paper uses for its headline results;
* high SF -> approaches the non-preemptive baseline.

Also prints the two-task theory thresholds so the simulated suspension
counts can be read against the analytical alternation regimes.

Run:  python examples/tuning_suspension_factor.py
"""

from repro import generate_trace, overall_stats, per_category_stats, simulate
from repro.analysis.tables import render_table
from repro.core import SelectiveSuspensionScheduler
from repro.core.theory import threshold_for_max_suspensions
from repro.schedulers import EasyBackfillScheduler
from repro.workload.archive import get_preset

SFS = (1.1, 1.5, 2.0, 3.0, 5.0)


def mean_sd(result, predicate):
    stats = per_category_stats(result.jobs)
    vals = [s.slowdown.mean for c, s in stats.items() if predicate(c)]
    return sum(vals) / len(vals) if vals else float("nan")


def main() -> None:
    preset = get_preset("CTC")
    jobs = generate_trace("CTC", n_jobs=1200, seed=9)

    ns = simulate(jobs, EasyBackfillScheduler(), preset.n_procs)
    rows = [
        [
            "NS (no susp.)",
            overall_stats(ns.jobs).slowdown.mean,
            mean_sd(ns, lambda c: c[0] == "VS"),
            mean_sd(ns, lambda c: c[0] == "VL"),
            0,
        ]
    ]
    for sf in SFS:
        r = simulate(
            jobs, SelectiveSuspensionScheduler(suspension_factor=sf), preset.n_procs
        )
        rows.append(
            [
                f"SS SF={sf:g}",
                overall_stats(r.jobs).slowdown.mean,
                mean_sd(r, lambda c: c[0] == "VS"),
                mean_sd(r, lambda c: c[0] == "VL"),
                r.total_suspensions,
            ]
        )

    print(
        render_table(
            ["scheme", "overall sd", "VS mean sd", "VL mean sd", "suspensions"],
            rows,
        )
    )

    print("\nTwo-task alternation thresholds (frozen-priority semantics):")
    for n in range(3):
        print(
            f"  at most {n} suspension(s) between two equal jobs needs "
            f"SF >= {threshold_for_max_suspensions(n):.4f}"
        )
    print(
        "\nReading: below SF=2 the short categories improve further, but the\n"
        "suspension count (and VL disturbance) climbs -- the paper picks 1.5-5."
    )


if __name__ == "__main__":
    main()

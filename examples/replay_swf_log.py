#!/usr/bin/env python3
"""Replay a real Standard Workload Format log.

The reproduction ships calibrated synthetic workloads, but the whole
point of the SWF layer is that a real Parallel Workloads Archive log
(CTC-SP2, SDSC-SP2, KTH-SP2, ...) drops straight in.  This example:

1. takes an SWF path on the command line (or synthesises a demo file
   so the example is runnable offline);
2. applies the standard hygiene filters;
3. runs NS, SS and IS over the first N jobs and prints the comparison.

Run:  python examples/replay_swf_log.py [path/to/log.swf] [n_jobs]
"""

import sys
import tempfile
from pathlib import Path

from repro import simulate
from repro.analysis.report import scheme_comparison_report
from repro.core import ImmediateServiceScheduler, SelectiveSuspensionScheduler
from repro.schedulers import EasyBackfillScheduler
from repro.workload.swf import (
    jobs_from_swf_records,
    jobs_to_swf_records,
    read_swf,
    read_swf_header,
    write_swf,
)
from repro.workload.synthetic import generate_trace

MACHINE_PROCS = 128  # SDSC SP2 size; adjust to the log's machine


def demo_swf() -> Path:
    """Write a synthetic SWF file so the example runs without a log."""
    jobs = generate_trace("SDSC", n_jobs=600, seed=100)
    path = Path(tempfile.gettempdir()) / "repro_demo_trace.swf"
    write_swf(
        path,
        jobs_to_swf_records(jobs),
        header={"Computer": "synthetic SDSC-shaped demo", "MaxNodes": "128"},
    )
    print(f"(no SWF given -- wrote a synthetic demo log to {path})\n")
    return path


def main() -> None:
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else demo_swf()
    n_jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 600

    header = read_swf_header(path)
    if header:
        print("log header:")
        for key, value in list(header.items())[:6]:
            print(f"  {key}: {value}")
        print()

    records = read_swf(path)
    jobs = jobs_from_swf_records(records, max_procs=MACHINE_PROCS)[:n_jobs]
    print(f"parsed {len(records)} records -> {len(jobs)} simulate-ready jobs\n")

    results = {
        "No Suspension": simulate(jobs, EasyBackfillScheduler(), MACHINE_PROCS),
        "SS (SF=2)": simulate(
            jobs, SelectiveSuspensionScheduler(suspension_factor=2.0), MACHINE_PROCS
        ),
        "IS": simulate(jobs, ImmediateServiceScheduler(), MACHINE_PROCS),
    }
    print(
        scheme_comparison_report(
            f"replay of {path.name}", results, metric="slowdown"
        )
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Replay a real Standard Workload Format log through the streaming pipeline.

The reproduction ships calibrated synthetic workloads, but the whole
point of the SWF layer is that a real Parallel Workloads Archive log
(CTC-SP2, SDSC-SP2, KTH-SP2, ...) drops straight in -- without ever
being materialised.  This example:

1. takes an SWF path on the command line (or synthesises a demo file
   so the example is runnable offline);
2. streams it through :func:`repro.workload.pipeline.open_workload`
   (constant-memory parse + hygiene filters + lazy transformations);
3. replays it in time-windowed shards through the crash-safe grid
   executor (:func:`repro.experiments.parallel.replay_sharded`) under
   NS, SS and IS, and prints the comparison plus each replay's outcome
   fingerprint (the byte-identity witness from docs/WORKLOADS.md).

Run:  python examples/replay_swf_log.py [path/to/log.swf] [window_hours]
"""

import sys
import tempfile
from pathlib import Path

from repro.core import ImmediateServiceScheduler, SelectiveSuspensionScheduler
from repro.experiments.parallel import replay_sharded
from repro.metrics.aggregate import overall_stats
from repro.schedulers import EasyBackfillScheduler
from repro.workload.pipeline import WorkloadPipeline, open_workload
from repro.workload.swf import jobs_to_swf_records, read_swf_header, write_swf
from repro.workload.synthetic import generate_trace

MACHINE_PROCS = 128  # SDSC SP2 size; overridden by the log's own header


def demo_swf() -> Path:
    """Write a synthetic SWF file so the example runs without a log."""
    jobs = generate_trace("SDSC", n_jobs=600, seed=100)
    path = Path(tempfile.gettempdir()) / "repro_demo_trace.swf"
    write_swf(
        path,
        jobs_to_swf_records(jobs),
        header={"Computer": "synthetic SDSC-shaped demo", "MaxProcs": "128"},
    )
    print(f"(no SWF given -- wrote a synthetic demo log to {path})\n")
    return path


def main() -> None:
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else demo_swf()
    window_hours = float(sys.argv[2]) if len(sys.argv) > 2 else 24.0

    header = read_swf_header(path)
    if header:
        print("log header:")
        for key, value in list(header.items())[:6]:
            print(f"  {key}: {value}")
        print()

    n_procs = MACHINE_PROCS
    if header and header.get("MaxProcs", "").isdigit():
        n_procs = int(header["MaxProcs"])

    pipeline = WorkloadPipeline()  # identity; add stages to rescale/re-estimate
    schemes = {
        "No Suspension": EasyBackfillScheduler(),
        "SS (SF=2)": SelectiveSuspensionScheduler(suspension_factor=2.0),
        "IS": ImmediateServiceScheduler(),
    }

    print(f"replay of {path.name}  ({window_hours:g} h shards, {n_procs} procs)")
    print(f"{'scheme':<16} {'jobs':>6} {'shards':>6} {'mean slowdown':>14}  fingerprint")
    for label, scheduler in schemes.items():
        stream = open_workload(path, pipeline, max_procs=n_procs)
        outcome = replay_sharded(
            stream,
            n_procs,
            scheduler.config(),
            window=window_hours * 3600.0,
            provenance={"pipeline": pipeline.fingerprint(), "source": path.name},
        )
        stats = overall_stats(outcome.jobs)
        print(
            f"{label:<16} {len(outcome.jobs):>6} {outcome.shards:>6} "
            f"{stats.slowdown.mean:>14.2f}  {outcome.fingerprint()[:16]}"
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Capacity planning: when does the machine saturate, and what does
preemption buy under pressure?

The scenario the paper's section VI motivates: a centre expects demand
to grow 10-60% and wants to know (a) where the current machine
saturates and (b) whether deploying preemptive scheduling defers the
pain.  Sweeps the load factor, reports steady-state utilisation and the
short-job experience for NS vs TSS, and locates the knee.

Run:  python examples/capacity_planning.py
"""

from repro import generate_trace, simulate
from repro.analysis.tables import series_table
from repro.core import TunableSelectiveSuspensionScheduler, limits_from_result
from repro.metrics.aggregate import per_category_stats
from repro.schedulers import EasyBackfillScheduler
from repro.workload.archive import get_preset
from repro.workload.categories import classify_four_way
from repro.workload.load import scale_load

LOADS = (1.0, 1.1, 1.2, 1.3, 1.4, 1.5)


def short_job_slowdown(result) -> float:
    stats = per_category_stats(result.jobs, classifier=classify_four_way)
    vals = [s.slowdown.mean for c, s in stats.items() if c[0] == "S"]
    return sum(vals) / len(vals) if vals else float("nan")


def main() -> None:
    preset = get_preset("SDSC")
    base = generate_trace("SDSC", n_jobs=1200, seed=4)

    ns_util, tss_util, ns_short, tss_short = [], [], [], []
    for load in LOADS:
        jobs = scale_load(base, load)
        ns = simulate(jobs, EasyBackfillScheduler(), preset.n_procs)
        tss = simulate(
            jobs,
            TunableSelectiveSuspensionScheduler(
                suspension_factor=2.0, limits=limits_from_result(ns)
            ),
            preset.n_procs,
        )
        ns_util.append(100 * ns.steady_utilization)
        tss_util.append(100 * tss.steady_utilization)
        ns_short.append(short_job_slowdown(ns))
        tss_short.append(short_job_slowdown(tss))

    print(
        series_table(
            "load",
            list(LOADS),
            {
                "NS util %": ns_util,
                "TSS util %": tss_util,
                "NS short-job sd": ns_short,
                "TSS short-job sd": tss_short,
            },
            title=f"{preset.name}: growth scenario on {preset.n_procs} processors",
            precision=1,
        )
    )

    # locate the knee: utilisation stops tracking offered load
    knee = None
    for i in range(1, len(LOADS)):
        expected = ns_util[0] * LOADS[i] / LOADS[0]
        if ns_util[i] < 0.93 * expected:
            knee = LOADS[i]
            break
    print(
        f"\nSaturation knee (NS): ~load {knee or '> ' + str(LOADS[-1])}"
        f" (paper reports {preset.saturation_load} for {preset.name})."
    )
    print(
        "Under pressure the short-job experience diverges: preemption keeps\n"
        "short jobs near slowdown 1-2 while the NS queue drags them with it."
    )


if __name__ == "__main__":
    main()

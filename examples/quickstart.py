#!/usr/bin/env python3
"""Quickstart: simulate one scheduler over a synthetic workload.

Generates a small SDSC-shaped trace, runs the paper's Selective
Suspension scheme (SF = 2) against the non-preemptive EASY baseline,
and prints the per-category slowdown grids side by side -- the
60-second version of the paper's core result.

The two runs fan out over the parallel grid executor, so the PR-1
knobs apply: ``--workers 2`` simulates both schemes at once,
``--cache-dir`` makes reruns instant, and ``--trace-out`` streams the
SS run's decision trace to JSONL (see docs/TRACING.md), which is then
independently replayed and cross-checked.

Run:  python examples/quickstart.py [--workers 2] [--cache-dir cache]
                                    [--trace-out ss.jsonl]
"""

import argparse

from repro import generate_trace, overall_stats, per_category_stats
from repro.analysis.tables import category_grid_table
from repro.core import SelectiveSuspensionScheduler
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import GridCell, run_grid
from repro.schedulers import EasyBackfillScheduler
from repro.workload.archive import get_preset


def main() -> None:
    parser = argparse.ArgumentParser(description="NS vs SS quickstart")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size (0 = one per CPU, default serial)")
    parser.add_argument("--cache-dir", default=None,
                        help="directory for the content-addressed result cache")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write the SS run's JSONL decision trace here")
    args = parser.parse_args()

    preset = get_preset("SDSC")
    jobs = generate_trace("SDSC", n_jobs=1000, seed=42)
    print(f"workload: {len(jobs)} jobs on a {preset.n_procs}-processor machine\n")

    cells = [
        GridCell(key="ns", jobs=jobs, n_procs=preset.n_procs,
                 scheduler_config=EasyBackfillScheduler().config()),
        GridCell(key="ss", jobs=jobs, n_procs=preset.n_procs,
                 scheduler_config=SelectiveSuspensionScheduler(suspension_factor=2.0).config(),
                 trace_path=args.trace_out),
    ]
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    outcome = run_grid(cells, workers=args.workers, cache=cache)
    print(f"(simulated {outcome.executed} cell(s), {outcome.cache_hits} from cache)\n")
    ns, ss = outcome.results["ns"], outcome.results["ss"]

    for label, result in (("No Suspension (EASY backfilling)", ns),
                          ("Selective Suspension, SF = 2", ss)):
        stats = per_category_stats(result.jobs)
        grid = {c: s.slowdown.mean for c, s in stats.items()}
        print(category_grid_table(grid, title=f"{label} -- mean bounded slowdown"))
        print(
            f"overall: {overall_stats(result.jobs).slowdown.mean:.2f}   "
            f"utilization: {result.utilization:.3f}   "
            f"suspensions: {result.total_suspensions}\n"
        )

    ns_sd = overall_stats(ns.jobs).slowdown.mean
    ss_sd = overall_stats(ss.jobs).slowdown.mean
    print(
        f"Selective suspension cut the overall mean slowdown from "
        f"{ns_sd:.2f} to {ss_sd:.2f} ({ns_sd / ss_sd:.1f}x) by suspending "
        f"{ss.total_suspensions} times."
    )

    if args.trace_out:
        from repro.obs import format_summary, read_trace, summarize_trace

        print(f"\nSS decision trace written to {args.trace_out}; replaying it:")
        print(format_summary(summarize_trace(read_trace(args.trace_out))))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: simulate one scheduler over a synthetic workload.

Generates a small SDSC-shaped trace, runs the paper's Selective
Suspension scheme (SF = 2) against the non-preemptive EASY baseline,
and prints the per-category slowdown grids side by side -- the
60-second version of the paper's core result.

Run:  python examples/quickstart.py
"""

from repro import generate_trace, overall_stats, per_category_stats, simulate
from repro.analysis.tables import category_grid_table
from repro.core import SelectiveSuspensionScheduler
from repro.schedulers import EasyBackfillScheduler
from repro.workload.archive import get_preset


def main() -> None:
    preset = get_preset("SDSC")
    jobs = generate_trace("SDSC", n_jobs=1000, seed=42)
    print(f"workload: {len(jobs)} jobs on a {preset.n_procs}-processor machine\n")

    ns = simulate(jobs, EasyBackfillScheduler(), preset.n_procs)
    ss = simulate(jobs, SelectiveSuspensionScheduler(suspension_factor=2.0), preset.n_procs)

    for label, result in (("No Suspension (EASY backfilling)", ns),
                          ("Selective Suspension, SF = 2", ss)):
        stats = per_category_stats(result.jobs)
        grid = {c: s.slowdown.mean for c, s in stats.items()}
        print(category_grid_table(grid, title=f"{label} -- mean bounded slowdown"))
        print(
            f"overall: {overall_stats(result.jobs).slowdown.mean:.2f}   "
            f"utilization: {result.utilization:.3f}   "
            f"suspensions: {result.total_suspensions}\n"
        )

    ns_sd = overall_stats(ns.jobs).slowdown.mean
    ss_sd = overall_stats(ss.jobs).slowdown.mean
    print(
        f"Selective suspension cut the overall mean slowdown from "
        f"{ns_sd:.2f} to {ss_sd:.2f} ({ns_sd / ss_sd:.1f}x) by suspending "
        f"{ss.total_suspensions} times."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Three styles of preemption on one workload.

Compares the full scheduler zoo on the same trace:

* non-preemptive: FCFS, conservative backfilling, EASY (the paper's NS);
* indiscriminate preemption: gang scheduling (time-driven) and
  Immediate Service (arrival-driven);
* selective preemption: SS and TSS (priority-driven, the paper's
  contribution).

Prints one row per scheduler: overall and very-short-job slowdown, the
suspension bill, and utilisation -- the whole argument of the paper in
one table.  With --overhead, every suspension pays the disk-swap price,
which is where indiscriminate preemption stops being free.

Run:  python examples/preemption_styles.py [--overhead]
"""

import sys

from repro import generate_trace, simulate
from repro.analysis.tables import render_table
from repro.core import (
    DiskSwapOverheadModel,
    ImmediateServiceScheduler,
    SelectiveSuspensionScheduler,
    TunableSelectiveSuspensionScheduler,
)
from repro.metrics.aggregate import overall_stats, per_category_stats
from repro.schedulers import (
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    FCFSScheduler,
    GangScheduler,
)
from repro.workload.archive import get_preset


def vs_mean(result) -> float:
    stats = per_category_stats(result.jobs)
    vals = [s.slowdown.mean for c, s in stats.items() if c[0] == "VS"]
    return sum(vals) / len(vals) if vals else float("nan")


def main() -> None:
    overhead = DiskSwapOverheadModel() if "--overhead" in sys.argv else None
    preset = get_preset("SDSC")
    jobs = generate_trace("SDSC", n_jobs=800, seed=21)

    zoo = [
        ("FCFS", FCFSScheduler()),
        ("Conservative BF", ConservativeBackfillScheduler()),
        ("EASY BF (NS)", EasyBackfillScheduler()),
        ("Gang (10 min)", GangScheduler(quantum=600.0)),
        ("Immediate Service", ImmediateServiceScheduler()),
        ("SS (SF=2)", SelectiveSuspensionScheduler(suspension_factor=2.0)),
        ("TSS (SF=2)", TunableSelectiveSuspensionScheduler(suspension_factor=2.0)),
    ]

    rows = []
    for label, sched in zoo:
        r = simulate(jobs, sched, preset.n_procs, overhead_model=overhead)
        rows.append(
            [
                label,
                overall_stats(r.jobs).slowdown.mean,
                vs_mean(r),
                r.total_suspensions,
                100 * r.utilization,
            ]
        )

    mode = "with disk-swap overhead" if overhead else "overhead-free"
    print(f"{preset.name}, {len(jobs)} jobs, {mode}\n")
    print(
        render_table(
            ["scheduler", "overall sd", "VS mean sd", "suspensions", "util %"],
            rows,
            precision=2,
        )
    )
    print(
        "\nReading: backfilling fixes FCFS's fragmentation; blind preemption\n"
        "(gang/IS) rescues short jobs at an enormous suspension bill; selective\n"
        "preemption gets the same rescue at two orders of magnitude fewer\n"
        "suspensions -- which is what makes it survive real overhead costs."
    )


if __name__ == "__main__":
    main()

"""Typed trace events and the :class:`Tracer` emission facade.

One simulation produces one ordered stream of :class:`TraceEvent`
records.  Every event carries the simulation time ``t``, an event type
from :data:`EVENT_TYPES`, the subject job id (``None`` for run-level
events) and a flat ``data`` mapping of type-specific fields.  The
stream is self-contained: ``run_begin`` carries the machine size and
scheduler config, ``arrival`` carries each job's static fields, so a
trace can be replayed (see :mod:`repro.obs.summary`) without the
workload files that produced it.

The full field-by-field schema, with units and stability guarantees,
is documented in ``docs/TRACING.md`` -- that document is the public
contract; this module is its implementation.

Emission discipline
-------------------

The driver and schedulers never talk to a recorder directly; they emit
through a :class:`Tracer`, which

* only exists when tracing is enabled (``driver.tracer is None``
  otherwise -- the zero-overhead-when-off contract), and
* maintains the run's :class:`~repro.obs.counters.TraceCounters` in
  lockstep with the events, so counters and stream can never disagree
  regardless of which recorder implementation is attached.

Decision records
----------------

``decision`` events are the observability payload the aggregate
metrics cannot provide: for every preemption attempt they carry the
idle job's xfactor, the SF threshold, and a per-victim verdict list
(``candidate`` / ``sf_threshold`` / ``width_rule`` /
``category_limit`` / ``protected`` / ``priority``) explaining exactly
why each running job was or was not suspendable at that instant --
eq. 2 of the paper, evaluated and written down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.obs.counters import TraceCounters

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.recorder import TraceRecorder
    from repro.workload.job import Job

#: Bump on any backwards-incompatible change to event fields; written
#: into every ``run_begin`` record so readers can refuse mismatches.
TRACE_SCHEMA_VERSION = 1

#: The event-type vocabulary, in rough lifecycle order.
EVENT_TYPES = (
    "run_begin",  # run header: schema, scheduler, n_procs
    "arrival",  # job entered the queue (static fields attached)
    "start",  # fresh dispatch onto free processors
    "backfill_start",  # fresh dispatch via a backfilling fill
    "resume",  # re-dispatch of a suspended job
    "suspend",  # running job preempted back into the queue
    "kill",  # speculative run hit its deadline; progress discarded
    "finish",  # job completed all useful work
    "decision",  # scheduler decision record (see `action` field)
    "run_end",  # run trailer: driver totals for cross-checking
)

#: ``decision.action`` vocabulary.
DECISION_ACTIONS = (
    "preempt",  # victims suspended to start / resume the subject job
    "preempt_denied",  # preemption attempted and refused (see `cause`)
    "timeslice_grant",  # IS: job granted its immediate timeslice
    "reservation",  # backfilling: the head job's reservation anchor
    "speculate",  # speculative backfilling: bounded test run started
)


@dataclass(frozen=True)
class TraceEvent:
    """One record of the trace stream.

    ``data`` holds the type-specific fields, flat and JSON-stable
    (numbers, strings, bools, lists, dicts).  :meth:`as_dict` flattens
    the whole record into a single mapping -- the JSONL line format.
    """

    t: float
    type: str
    job: int | None = None
    data: Mapping[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """The JSONL representation: common fields merged with data."""
        out: dict[str, Any] = {"t": self.t, "type": self.type, "job": self.job}
        out.update(self.data)
        return out


def victim_verdict(
    job_id: int,
    xfactor: float,
    procs: int,
    verdict: str,
    limit: float | None = None,
) -> dict[str, Any]:
    """One entry of a decision record's ``victims`` list.

    *verdict* is ``"candidate"`` for an accepted victim or a denial
    cause from :data:`repro.obs.counters.DENIAL_CAUSES`; *limit* is the
    TSS category limit when the verdict is ``"category_limit"``.
    """
    out: dict[str, Any] = {
        "job": job_id,
        "xfactor": xfactor,
        "procs": procs,
        "verdict": verdict,
    }
    if limit is not None:
        out["limit"] = limit
    return out


class Tracer:
    """Emission facade bound to an enabled recorder.

    Constructed by the driver **only when tracing is on**; emission
    sites therefore guard with a single ``if tracer is not None``.
    Counter maintenance lives here (not in recorders) so every
    recorder implementation yields identical counters.
    """

    __slots__ = ("recorder", "counters", "_depth")

    def __init__(self, recorder: "TraceRecorder") -> None:
        self.recorder = recorder
        self.counters = TraceCounters()
        self._depth = 0  # live queue length, tracked by deltas

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _emit(self, t: float, etype: str, job: int | None, data: dict[str, Any]) -> None:
        self.recorder.record(TraceEvent(t=t, type=etype, job=job, data=data))

    def _queue_delta(self, t: float, delta: int) -> None:
        self._depth += delta
        self.counters.note_queue_depth(t, self._depth)

    # ------------------------------------------------------------------
    # run framing
    # ------------------------------------------------------------------
    def run_begin(
        self,
        t: float,
        scheduler_name: str,
        scheduler_config: Mapping[str, Any],
        n_procs: int,
        n_jobs: int,
    ) -> None:
        self._emit(
            t,
            "run_begin",
            None,
            {
                "schema": TRACE_SCHEMA_VERSION,
                "scheduler": scheduler_name,
                "config": dict(scheduler_config),
                "n_procs": n_procs,
                "n_jobs": n_jobs,
            },
        )

    def run_end(
        self,
        t: float,
        *,
        finished: int,
        total_suspensions: int,
        total_kills: int,
        busy_proc_seconds: float,
        makespan: float,
        events_dispatched: int,
    ) -> None:
        """Driver-claimed totals, for replay cross-checking only.

        :func:`repro.obs.summary.summarize_trace` recomputes every one
        of these independently from the event stream; this trailer is
        what it verifies itself against.
        """
        self._emit(
            t,
            "run_end",
            None,
            {
                "finished": finished,
                "total_suspensions": total_suspensions,
                "total_kills": total_kills,
                "busy_proc_seconds": busy_proc_seconds,
                "makespan": makespan,
                "events_dispatched": events_dispatched,
            },
        )

    # ------------------------------------------------------------------
    # lifecycle events (emitted by the driver)
    # ------------------------------------------------------------------
    def arrival(self, t: float, job: "Job") -> None:
        self.counters.arrivals += 1
        self._queue_delta(t, +1)
        self._emit(
            t,
            "arrival",
            job.job_id,
            {
                "procs": job.procs,
                "run_time": job.run_time,
                "estimate": job.estimate,
                "memory_mb": job.memory_mb,
            },
        )

    def dispatch(
        self,
        t: float,
        job: "Job",
        procs: frozenset[int],
        resumed: bool,
        via: str | None,
    ) -> None:
        """A job moved queue -> processors (start / backfill / resume)."""
        if resumed:
            etype = "resume"
            self.counters.resumes += 1
        elif via == "backfill":
            etype = "backfill_start"
            self.counters.starts += 1
            self.counters.backfill_fills += 1
        else:
            etype = "start"
            self.counters.starts += 1
        self._queue_delta(t, -1)
        self._emit(
            t,
            etype,
            job.job_id,
            {
                "procs": sorted(procs),
                "width": len(procs),
                "via": via,
                "pending_overhead": job.pending_overhead,
            },
        )

    def suspend(
        self,
        t: float,
        job: "Job",
        procs: frozenset[int],
        preemptor: int | None,
        overhead_added: float,
    ) -> None:
        self.counters.suspensions += 1
        self._queue_delta(t, +1)
        self._emit(
            t,
            "suspend",
            job.job_id,
            {
                "procs": sorted(procs),
                "width": len(procs),
                "preemptor": preemptor,
                "overhead_added": overhead_added,
                "suspensions": job.suspension_count,
                "useful_done": job.useful_done,
            },
        )

    def kill(self, t: float, job: "Job", procs: frozenset[int], wasted: float) -> None:
        self.counters.kills += 1
        self._queue_delta(t, +1)
        self._emit(
            t,
            "kill",
            job.job_id,
            {
                "procs": sorted(procs),
                "width": len(procs),
                "wasted": wasted,
                "kills": job.kill_count,
            },
        )

    def finish(self, t: float, job: "Job") -> None:
        self.counters.finishes += 1
        self._emit(
            t,
            "finish",
            job.job_id,
            {
                "suspensions": job.suspension_count,
                "kills": job.kill_count,
                "total_overhead": job.total_overhead,
            },
        )

    # ------------------------------------------------------------------
    # decision records (emitted by schedulers)
    # ------------------------------------------------------------------
    def decision(self, t: float, action: str, job_id: int | None, **data: Any) -> None:
        """Emit one decision record and fold it into the counters.

        ``preempt``/``timeslice_grant`` count as granted attempts;
        ``preempt_denied`` counts against its ``cause``; entries of a
        ``victims`` list with a non-``candidate`` verdict count as
        per-victim rejections.  ``reservation`` and ``speculate`` are
        informational and leave the preemption counters alone.
        """
        c = self.counters
        if action in ("preempt", "timeslice_grant"):
            c.preempt_attempts += 1
            c.preempt_grants += 1
        elif action == "preempt_denied":
            c.preempt_attempts += 1
            c.count_denial(str(data.get("cause", "insufficient")))
        for v in data.get("victims", ()):  # type: ignore[union-attr]
            verdict = v.get("verdict")
            if verdict and verdict != "candidate":
                c.count_rejection(str(verdict))
        payload: dict[str, Any] = {"action": action}
        payload.update(data)
        self._emit(t, "decision", job_id, payload)

"""Per-run trace counters.

:class:`TraceCounters` is the cheap, always-consistent aggregate view
of a traced run: lifecycle tallies, preemption denials by cause, and a
compact queue-depth time series.  The :class:`~repro.obs.events.Tracer`
updates it as events are emitted, so the counters agree with the event
stream *by construction* -- any recorder implementation (null, memory,
JSONL, user-supplied) gets the same numbers for free.

The counters end up on
:attr:`repro.sim.driver.SimulationResult.counters` (``None`` for
untraced runs), which is what the consistency tests compare against
both the driver's own totals and an independent replay of the trace
(see :mod:`repro.obs.summary`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

#: Denial-cause vocabulary (the ``cause`` field of ``decision`` events
#: and the keys of :attr:`TraceCounters.preempt_denials`).
DENIAL_CAUSES = (
    "insufficient",  # eligible victims do not cover the request
    "sf_threshold",  # idle xfactor below SF x victim xfactor
    "width_rule",  # victim more than twice the idle job's width
    "category_limit",  # TSS: victim past its category's preemption limit
    "protected",  # IS: victim inside its timeslice protection window
    "priority",  # IS: victim's instantaneous xfactor not below idle's
    "reservation_guard",  # hybrids: job would overrun the head's anchor
)


@dataclass
class TraceCounters:
    """Aggregate counters over one traced run.

    All fields are derived purely from emitted trace events; see
    ``docs/TRACING.md`` for the exact mapping.
    """

    #: jobs that entered the queue
    arrivals: int = 0
    #: fresh dispatches (``start`` + ``backfill_start`` events)
    starts: int = 0
    #: dispatches of previously suspended jobs (``resume`` events)
    resumes: int = 0
    #: ``backfill_start`` events only (subset of :attr:`starts`)
    backfill_fills: int = 0
    #: ``suspend`` events
    suspensions: int = 0
    #: speculative runs killed at their deadline (``kill`` events)
    kills: int = 0
    #: ``finish`` events
    finishes: int = 0
    #: preemption decisions attempted (granted + denied)
    preempt_attempts: int = 0
    #: decisions that suspended at least one victim
    preempt_grants: int = 0
    #: denied decisions by primary cause (see :data:`DENIAL_CAUSES`)
    preempt_denials: dict[str, int] = field(default_factory=dict)
    #: per-victim rejections by cause, across all decisions (a single
    #: denied decision may reject several victims for several causes)
    victim_rejections: dict[str, int] = field(default_factory=dict)
    #: ``(time, queue length)`` samples, appended whenever the queue
    #: length changes (arrival, dispatch, suspension, kill)
    queue_depth: list[tuple[float, int]] = field(default_factory=list)

    # ------------------------------------------------------------------
    def note_queue_depth(self, t: float, depth: int) -> None:
        """Record a queue-length change at time *t* (coalesces same-t)."""
        series = self.queue_depth
        if series and series[-1][0] == t:
            series[-1] = (t, depth)
        else:
            series.append((t, depth))

    def count_denial(self, cause: str) -> None:
        self.preempt_denials[cause] = self.preempt_denials.get(cause, 0) + 1

    def count_rejection(self, cause: str) -> None:
        self.victim_rejections[cause] = self.victim_rejections.get(cause, 0) + 1

    @property
    def max_queue_depth(self) -> int:
        """Largest queue length ever sampled (0 for an empty series)."""
        return max((d for _, d in self.queue_depth), default=0)


@dataclass
class GridCounters:
    """Fault-recovery tallies for one grid execution.

    Maintained by :func:`repro.experiments.parallel.run_grid` (not by
    the tracer -- these count *executor* events, which exist outside any
    single simulation) and surfaced on
    :attr:`repro.experiments.parallel.GridOutcome.counters` so summaries
    can report what the fault-tolerance machinery actually did.  The
    instance is falsy on an undisturbed run: ``shm_segments`` /
    ``shm_attaches`` / ``shm_decodes`` count *normal* workload-plane
    activity and never make the tally truthy on their own, while
    ``shm_fallbacks`` is a degradation signal and does.
    """

    #: cells resubmitted after a failed attempt (crash or timeout)
    retries: int = 0
    #: attempts abandoned because they exceeded the per-cell timeout
    timeouts: int = 0
    #: process pools rebuilt (after ``BrokenProcessPool`` or a hung worker)
    pool_respawns: int = 0
    #: cells executed in-process after the pool was given up on
    degraded_cells: int = 0
    #: corrupt cache entries quarantined during the cache probe
    cache_quarantines: int = 0
    #: shared-memory workload segments published for this grid
    shm_segments: int = 0
    #: segment attaches performed in the coordinator process (serial,
    #: degraded and cache-probe paths)
    shm_attaches: int = 0
    #: full segment decodes in the coordinator process (memo misses)
    shm_decodes: int = 0
    #: refs resolved from the local fallback registry after an attach
    #: or integrity failure in the coordinator process
    shm_fallbacks: int = 0
    #: segment attaches performed inside pool workers, summed over the
    #: per-cell deltas each worker reports alongside its result
    shm_worker_attaches: int = 0
    #: full segment decodes inside pool workers (each worker pays at
    #: most one per (segment, pipeline); later cells hit its memo)
    shm_worker_decodes: int = 0
    #: fallback-registry resolutions inside pool workers -- workers
    #: have no local registry, so any non-zero value means a worker
    #: inherited one by fork and the plane degraded there
    shm_worker_fallbacks: int = 0

    def as_dict(self) -> dict[str, int]:
        return asdict(self)

    #: fields that describe normal operation rather than recovery --
    #: they never make the tally truthy (the ``*_fallbacks`` pair is
    #: recovery)
    _ROUTINE_FIELDS = (
        "shm_segments",
        "shm_attaches",
        "shm_decodes",
        "shm_worker_attaches",
        "shm_worker_decodes",
    )

    def __bool__(self) -> bool:
        """True when any recovery machinery fired."""
        return any(
            v for k, v in asdict(self).items() if k not in self._ROUTINE_FIELDS
        )

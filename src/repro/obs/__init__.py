"""Decision-trace observability for the scheduling simulator.

The paper's whole argument is *per-decision*: SS/TSS win or lose
depending on which jobs get suspended, when, and why (xfactor margins,
the SF threshold, the half-width rule, TSS category limits, the IS
timeslice).  Aggregates cannot explain an individual preemption; this
subpackage records every scheduler decision as a typed event stream so
any run can be replayed, audited and visualised after the fact.

Layers (bottom-up):

* :mod:`repro.obs.events` -- the typed :class:`TraceEvent` record, the
  event-type vocabulary, and the :class:`Tracer` facade the driver and
  schedulers emit through.
* :mod:`repro.obs.recorder` -- the :class:`TraceRecorder` protocol and
  its three implementations: :class:`NullRecorder` (disabled,
  zero-cost), :class:`InMemoryRecorder` (tests / notebooks) and
  :class:`JsonlRecorder` (streaming one JSON object per line to disk).
* :mod:`repro.obs.counters` -- per-run :class:`TraceCounters`
  (suspensions, preemption denials by cause, backfill fills,
  queue-depth time series), maintained by the tracer and surfaced on
  :class:`~repro.sim.driver.SimulationResult`.
* :mod:`repro.obs.summary` -- independent replay: rebuild per-job
  statistics, the busy-area integral and utilisation from the event
  stream alone and compare them against what the run claimed.

**Zero-overhead-when-off contract:** a simulation constructed without a
recorder (or with the :data:`NULL_RECORDER`) has ``driver.tracer is
None`` and every emission site is guarded by that single ``is not
None`` check -- no event objects are built, no strings formatted, no
callbacks invoked.  ``benchmarks/bench_micro.py`` pins the cost at the
noise floor (<2 %).  The schema itself is documented as a stable
contract in ``docs/TRACING.md``.
"""

from repro.obs.counters import DENIAL_CAUSES, GridCounters, TraceCounters
from repro.obs.events import (
    DECISION_ACTIONS,
    EVENT_TYPES,
    TRACE_SCHEMA_VERSION,
    TraceEvent,
    Tracer,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    InMemoryRecorder,
    JsonlRecorder,
    NullRecorder,
    TraceRecorder,
    read_trace,
)
from repro.obs.summary import (
    TraceSummary,
    format_grid_counters,
    format_summary,
    summarize_trace,
)

__all__ = [
    "DECISION_ACTIONS",
    "DENIAL_CAUSES",
    "EVENT_TYPES",
    "GridCounters",
    "InMemoryRecorder",
    "JsonlRecorder",
    "NULL_RECORDER",
    "NullRecorder",
    "TRACE_SCHEMA_VERSION",
    "TraceCounters",
    "TraceEvent",
    "TraceRecorder",
    "TraceSummary",
    "Tracer",
    "format_grid_counters",
    "format_summary",
    "read_trace",
    "summarize_trace",
]

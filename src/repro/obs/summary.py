"""Independent trace replay: rebuild run statistics from events alone.

:func:`summarize_trace` reads an event stream (dicts from
:func:`~repro.obs.recorder.read_trace` or
:meth:`~repro.obs.recorder.InMemoryRecorder.dicts`) and reconstructs,
using **only** the events:

* per-job suspension counts, occupancy (busy-area contribution) and
  bounded slowdown;
* the run's busy-processor integral, makespan, utilisation, mean
  bounded slowdown and total suspensions.

It shares no code with the driver's own accounting, so it serves as a
second independent witness next to :mod:`repro.sim.audit`: if the
driver's counters and the replayed trace agree, either both are right
or the same bug corrupted two disjoint bookkeeping paths.  The
consistency tests (``tests/test_obs.py``) assert exactly this
agreement for SS, TSS, IS and NS runs, and the ``run_end`` trailer the
driver writes is cross-checked field by field
(:attr:`TraceSummary.matches_run_end`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.obs.counters import GridCounters

#: Eq. 1's bounded-slowdown threshold, restated here on purpose: the
#: replay must not import the metrics package it is meant to witness.
_SLOWDOWN_THRESHOLD = 10.0

#: Event types that put a job onto processors / take it off them.
_DISPATCH_TYPES = ("start", "backfill_start", "resume")
_RELEASE_TYPES = ("suspend", "kill", "finish")


@dataclass
class JobTraceStats:
    """Everything the replay knows about one job."""

    job_id: int
    submit: float = 0.0
    run_time: float = 0.0
    estimate: float = 0.0
    procs: int = 0
    finish: float | None = None
    suspensions: int = 0
    kills: int = 0
    dispatches: int = 0
    #: processor-seconds of occupancy reconstructed from this job's
    #: dispatch/release intervals (includes overhead and wasted time)
    busy: float = 0.0

    @property
    def turnaround(self) -> float | None:
        return None if self.finish is None else self.finish - self.submit

    @property
    def slowdown(self) -> float | None:
        """Bounded slowdown (eq. 1) recomputed from trace timestamps."""
        ta = self.turnaround
        if ta is None:
            return None
        return max(ta / max(self.run_time, _SLOWDOWN_THRESHOLD), 1.0)


@dataclass
class TraceSummary:
    """The replayed run, plus the cross-check against ``run_end``."""

    schema: int = 0
    scheduler: str = "?"
    n_procs: int = 0
    n_jobs: int = 0
    events: int = 0
    finished: int = 0
    suspensions: int = 0
    kills: int = 0
    backfill_fills: int = 0
    decisions: int = 0
    preempt_grants: int = 0
    preempt_denials: dict[str, int] = field(default_factory=dict)
    makespan: float = 0.0
    busy_proc_seconds: float = 0.0
    per_job: dict[int, JobTraceStats] = field(default_factory=dict)
    #: the raw ``run_end`` trailer, if the trace has one
    run_end: dict[str, Any] | None = None

    @property
    def utilization(self) -> float:
        """busy / (P x makespan), replayed -- driver-free."""
        if self.n_procs <= 0 or self.makespan <= 0:
            return 0.0
        return self.busy_proc_seconds / (self.n_procs * self.makespan)

    @property
    def mean_slowdown(self) -> float:
        """Mean bounded slowdown over finished jobs, in finish order."""
        values = [
            s.slowdown
            for s in sorted(self.per_job.values(), key=lambda s: (s.finish or 0.0))
            if s.slowdown is not None
        ]
        if not values:
            return 0.0
        return sum(values) / len(values)

    @property
    def matches_run_end(self) -> bool | None:
        """Replay vs the driver's ``run_end`` claims (None: no trailer).

        True when suspension count, kill count, finished-job count,
        makespan and the busy integral all agree (floats to a 1e-6
        relative tolerance) -- the "second witness" verdict.
        """
        trailer = self.run_end
        if trailer is None:
            return None

        def close(a: float, b: float) -> bool:
            return abs(a - b) <= max(1e-6, 1e-9 * max(abs(a), abs(b)))

        return (
            self.suspensions == trailer.get("total_suspensions")
            and self.kills == trailer.get("total_kills")
            and self.finished == trailer.get("finished")
            and close(self.makespan, float(trailer.get("makespan", 0.0)))
            and close(
                self.busy_proc_seconds,
                float(trailer.get("busy_proc_seconds", 0.0)),
            )
        )


def summarize_trace(events: Iterable[Mapping[str, Any]]) -> TraceSummary:
    """Replay *events* into a :class:`TraceSummary`.

    Raises ``ValueError`` on structurally broken streams (a release for
    a job that is not running, an unknown schema) -- a trace that does
    not replay is evidence of a bug, not something to paper over.
    """
    s = TraceSummary()
    active: dict[int, tuple[float, int]] = {}  # job -> (dispatch t, width)

    for ev in events:
        s.events += 1
        etype = ev.get("type")
        t = float(ev.get("t", 0.0))
        jid = ev.get("job")

        if etype == "run_begin":
            schema = int(ev.get("schema", 0))
            if schema > 1:
                raise ValueError(f"trace schema {schema} is newer than this reader")
            s.schema = schema
            s.scheduler = str(ev.get("scheduler", "?"))
            s.n_procs = int(ev.get("n_procs", 0))
            s.n_jobs = int(ev.get("n_jobs", 0))
        elif etype == "arrival":
            assert jid is not None
            s.per_job[jid] = JobTraceStats(
                job_id=jid,
                submit=t,
                run_time=float(ev.get("run_time", 0.0)),
                estimate=float(ev.get("estimate", 0.0)),
                procs=int(ev.get("procs", 0)),
            )
        elif etype in _DISPATCH_TYPES:
            assert jid is not None
            if jid in active:
                raise ValueError(f"job {jid} dispatched twice without release (t={t})")
            active[jid] = (t, int(ev.get("width", 0)))
            job = s.per_job.get(jid)
            if job is not None:
                job.dispatches += 1
            if etype == "backfill_start":
                s.backfill_fills += 1
        elif etype in _RELEASE_TYPES:
            assert jid is not None
            if jid not in active:
                raise ValueError(f"{etype} for job {jid} which is not running (t={t})")
            t0, width = active.pop(jid)
            area = width * (t - t0)
            s.busy_proc_seconds += area
            job = s.per_job.get(jid)
            if job is not None:
                job.busy += area
            if etype == "suspend":
                s.suspensions += 1
                if job is not None:
                    job.suspensions += 1
            elif etype == "kill":
                s.kills += 1
                if job is not None:
                    job.kills += 1
            else:  # finish
                s.finished += 1
                s.makespan = max(s.makespan, t)
                if job is not None:
                    job.finish = t
        elif etype == "decision":
            s.decisions += 1
            action = ev.get("action")
            if action in ("preempt", "timeslice_grant"):
                s.preempt_grants += 1
            elif action == "preempt_denied":
                cause = str(ev.get("cause", "insufficient"))
                s.preempt_denials[cause] = s.preempt_denials.get(cause, 0) + 1
        elif etype == "run_end":
            s.run_end = {k: v for k, v in ev.items() if k not in ("t", "type", "job")}

    if active:
        raise ValueError(
            f"trace ended with {len(active)} job(s) still on processors: "
            f"{sorted(active)[:10]}"
        )
    return s


def format_summary(s: TraceSummary) -> str:
    """Human-readable rendering shared by ``repro-sched trace``.

    ``trace record`` and ``trace summarize`` both print this block, so
    byte-equality of their output *is* the round-trip check.
    """
    lines = [
        f"trace summary: {s.scheduler} on {s.n_procs} processors",
        f"  events             {s.events}",
        f"  jobs               {s.finished} finished / {s.n_jobs} submitted",
        f"  suspensions        {s.suspensions}",
        f"  kills              {s.kills}",
        f"  backfill fills     {s.backfill_fills}",
        f"  decisions          {s.decisions} "
        f"({s.preempt_grants} preemptions granted)",
    ]
    if s.preempt_denials:
        causes = ", ".join(
            f"{cause}={n}" for cause, n in sorted(s.preempt_denials.items())
        )
        lines.append(f"  denials by cause   {causes}")
    lines += [
        f"  makespan           {s.makespan:.6f} s",
        f"  busy integral      {s.busy_proc_seconds:.6f} proc-s",
        f"  utilization        {s.utilization:.9f}",
        f"  mean slowdown      {s.mean_slowdown:.9f}",
    ]
    verdict = s.matches_run_end
    if verdict is None:
        lines.append("  run_end check      (no trailer in trace)")
    else:
        lines.append(
            "  run_end check      "
            + ("consistent with driver totals" if verdict else "MISMATCH vs driver totals")
        )
    return "\n".join(lines)


def format_grid_counters(counters: GridCounters) -> str:
    """One-line report of what the grid's fault-recovery machinery did.

    Meant for the CLI / bench logs after a parallel grid: silent runs
    print nothing (callers gate on ``if counters:``), disturbed runs get
    an explicit record of every retry, timeout, pool respawn,
    degradation and cache quarantine.
    """
    fields = counters.as_dict()
    parts = " ".join(f"{name}={value}" for name, value in fields.items())
    return f"grid recovery: {parts}"

"""Trace recorders: where emitted events go.

:class:`TraceRecorder` is a structural protocol -- anything with an
``enabled`` flag, ``record(event)`` and ``close()`` qualifies.  Three
implementations cover the practical spectrum:

* :class:`NullRecorder` / :data:`NULL_RECORDER` -- ``enabled`` is
  false, so the driver never even constructs a
  :class:`~repro.obs.events.Tracer`; passing it is *exactly* as cheap
  as passing no recorder at all (the zero-overhead-when-off contract,
  pinned by ``benchmarks/bench_micro.py``).
* :class:`InMemoryRecorder` -- appends events to a list; the test and
  notebook workhorse.
* :class:`JsonlRecorder` -- streams one JSON object per line to a
  file as events happen (nothing buffered across jobs, so a crashed
  run still leaves a usable prefix).  :func:`read_trace` is its
  reading counterpart.

The JSONL layout is the flat :meth:`TraceEvent.as_dict` mapping; see
``docs/TRACING.md`` for the field reference.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Iterator, Protocol, runtime_checkable

from repro.obs.events import TraceEvent


@runtime_checkable
class TraceRecorder(Protocol):
    """Anything that can receive the trace event stream."""

    #: When false, the driver skips tracing entirely (no tracer built).
    enabled: bool

    def record(self, event: TraceEvent) -> None:
        """Receive one event; called in simulation order."""
        ...

    def close(self) -> None:
        """Flush and release resources; idempotent."""
        ...


class NullRecorder:
    """The disabled recorder: accepts nothing, costs nothing."""

    enabled = False

    def record(self, event: TraceEvent) -> None:  # pragma: no cover - never called
        pass

    def close(self) -> None:
        pass


#: Shared disabled-recorder instance (it is stateless).
NULL_RECORDER = NullRecorder()


class InMemoryRecorder:
    """Keeps every event in a list (tests, notebooks, small runs)."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass

    def dicts(self) -> list[dict[str, Any]]:
        """The events as flat mappings (what a JSONL reader would see)."""
        return [e.as_dict() for e in self.events]

    def __len__(self) -> int:
        return len(self.events)


class JsonlRecorder:
    """Streams events to *path*, one compact JSON object per line.

    The file is opened eagerly (so a bad path fails at construction,
    not mid-run) and each event is written immediately; ``close()``
    flushes and closes.  Usable as a context manager::

        with JsonlRecorder("run.jsonl") as rec:
            simulate(jobs, scheduler, n_procs, recorder=rec)
    """

    enabled = True

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: IO[str] | None = self.path.open("w", encoding="utf-8")
        self.n_written = 0

    def record(self, event: TraceEvent) -> None:
        if self._fh is None:
            raise ValueError(f"JsonlRecorder({self.path}) is closed")
        self._fh.write(json.dumps(event.as_dict(), separators=(",", ":")))
        self._fh.write("\n")
        self.n_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlRecorder":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_trace(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield the events of a JSONL trace file as flat mappings.

    Blank lines are skipped; malformed lines raise ``ValueError`` with
    the offending line number (a truncated *final* line -- the one
    artefact of a crashed run -- is reported the same way, so callers
    can decide whether a prefix is acceptable).
    """
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: malformed trace line: {exc}") from exc

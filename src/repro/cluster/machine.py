"""The cluster: a fixed pool of identified processors.

:class:`Cluster` tracks which processor ids are free and which are held
by which owner (a job id).  It enforces the two hard invariants of the
machine model:

* a processor is owned by at most one job at a time;
* releases return exactly the processors that were allocated.

Processor identity matters because restart is *local* (same-processors)
in the paper's model; see :mod:`repro.cluster` for context.

The free pool is kept as an integer bitmask (bit ``p`` set = processor
``p`` free), with a per-owner bitmask and a proc->owner array alongside.
Set algebra on processor sets is then word-parallel big-int arithmetic:
``can_allocate_specific`` is one AND, ``allocate``/``release`` are a
handful of bitops, and ``owners_overlapping`` reads an array.  For the
machine sizes in the paper (100-430 processors) every mask fits in a few
machine words, so these operations cost O(n_procs / 64) instead of
per-processor set/dict churn.  :meth:`free_set` materialises a frozenset
lazily (and caches it until the next mutation) for legacy callers that
still want one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.cluster.bitset import iter_bits, mask_from_ids, mask_to_ids

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.cluster.allocation import AllocationPolicy


class AllocationError(RuntimeError):
    """Raised on an impossible allocation or an inconsistent release."""


class Cluster:
    """A machine with ``n_procs`` identical, individually tracked processors.

    Parameters
    ----------
    n_procs:
        Total number of processors (e.g. 430 for the CTC SP2, 128 for the
        SDSC SP2, 100 for the KTH SP2).
    policy:
        Allocation policy used by :meth:`allocate`; defaults to
        lowest-id-first, which is deterministic and matches how most
        production schedulers of the era packed nodes.
    """

    def __init__(self, n_procs: int, policy: "AllocationPolicy | None" = None) -> None:
        if n_procs <= 0:
            raise ValueError(f"cluster needs at least one processor, got {n_procs}")
        from repro.cluster.allocation import LowestIdFirst

        self.n_procs = int(n_procs)
        #: all-ones mask over the machine's processor ids
        self._full_mask: int = (1 << self.n_procs) - 1
        self._free_mask: int = self._full_mask
        #: owner job id -> mask of processors it holds (never zero)
        self._owner_masks: dict[int, int] = {}
        #: proc id -> owning job id, or None when free
        self._proc_owner: list[int | None] = [None] * self.n_procs
        #: lazily materialised snapshot for free_set(); None = stale
        self._free_cache: frozenset[int] | None = None
        self.policy: "AllocationPolicy" = policy or LowestIdFirst()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def free_count(self) -> int:
        """Number of currently free processors."""
        return self._free_mask.bit_count()

    @property
    def busy_count(self) -> int:
        """Number of currently allocated processors."""
        return self.n_procs - self._free_mask.bit_count()

    @property
    def free_mask(self) -> int:
        """Bitmask of free processor ids (bit ``p`` set = proc ``p`` free)."""
        return self._free_mask

    def free_set(self) -> frozenset[int]:
        """Snapshot of the free processor ids (lazily materialised, cached)."""
        if self._free_cache is None:
            self._free_cache = frozenset(iter_bits(self._free_mask))
        return self._free_cache

    def is_free(self, proc: int) -> bool:
        """Whether processor *proc* is currently free."""
        return bool(self._free_mask >> proc & 1)

    def owner_of(self, proc: int) -> int | None:
        """Job id holding *proc*, or ``None`` if it is free."""
        if 0 <= proc < self.n_procs:
            return self._proc_owner[proc]
        return None

    def owner_mask(self, owner: int) -> int:
        """Bitmask of processors held by job *owner* (0 if none)."""
        return self._owner_masks.get(owner, 0)

    def owners_overlapping(self, procs: Iterable[int]) -> set[int]:
        """Distinct job ids holding any processor in *procs*."""
        out: set[int] = set()
        for p in procs:
            if 0 <= p < self.n_procs:
                owner = self._proc_owner[p]
                if owner is not None:
                    out.add(owner)
        return out

    def owners_in_mask(self, mask: int) -> tuple[int, ...]:
        """Distinct job ids holding processors in *mask*.

        Deduplicated in ascending order of the first processor each owner
        holds within *mask* -- deterministic by construction, so decision
        paths may iterate the result directly.
        """
        busy = mask & self._full_mask & ~self._free_mask
        owners: list[int] = []
        while busy:
            p = (busy & -busy).bit_length() - 1
            owner = self._proc_owner[p]
            if owner is None:  # pragma: no cover - busy bit always owned
                busy &= busy - 1
                continue
            owners.append(owner)
            # skip the owner's remaining processors in one bitop: the
            # walk advances per *owner*, not per processor
            busy &= ~self._owner_masks[owner]
        return tuple(owners)

    def can_allocate(self, count: int) -> bool:
        """Whether *count* free processors exist right now."""
        return count <= self._free_mask.bit_count()

    def can_allocate_specific(self, procs: Iterable[int]) -> bool:
        """Whether every processor in *procs* is currently free."""
        return self.can_allocate_mask(mask_from_ids(procs))

    def can_allocate_mask(self, mask: int) -> bool:
        """Whether every processor in *mask* is currently free."""
        return not (mask & ~self._free_mask)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def allocate(self, count: int, owner: int) -> frozenset[int]:
        """Allocate *count* free processors to job *owner*.

        The concrete processors are chosen by the cluster's policy.

        Raises
        ------
        AllocationError
            If fewer than *count* processors are free, or *count* exceeds
            the machine size (such a job can never run).
        """
        if count <= 0:
            raise AllocationError(f"job {owner}: nonpositive request {count}")
        if count > self.n_procs:
            raise AllocationError(
                f"job {owner}: requests {count} > machine size {self.n_procs}"
            )
        free = self._free_mask.bit_count()
        if count > free:
            raise AllocationError(
                f"job {owner}: requests {count}, only {free} free"
            )
        chosen = self.policy.select_mask(self._free_mask, count)
        if chosen.bit_count() != count:
            raise AllocationError(
                f"policy {type(self.policy).__name__} returned {chosen.bit_count()} "
                f"processors for a request of {count}"
            )
        if chosen & ~self._free_mask:
            raise AllocationError(
                f"policy {type(self.policy).__name__} selected processors "
                f"outside the free pool"
            )
        return self._claim_mask(chosen, owner)

    def allocate_specific(self, procs: Iterable[int], owner: int) -> frozenset[int]:
        """Allocate exactly the processors *procs* to job *owner*.

        Used for same-processors restart of a suspended job.
        """
        return self.allocate_mask(mask_from_ids(procs), owner)

    def allocate_mask(self, mask: int, owner: int) -> frozenset[int]:
        """Allocate exactly the processors in *mask* to job *owner*."""
        if not mask:
            raise AllocationError(f"job {owner}: empty specific allocation")
        missing = mask & ~self._free_mask
        if missing:
            raise AllocationError(
                f"job {owner}: processors {list(mask_to_ids(missing)[:8])} not free"
            )
        return self._claim_mask(mask, owner)

    def _claim_mask(self, mask: int, owner: int) -> frozenset[int]:
        ids = mask_to_ids(mask)  # ascending by construction
        for p in ids:
            self._proc_owner[p] = owner
        self._owner_masks[owner] = self._owner_masks.get(owner, 0) | mask
        self._free_mask &= ~mask
        self._free_cache = None
        return frozenset(ids)

    def release(self, procs: Iterable[int], owner: int) -> None:
        """Return *procs*, previously allocated to *owner*, to the free pool.

        All-or-nothing: ownership of the *whole* request is checked with a
        single mask comparison before any state changes, so a partial
        mismatch leaves the cluster untouched.

        Raises
        ------
        AllocationError
            If any processor is not currently owned by *owner* -- this
            catches double-release and ownership-confusion bugs at the
            point of the mistake instead of corrupting the free pool.
        """
        mask = mask_from_ids(procs)
        if not mask:
            return
        owned = self._owner_masks.get(owner, 0)
        bad = mask & ~owned
        if bad:
            p = (bad & -bad).bit_length() - 1
            actual = self._proc_owner[p] if 0 <= p < self.n_procs else None
            raise AllocationError(
                f"release of processor {p} by job {owner}, "
                f"but it is owned by {actual!r}"
            )
        remaining = owned & ~mask
        if remaining:
            self._owner_masks[owner] = remaining
        else:
            del self._owner_masks[owner]
        for p in iter_bits(mask):
            self._proc_owner[p] = None
        self._free_mask |= mask
        self._free_cache = None

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert internal consistency; used by tests and debug runs."""
        owned_mask = 0
        for owner, mask in sorted(self._owner_masks.items()):
            if not mask:
                raise AllocationError(f"job {owner} holds an empty mask")
            if owned_mask & mask:
                raise AllocationError("processor owned by two jobs")
            owned_mask |= mask
        if owned_mask & self._free_mask:
            raise AllocationError("processor both free and owned")
        if (owned_mask | self._free_mask) != self._full_mask:
            raise AllocationError("processor lost from the pool")
        if (owned_mask | self._free_mask) & ~self._full_mask:
            raise AllocationError("processor id out of range")
        for p in range(self.n_procs):
            owner = self._proc_owner[p]
            if owner is not None and not (self._owner_masks.get(owner, 0) >> p & 1):
                raise AllocationError(f"proc {p} owner array disagrees with masks")
            if owner is None and not (self._free_mask >> p & 1):
                raise AllocationError(f"proc {p} busy but has no owner")
            if owner is not None and (self._free_mask >> p & 1):
                raise AllocationError(f"proc {p} free but has an owner")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(n_procs={self.n_procs}, free={self.free_count}, "
            f"busy={self.busy_count})"
        )

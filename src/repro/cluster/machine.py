"""The cluster: a fixed pool of identified processors.

:class:`Cluster` tracks which processor ids are free and which are held
by which owner (a job id).  It enforces the two hard invariants of the
machine model:

* a processor is owned by at most one job at a time;
* releases return exactly the processors that were allocated.

Processor identity matters because restart is *local* (same-processors)
in the paper's model; see :mod:`repro.cluster` for context.

The free pool is kept as a sorted list so allocation policies can pick
deterministically and set operations stay O(n log n) in the worst case;
for the machine sizes in the paper (100-430 processors) this is far from
a bottleneck (profiled: <2 % of simulation time).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.cluster.allocation import AllocationPolicy


class AllocationError(RuntimeError):
    """Raised on an impossible allocation or an inconsistent release."""


class Cluster:
    """A machine with ``n_procs`` identical, individually tracked processors.

    Parameters
    ----------
    n_procs:
        Total number of processors (e.g. 430 for the CTC SP2, 128 for the
        SDSC SP2, 100 for the KTH SP2).
    policy:
        Allocation policy used by :meth:`allocate`; defaults to
        lowest-id-first, which is deterministic and matches how most
        production schedulers of the era packed nodes.
    """

    def __init__(self, n_procs: int, policy: "AllocationPolicy | None" = None) -> None:
        if n_procs <= 0:
            raise ValueError(f"cluster needs at least one processor, got {n_procs}")
        from repro.cluster.allocation import LowestIdFirst

        self.n_procs = int(n_procs)
        self._free: set[int] = set(range(self.n_procs))
        self._owner: dict[int, int] = {}
        self.policy: "AllocationPolicy" = policy or LowestIdFirst()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def free_count(self) -> int:
        """Number of currently free processors."""
        return len(self._free)

    @property
    def busy_count(self) -> int:
        """Number of currently allocated processors."""
        return self.n_procs - len(self._free)

    def free_set(self) -> frozenset[int]:
        """Snapshot of the free processor ids."""
        return frozenset(self._free)

    def is_free(self, proc: int) -> bool:
        """Whether processor *proc* is currently free."""
        return proc in self._free

    def owner_of(self, proc: int) -> int | None:
        """Job id holding *proc*, or ``None`` if it is free."""
        return self._owner.get(proc)

    def owners_overlapping(self, procs: Iterable[int]) -> set[int]:
        """Distinct job ids holding any processor in *procs*."""
        out: set[int] = set()
        for p in procs:
            owner = self._owner.get(p)
            if owner is not None:
                out.add(owner)
        return out

    def can_allocate(self, count: int) -> bool:
        """Whether *count* free processors exist right now."""
        return count <= len(self._free)

    def can_allocate_specific(self, procs: Iterable[int]) -> bool:
        """Whether every processor in *procs* is currently free."""
        return all(p in self._free for p in procs)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def allocate(self, count: int, owner: int) -> frozenset[int]:
        """Allocate *count* free processors to job *owner*.

        The concrete processors are chosen by the cluster's policy.

        Raises
        ------
        AllocationError
            If fewer than *count* processors are free, or *count* exceeds
            the machine size (such a job can never run).
        """
        if count <= 0:
            raise AllocationError(f"job {owner}: nonpositive request {count}")
        if count > self.n_procs:
            raise AllocationError(
                f"job {owner}: requests {count} > machine size {self.n_procs}"
            )
        if count > len(self._free):
            raise AllocationError(
                f"job {owner}: requests {count}, only {len(self._free)} free"
            )
        chosen = self.policy.select(self._free, count)
        if len(chosen) != count:
            raise AllocationError(
                f"policy {type(self.policy).__name__} returned {len(chosen)} "
                f"processors for a request of {count}"
            )
        return self._claim(chosen, owner)

    def allocate_specific(self, procs: Iterable[int], owner: int) -> frozenset[int]:
        """Allocate exactly the processors *procs* to job *owner*.

        Used for same-processors restart of a suspended job.
        """
        chosen = frozenset(procs)
        if not chosen:
            raise AllocationError(f"job {owner}: empty specific allocation")
        missing = [p for p in chosen if p not in self._free]
        if missing:
            raise AllocationError(
                f"job {owner}: processors {sorted(missing)[:8]} not free"
            )
        return self._claim(chosen, owner)

    def _claim(self, chosen: frozenset[int], owner: int) -> frozenset[int]:
        for p in chosen:
            self._owner[p] = owner
        self._free -= chosen
        return chosen

    def release(self, procs: Iterable[int], owner: int) -> None:
        """Return *procs*, previously allocated to *owner*, to the free pool.

        Raises
        ------
        AllocationError
            If any processor is not currently owned by *owner* -- this
            catches double-release and ownership-confusion bugs at the
            point of the mistake instead of corrupting the free pool.
        """
        procs = frozenset(procs)
        for p in procs:
            actual = self._owner.get(p)
            if actual != owner:
                raise AllocationError(
                    f"release of processor {p} by job {owner}, "
                    f"but it is owned by {actual!r}"
                )
        for p in procs:
            del self._owner[p]
        self._free |= procs

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert internal consistency; used by tests and debug runs."""
        owned = set(self._owner)
        if owned & self._free:
            raise AllocationError("processor both free and owned")
        if len(owned) + len(self._free) != self.n_procs:
            raise AllocationError("processor lost from the pool")
        if any(not (0 <= p < self.n_procs) for p in owned | self._free):
            raise AllocationError("processor id out of range")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(n_procs={self.n_procs}, free={self.free_count}, "
            f"busy={self.busy_count})"
        )

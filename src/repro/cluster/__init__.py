"""Machine model: processors, allocation and release.

The paper's setting is a distributed-memory machine without process
migration, so a suspended job must be restarted on *exactly* the set of
processors it was suspended on.  That forces the simulator to track
individual processor identities, not just a free count --
:class:`~repro.cluster.machine.Cluster` does exactly that.

Allocation policies (which free processors a fresh job receives) live in
:mod:`repro.cluster.allocation`.
"""

from repro.cluster.allocation import (
    AllocationPolicy,
    LowestIdFirst,
    RandomAllocation,
    ContiguousBestFit,
)
from repro.cluster.machine import AllocationError, Cluster

__all__ = [
    "AllocationError",
    "AllocationPolicy",
    "Cluster",
    "ContiguousBestFit",
    "LowestIdFirst",
    "RandomAllocation",
]

"""Integer-bitmask helpers for processor sets.

The simulation kernel represents processor sets as Python big integers:
bit ``p`` set means processor ``p`` is a member.  Set algebra becomes
word-parallel machine arithmetic (``&``, ``|``, ``~`` masked to machine
width), membership is a shift, and cardinality is
:meth:`int.bit_count` -- all O(n_procs / 64) instead of per-processor
dict/set churn.

Iteration order over a bitmask is *ascending processor id by
construction*: :func:`iter_bits` repeatedly extracts the lowest set bit
(``mask & -mask``), so every consumer observes the same deterministic
order regardless of hash seeds.  This is why the repro-lint RPR001 rule
treats :func:`iter_bits` / :func:`mask_to_ids` as order-safe producers
(see ``docs/STATIC_ANALYSIS.md``).
"""

from __future__ import annotations

from typing import Iterable, Iterator


def mask_from_ids(ids: Iterable[int]) -> int:
    """Bitmask with exactly the bits in *ids* set."""
    mask = 0
    for p in ids:
        mask |= 1 << p
    return mask


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set-bit indices of *mask* in ascending order.

    Deterministic by construction: each step peels the lowest set bit
    via ``mask & -mask``, so the order is the numeric order of the ids.
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_to_ids(mask: int) -> tuple[int, ...]:
    """The set-bit indices of *mask* as an ascending tuple."""
    return tuple(iter_bits(mask))


def take_lowest(mask: int, count: int) -> int:
    """Submask of up to *count* lowest set bits of *mask*.

    Like :func:`lowest_bits` but tolerant of a short *mask* -- the
    bitmask analogue of ``sorted(ids)[:count]``.
    """
    out = 0
    remaining = count
    while remaining and mask:
        low = mask & -mask
        out |= low
        mask ^= low
        remaining -= 1
    return out


def lowest_bits(mask: int, count: int) -> int:
    """Submask of the *count* lowest set bits of *mask*.

    Raises :class:`ValueError` if *mask* has fewer than *count* bits;
    callers are expected to have checked capacity already.
    """
    out = 0
    remaining = count
    while remaining:
        if not mask:
            raise ValueError(f"mask has fewer than {count} set bits")
        low = mask & -mask
        out |= low
        mask ^= low
        remaining -= 1
    return out

"""Processor allocation policies.

A policy chooses *which* free processors a fresh job receives.  In the
paper's model this choice is irrelevant for non-preemptive schedulers
(processors are interchangeable), but it matters under local preemption:
a suspended job can only resume on its original processors, so the shape
of earlier allocations determines which running jobs block a resume.

``LowestIdFirst`` is the default and the one used in all paper-replication
experiments; the other policies exist for ablations on allocation
sensitivity.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Iterable

from repro.cluster.bitset import lowest_bits, mask_from_ids, mask_to_ids


class AllocationPolicy(ABC):
    """Strategy interface: pick ``count`` processors from the free pool."""

    @abstractmethod
    def select(self, free: Iterable[int], count: int) -> frozenset[int]:
        """Return exactly *count* processor ids drawn from *free*.

        Implementations must be pure with respect to the free pool: they
        select ids but never mutate cluster state.
        """

    def select_mask(self, free_mask: int, count: int) -> int:
        """Mask-level entry point used by the bitmask :class:`Cluster`.

        The default adapts :meth:`select`: the free pool is handed over
        as an ascending id tuple (exactly what ``sorted(free)`` used to
        produce), so legacy policies keep byte-identical decisions.
        Hot-path policies override this to stay in mask space.
        """
        return mask_from_ids(self.select(mask_to_ids(free_mask), count))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class LowestIdFirst(AllocationPolicy):
    """Deterministically pick the lowest-numbered free processors.

    This packs jobs toward low ids, which keeps allocations compact and
    reproducible -- the default for every experiment in the reproduction.
    """

    def select(self, free: Iterable[int], count: int) -> frozenset[int]:
        return frozenset(sorted(free)[:count])

    def select_mask(self, free_mask: int, count: int) -> int:
        # lowest-id-first == lowest set bits: O(count) bit extraction,
        # no sort, identical choice to sorted(free)[:count]
        return lowest_bits(free_mask, count)


class RandomAllocation(AllocationPolicy):
    """Pick uniformly random free processors (seeded).

    Used only in ablation studies: random placement scatters jobs across
    the machine, which increases the chance that a suspended job's resume
    set overlaps many distinct running jobs.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def select(self, free: Iterable[int], count: int) -> frozenset[int]:
        pool = sorted(free)
        return frozenset(self._rng.sample(pool, count))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(seeded)"


class ContiguousBestFit(AllocationPolicy):
    """Prefer the smallest contiguous run of free ids that fits the job.

    Approximates buddy/contiguous node allocation on machines where
    locality matters.  Falls back to lowest-id-first when no single run is
    large enough (the job then spans fragments, as real schedulers do).
    """

    def select(self, free: Iterable[int], count: int) -> frozenset[int]:
        ids = sorted(free)
        runs: list[tuple[int, int]] = []  # (start index, length)
        i = 0
        while i < len(ids):
            j = i
            while j + 1 < len(ids) and ids[j + 1] == ids[j] + 1:
                j += 1
            runs.append((i, j - i + 1))
            i = j + 1
        fitting = [(length, start) for start, length in runs if length >= count]
        if fitting:
            length, start = min(fitting)
            return frozenset(ids[start : start + count])
        return frozenset(ids[:count])

"""repro -- Selective Preemption Strategies for Parallel Job Scheduling.

A from-scratch reproduction of Kettimuthu, Subramani, Srinivasan,
Gopalsamy, Panda & Sadayappan (ICPP 2002 / IJHPCN): a trace-driven
simulator for parallel job scheduling with

* classic non-preemptive substrate policies (FCFS, conservative
  backfilling, EASY/aggressive backfilling -- the paper's **NS**),
* the **Immediate Service** preemptive comparator, and
* the paper's contribution: **Selective Suspension (SS)** and **Tunable
  Selective Suspension (TSS)**,

plus calibrated synthetic CTC/SDSC/KTH workloads, SWF trace I/O, a
suspension-overhead model, and the paper's full metric suite.

Quickstart
----------

>>> from repro import simulate, generate_trace
>>> from repro.core import SelectiveSuspensionScheduler
>>> jobs = generate_trace("CTC", n_jobs=500, seed=1)
>>> result = simulate(jobs, SelectiveSuspensionScheduler(suspension_factor=2.0),
...                   n_procs=430)
>>> round(result.utilization, 2) > 0
True
"""

from repro.cluster import Cluster
from repro.core import (
    DiskSwapOverheadModel,
    ImmediateServiceScheduler,
    SelectiveSuspensionScheduler,
    TunableSelectiveSuspensionScheduler,
    limits_from_result,
)
from repro.experiments.runner import simulate
from repro.metrics import bounded_slowdown, overall_stats, per_category_stats
from repro.schedulers import (
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    FCFSScheduler,
)
from repro.sim import SchedulingSimulation, SimulationResult
from repro.workload import Job, generate_trace, read_swf, scale_load

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ConservativeBackfillScheduler",
    "DiskSwapOverheadModel",
    "EasyBackfillScheduler",
    "FCFSScheduler",
    "ImmediateServiceScheduler",
    "Job",
    "SchedulingSimulation",
    "SelectiveSuspensionScheduler",
    "SimulationResult",
    "TunableSelectiveSuspensionScheduler",
    "bounded_slowdown",
    "generate_trace",
    "limits_from_result",
    "overall_stats",
    "per_category_stats",
    "read_swf",
    "scale_load",
    "simulate",
    "__version__",
]

"""Conservative backfilling.

Section II-A-1: *every* job receives a reservation (start-time
guarantee) when it is submitted, at the earliest profile anchor that
fits it; a job may backfill only if doing so delays no previously
queued job.  When a running job terminates earlier than its estimate,
the schedule is *compressed*: reservations are released one by one in
order of increasing guaranteed start time and each job is re-anchored
against the updated profile -- it can only move earlier (in the worst
case it reclaims exactly its old slot).

Implementation: reservations are kept as ``job_id -> anchor`` and the
planning profile is rebuilt from live state on each pass.  Rebuilding is
O((R + Q)^2) in running + queued jobs, which is entirely adequate at
paper scale and immune to the incremental-update drift bugs that plague
long-lived profile structures.
"""

from __future__ import annotations

from repro.schedulers.policy import (
    FifoOrder,
    NoBackfill,
    NoPreemption,
    PerJobReservations,
    PolicyKernel,
    SchedulerSpec,
)
from repro.workload.job import Job


class ConservativeBackfillScheduler(PolicyKernel):
    """Per-job reservations with compression on early completion.

    The composition: FIFO queue and :class:`PerJobReservations`, which
    serves arrivals and completions itself (anchoring and compression
    *are* the scheme) -- the backfill pass never runs.
    """

    scheme_id = "conservative"

    def __init__(self) -> None:
        reservations = PerJobReservations()
        self._reservations = reservations
        super().__init__(
            SchedulerSpec(
                scheme_id="conservative",
                display_name="CONS",
                queue=FifoOrder(),
                reservation=reservations,
                backfill=NoBackfill(),
                preemption=NoPreemption(),
            )
        )

    def guaranteed_start(self, job: Job) -> float | None:
        """The job's current start-time guarantee (None once running)."""
        return self._reservations.guaranteed_start(job)

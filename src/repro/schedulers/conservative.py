"""Conservative backfilling.

Section II-A-1: *every* job receives a reservation (start-time
guarantee) when it is submitted, at the earliest profile anchor that
fits it; a job may backfill only if doing so delays no previously
queued job.  When a running job terminates earlier than its estimate,
the schedule is *compressed*: reservations are released one by one in
order of increasing guaranteed start time and each job is re-anchored
against the updated profile -- it can only move earlier (in the worst
case it reclaims exactly its old slot).

Implementation: reservations are kept as ``job_id -> anchor`` and the
planning profile is rebuilt from live state on each pass.  Rebuilding is
O((R + Q)^2) in running + queued jobs, which is entirely adequate at
paper scale and immune to the incremental-update drift bugs that plague
long-lived profile structures.
"""

from __future__ import annotations

from repro.schedulers.base import Scheduler
from repro.schedulers.profiles import AvailabilityProfile
from repro.workload.job import Job


class ConservativeBackfillScheduler(Scheduler):
    """Per-job reservations with compression on early completion."""

    name = "CONS"
    scheme_id = "conservative"

    def __init__(self) -> None:
        super().__init__()
        #: job_id -> guaranteed start time, for every queued job
        self._anchors: dict[int, float] = {}

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def on_begin(self) -> None:
        self._anchors.clear()

    def on_arrival(self, job: Job) -> None:
        """Anchor the new job behind all existing reservations."""
        driver = self.driver
        assert driver is not None
        profile = self._profile_with_reservations(exclude=job.job_id)
        anchor = profile.find_anchor(job.remaining_estimate(), job.procs)
        self._anchors[job.job_id] = anchor
        if anchor <= driver.now and driver.can_start(job):
            del self._anchors[job.job_id]
            driver.start_job(job)
        elif self.tracer is not None:
            self.tracer.decision(
                driver.now,
                "reservation",
                job.job_id,
                anchor=anchor,
                requested=job.procs,
                duration=job.remaining_estimate(),
            )

    def on_finish(self, job: Job) -> None:
        """Compress: re-anchor every queued job in guarantee order."""
        driver = self.driver
        assert driver is not None
        old_anchors = dict(self._anchors) if self.tracer is not None else {}
        queue = sorted(
            driver.queued_jobs(),
            key=lambda j: (self._anchors.get(j.job_id, float("inf")), j.job_id),
        )
        # Rebuild from running jobs only, then re-admit reservations in
        # guarantee order; each job's new anchor is <= its old one
        # because the profile it sees is a subset of the old claims.
        profile = self._running_profile()
        self._anchors.clear()
        for queued in queue:
            duration = queued.remaining_estimate()
            anchor = profile.find_anchor(duration, queued.procs)
            if anchor <= driver.now and driver.can_start(queued):
                driver.start_job(queued)
                profile.claim(driver.now, duration, queued.procs)
            else:
                self._anchors[queued.job_id] = anchor
                profile.claim(anchor, duration, queued.procs)
                # compression moved the guarantee: record the new anchor
                # (unchanged reservations are not re-emitted)
                if (
                    self.tracer is not None
                    and old_anchors.get(queued.job_id) != anchor
                ):
                    self.tracer.decision(
                        driver.now,
                        "reservation",
                        queued.job_id,
                        anchor=anchor,
                        requested=queued.procs,
                        duration=duration,
                        compressed_from=old_anchors.get(queued.job_id),
                    )

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _running_profile(self) -> AvailabilityProfile:
        driver = self.driver
        assert driver is not None
        profile = AvailabilityProfile(driver.cluster.n_procs, driver.now)
        for running in driver.running_jobs():
            profile.claim_running(len(running.allocated_procs), running.expected_end)
        return profile

    def _profile_with_reservations(self, exclude: int) -> AvailabilityProfile:
        driver = self.driver
        assert driver is not None
        profile = self._running_profile()
        by_anchor = sorted(
            (
                (anchor, jid)
                for jid, anchor in self._anchors.items()
                if jid != exclude
            ),
        )
        queued_by_id = {j.job_id: j for j in driver.queued_jobs()}
        for anchor, jid in by_anchor:
            queued = queued_by_id.get(jid)
            if queued is None:  # reservation for a job that just started
                continue
            start = max(anchor, driver.now)
            profile.claim(start, queued.remaining_estimate(), queued.procs)
        return profile

    def guaranteed_start(self, job: Job) -> float | None:
        """The job's current start-time guarantee (None once running)."""
        return self._anchors.get(job.job_id)

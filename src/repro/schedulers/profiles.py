"""Processor-availability profiles for backfilling.

Backfilling plans against a forecast of free processors over time: each
running job is expected to release its processors at its estimate-based
completion, and each reservation claims processors over a window.
:class:`AvailabilityProfile` is that forecast -- a piecewise-constant
step function ``free(t)`` on ``[origin, inf)``.

The representation is a sorted list of ``[time, free]`` breakpoints; the
value applies from the breakpoint up to the next one, and the final
breakpoint extends to infinity.  Lookups bisect (O(log n)); claims
insert at most two breakpoints and decrement a contiguous range (O(n));
anchor search scans windows (O(n^2) worst case).  Profiles are rebuilt
per scheduling pass from live state, so n stays at (running jobs +
queued reservations), which is small for the paper's machines.
"""

from __future__ import annotations

from bisect import bisect_right


class ProfileError(RuntimeError):
    """Raised when a claim would drive free processors negative."""


class AvailabilityProfile:
    """Forecast of free processors from ``origin`` onward.

    Parameters
    ----------
    n_procs:
        Machine capacity; the initial profile is ``free(t) = n_procs``
        everywhere.
    origin:
        Current simulation time; claims and queries before it are invalid.
    """

    def __init__(self, n_procs: int, origin: float) -> None:
        if n_procs <= 0:
            raise ValueError(f"n_procs must be positive, got {n_procs}")
        self.n_procs = n_procs
        self.origin = origin
        self._times: list[float] = [origin]
        self._free: list[int] = [n_procs]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def free_at(self, t: float) -> int:
        """Free processors at time *t* (>= origin)."""
        if t < self.origin:
            raise ValueError(f"query at t={t} before origin={self.origin}")
        idx = bisect_right(self._times, t) - 1
        return self._free[idx]

    def min_free(self, start: float, end: float) -> int:
        """Minimum of ``free(t)`` over the window ``[start, end)``."""
        if end <= start:
            return self.free_at(start)
        idx = bisect_right(self._times, start) - 1
        lo = self._free[idx]
        idx += 1
        while idx < len(self._times) and self._times[idx] < end:
            lo = min(lo, self._free[idx])
            idx += 1
        return lo

    def fits(self, start: float, duration: float, count: int) -> bool:
        """Whether *count* processors are free throughout the window."""
        return self.min_free(start, start + duration) >= count

    def breakpoints(self) -> list[tuple[float, int]]:
        """Snapshot of (time, free) steps -- for tests and debugging."""
        return list(zip(self._times, self._free, strict=True))

    def clone(self) -> "AvailabilityProfile":
        """Independent copy (what-if planning without mutating the original)."""
        copy = AvailabilityProfile(self.n_procs, self.origin)
        copy._times = list(self._times)
        copy._free = list(self._free)
        return copy

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _ensure_breakpoint(self, t: float) -> int:
        """Make *t* a breakpoint; return its index."""
        idx = bisect_right(self._times, t) - 1
        if self._times[idx] == t:
            return idx
        self._times.insert(idx + 1, t)
        self._free.insert(idx + 1, self._free[idx])
        return idx + 1

    def claim(self, start: float, duration: float, count: int) -> None:
        """Reserve *count* processors over ``[start, start + duration)``.

        Raises
        ------
        ProfileError
            If any part of the window lacks *count* free processors --
            callers must check with :meth:`fits`/:meth:`find_anchor`
            first; failing loudly here catches planner bugs.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if start < self.origin:
            raise ValueError(f"claim at t={start} before origin={self.origin}")
        end = start + duration
        i0 = self._ensure_breakpoint(start)
        i1 = self._ensure_breakpoint(end)
        for i in range(i0, i1):
            if self._free[i] < count:
                raise ProfileError(
                    f"claim of {count} procs over [{start}, {end}) underflows "
                    f"at t={self._times[i]} (free={self._free[i]})"
                )
            self._free[i] -= count

    def claim_running(self, count: int, until: float) -> None:
        """Account a currently running job: *count* procs busy until *until*."""
        until = max(until, self.origin + 1.0)  # jobs past their estimate
        self.claim(self.origin, until - self.origin, count)

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def find_anchor(self, duration: float, count: int, earliest: float | None = None) -> float:
        """Earliest start >= *earliest* with *count* procs free for *duration*.

        This is the "anchor point" of conservative backfilling (section
        II-A-1).  Candidates are *earliest* itself and every later
        breakpoint; a window starting between breakpoints can never be
        feasible if the window starting at the previous breakpoint was
        not, because free(t) is constant between breakpoints.

        Always succeeds for ``count <= n_procs``: beyond the last
        breakpoint the profile returns to its final value, which includes
        all capacity not claimed forever.
        """
        if count > self.n_procs:
            raise ProfileError(
                f"{count} processors can never be free on a {self.n_procs}-proc machine"
            )
        start = self.origin if earliest is None else max(earliest, self.origin)
        candidates = [start, *(t for t in self._times if t > start)]
        for t in candidates:
            if self.fits(t, duration, count):
                return t
        # Last resort: after every breakpoint the free count is the final
        # value; if even that is insufficient a claim was never released,
        # which is a planner bug.
        if self._free[-1] >= count:
            return self._times[-1]
        raise ProfileError(
            f"no anchor for count={count}, duration={duration}: profile tail "
            f"only has {self._free[-1]} free -- unterminated claim?"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        steps = ", ".join(f"{t:g}:{f}" for t, f in zip(self._times, self._free, strict=True))
        return f"AvailabilityProfile[{steps}]"

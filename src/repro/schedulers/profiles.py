"""Processor-availability profiles for backfilling.

Backfilling plans against a forecast of free processors over time: each
running job is expected to release its processors at its estimate-based
completion, and each reservation claims processors over a window.
:class:`AvailabilityProfile` is that forecast -- a piecewise-constant
step function ``free(t)`` on ``[origin, inf)``.

The representation is a sorted list of ``[time, free]`` breakpoints; the
value applies from the breakpoint up to the next one, and the final
breakpoint extends to infinity.  Lookups bisect (O(log n)); a claim
rewrites the affected run of breakpoints with one slice splice (a single
memmove instead of two ``list.insert`` shifts); anchor search is one
merged breakpoint walk carrying a sliding-window minimum (O(n) per
anchor, down from the O(n^2) candidates-times-rescan form -- the legacy
reference survives in ``benchmarks/bench_micro.py``).  EASY and
conservative backfilling rebuild a profile every scheduling pass, so
these two operations bound the whole backfill family's cost once queues
congest.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque


class ProfileError(RuntimeError):
    """Raised when a claim would drive free processors negative."""


class AvailabilityProfile:
    """Forecast of free processors from ``origin`` onward.

    Parameters
    ----------
    n_procs:
        Machine capacity; the initial profile is ``free(t) = n_procs``
        everywhere.
    origin:
        Current simulation time; claims and queries before it are invalid.
    """

    def __init__(self, n_procs: int, origin: float) -> None:
        if n_procs <= 0:
            raise ValueError(f"n_procs must be positive, got {n_procs}")
        self.n_procs = n_procs
        self.origin = origin
        self._times: list[float] = [origin]
        self._free: list[int] = [n_procs]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def free_at(self, t: float) -> int:
        """Free processors at time *t* (>= origin)."""
        if t < self.origin:
            raise ValueError(f"query at t={t} before origin={self.origin}")
        idx = bisect_right(self._times, t) - 1
        return self._free[idx]

    def min_free(self, start: float, end: float) -> int:
        """Minimum of ``free(t)`` over the window ``[start, end)``."""
        if end <= start:
            return self.free_at(start)
        idx = bisect_right(self._times, start) - 1
        lo = self._free[idx]
        idx += 1
        while idx < len(self._times) and self._times[idx] < end:
            lo = min(lo, self._free[idx])
            idx += 1
        return lo

    def fits(self, start: float, duration: float, count: int) -> bool:
        """Whether *count* processors are free throughout the window."""
        return self.min_free(start, start + duration) >= count

    def breakpoints(self) -> list[tuple[float, int]]:
        """Snapshot of (time, free) steps -- for tests and debugging."""
        return list(zip(self._times, self._free, strict=True))

    def clone(self) -> "AvailabilityProfile":
        """Independent copy (what-if planning without mutating the original)."""
        copy = AvailabilityProfile(self.n_procs, self.origin)
        copy._times = list(self._times)
        copy._free = list(self._free)
        return copy

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def claim(self, start: float, duration: float, count: int) -> None:
        """Reserve *count* processors over ``[start, start + duration)``.

        The affected run of breakpoints is rewritten with one slice
        assignment per list: at most one segment shift regardless of how
        many breakpoints the window spans, where the old
        ensure-breakpoint form paid two O(n) ``list.insert`` shifts per
        claim.  Validation is all-or-nothing -- an underflow raises
        before any breakpoint changes.

        Raises
        ------
        ProfileError
            If any part of the window lacks *count* free processors --
            callers must check with :meth:`fits`/:meth:`find_anchor`
            first; failing loudly here catches planner bugs.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if start < self.origin:
            raise ValueError(f"claim at t={start} before origin={self.origin}")
        end = start + duration
        times = self._times
        free = self._free
        i = bisect_right(times, start) - 1
        j = bisect_right(times, end, lo=i) - 1  # segment containing `end`
        # segments [i, last] lose `count`; segment j is untouched when a
        # breakpoint already sits exactly at `end`
        last = j - 1 if times[j] == end else j
        for k in range(i, last + 1):
            if free[k] < count:
                raise ProfileError(
                    f"claim of {count} procs over [{start}, {end}) underflows "
                    f"at t={times[k]} (free={free[k]})"
                )
        new_times: list[float] = []
        new_free: list[int] = []
        if times[i] < start:
            new_times.append(times[i])  # unchanged head of segment i
            new_free.append(free[i])
        new_times.append(start)
        new_free.append(free[i] - count)
        for k in range(i + 1, last + 1):
            new_times.append(times[k])
            new_free.append(free[k] - count)
        if times[j] < end:
            new_times.append(end)  # tail of segment j reverts past `end`
            new_free.append(free[j])
        times[i : last + 1] = new_times
        free[i : last + 1] = new_free

    def claim_running(self, count: int, until: float) -> None:
        """Account a currently running job: *count* procs busy until *until*."""
        until = max(until, self.origin + 1.0)  # jobs past their estimate
        self.claim(self.origin, until - self.origin, count)

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def find_anchor(self, duration: float, count: int, earliest: float | None = None) -> float:
        """Earliest start >= *earliest* with *count* procs free for *duration*.

        This is the "anchor point" of conservative backfilling (section
        II-A-1).  Candidates are *earliest* itself and every later
        breakpoint; a window starting between breakpoints can never be
        feasible if the window starting at the previous breakpoint was
        not, because free(t) is constant between breakpoints.

        Always succeeds for ``count <= n_procs``: beyond the last
        breakpoint the profile returns to its final value, which includes
        all capacity not claimed forever.
        """
        if count > self.n_procs:
            raise ProfileError(
                f"{count} processors can never be free on a {self.n_procs}-proc machine"
            )
        start = self.origin if earliest is None else max(earliest, self.origin)
        times = self._times
        free = self._free
        n = len(times)
        # Single merged walk over the breakpoints.  Candidates are
        # visited in time order; the window minimum over the segments a
        # candidate's window covers is carried in a monotonic deque of
        # segment indices with strictly increasing free values.  Both
        # window edges only ever advance, so every segment is pushed and
        # popped at most once: O(n) total, versus the old
        # candidates-times-`fits` rescan which re-walked the window from
        # scratch for every candidate (O(n^2) on congested profiles).
        anchor_idx = bisect_right(times, start) - 1  # segment containing candidate
        push_idx = anchor_idx  # next segment to enter the window
        window: deque[int] = deque()
        candidate = start
        while True:
            window_end = candidate + duration
            while push_idx < n and times[push_idx] < window_end:
                while window and free[window[-1]] >= free[push_idx]:
                    window.pop()
                window.append(push_idx)
                push_idx += 1
            while window and window[0] < anchor_idx:
                window.popleft()
            # For any positive duration the candidate's own segment is in
            # the window, so the deque head is the window minimum.  An
            # empty deque only happens for degenerate durations <= 0,
            # where the legacy fits() degraded to a point query.
            lowest = free[window[0]] if window else free[anchor_idx]
            if lowest >= count:
                return candidate
            anchor_idx += 1
            if anchor_idx >= n:
                break
            candidate = times[anchor_idx]
        # Last resort: after every breakpoint the free count is the final
        # value; if even that is insufficient a claim was never released,
        # which is a planner bug.
        if free[-1] >= count:  # pragma: no cover - tail candidate succeeds first
            return times[-1]
        raise ProfileError(
            f"no anchor for count={count}, duration={duration}: profile tail "
            f"only has {free[-1]} free -- unterminated claim?"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        steps = ", ".join(f"{t:g}:{f}" for t, f in zip(self._times, self._free, strict=True))
        return f"AvailabilityProfile[{steps}]"

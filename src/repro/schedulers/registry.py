"""Rebuilding schedulers from their :meth:`Scheduler.config` mappings.

Scheduler objects are stateful and single-use, so they cannot travel to
worker processes or live in a cache key.  Their :meth:`Scheduler.config`
mapping can: it is JSON-stable, fully determines behaviour, and this
module turns it back into a fresh instance.

The round-trip contract, checked by ``tests/test_parallel.py``::

    scheduler_from_config(s.config()).config() == s.config()

Registering a new scheme means adding a builder here and a
``scheme_id`` + ``config()`` override on the scheduler class.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.schedulers.base import Scheduler

#: scheme id -> builder(config) -> fresh scheduler instance
_BUILDERS: dict[str, Callable[[Mapping[str, object]], Scheduler]] = {}


def register(scheme_id: str) -> Callable[
    [Callable[[Mapping[str, object]], Scheduler]],
    Callable[[Mapping[str, object]], Scheduler],
]:
    """Decorator registering a builder for *scheme_id*."""

    def deco(
        fn: Callable[[Mapping[str, object]], Scheduler],
    ) -> Callable[[Mapping[str, object]], Scheduler]:
        _BUILDERS[scheme_id] = fn
        return fn

    return deco


def known_schemes() -> tuple[str, ...]:
    """The registered scheme ids, sorted."""
    return tuple(sorted(_BUILDERS))


def scheduler_from_config(config: Mapping[str, object]) -> Scheduler:
    """Build a fresh, unbound scheduler from a :meth:`Scheduler.config` dict.

    Raises
    ------
    KeyError
        If the config carries no ``"scheme"`` key.
    ValueError
        If the scheme id is not registered.
    """
    scheme = config["scheme"]
    builder = _BUILDERS.get(str(scheme))
    if builder is None:
        raise ValueError(
            f"unknown scheme {scheme!r}; known: {', '.join(known_schemes())}"
        )
    return builder(config)


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
@register("fcfs")
def _build_fcfs(config: Mapping[str, object]) -> Scheduler:
    from repro.schedulers.fcfs import FCFSScheduler

    return FCFSScheduler()


@register("easy")
def _build_easy(config: Mapping[str, object]) -> Scheduler:
    from repro.schedulers.easy import EasyBackfillScheduler

    return EasyBackfillScheduler()


@register("conservative")
def _build_conservative(config: Mapping[str, object]) -> Scheduler:
    from repro.schedulers.conservative import ConservativeBackfillScheduler

    return ConservativeBackfillScheduler()


@register("relaxed")
def _build_relaxed(config: Mapping[str, object]) -> Scheduler:
    from repro.schedulers.relaxed import RelaxedBackfillScheduler

    return RelaxedBackfillScheduler(relaxation=float(config.get("relaxation", 0.5)))  # type: ignore[arg-type]


@register("speculative")
def _build_speculative(config: Mapping[str, object]) -> Scheduler:
    from repro.schedulers.speculative import SpeculativeBackfillScheduler

    return SpeculativeBackfillScheduler(
        speculation_window=float(config.get("speculation_window", 900.0)),  # type: ignore[arg-type]
        max_kills=int(config.get("max_kills", 2)),  # type: ignore[arg-type]
    )


@register("gang")
def _build_gang(config: Mapping[str, object]) -> Scheduler:
    from repro.schedulers.gang import GangScheduler

    return GangScheduler(quantum=float(config.get("quantum", 600.0)))  # type: ignore[arg-type]


@register("is")
def _build_is(config: Mapping[str, object]) -> Scheduler:
    from repro.core.immediate_service import DEFAULT_TIMESLICE, ImmediateServiceScheduler

    return ImmediateServiceScheduler(
        timeslice=float(config.get("timeslice", DEFAULT_TIMESLICE)),  # type: ignore[arg-type]
        sweep_interval=float(config.get("sweep_interval", 60.0)),  # type: ignore[arg-type]
    )


@register("ss")
def _build_ss(config: Mapping[str, object]) -> Scheduler:
    from repro.core.selective_suspension import SelectiveSuspensionScheduler

    return SelectiveSuspensionScheduler(
        suspension_factor=float(config.get("suspension_factor", 2.0)),  # type: ignore[arg-type]
        preemption_interval=float(config.get("preemption_interval", 60.0)),  # type: ignore[arg-type]
        width_rule=bool(config.get("width_rule", True)),
    )


@register("tss")
def _build_tss(config: Mapping[str, object]) -> Scheduler:
    from repro.core.tss import CategoryLimits, TunableSelectiveSuspensionScheduler

    raw_limits = config.get("limits")
    limits = (
        CategoryLimits.from_config(raw_limits)  # type: ignore[arg-type]
        if isinstance(raw_limits, Mapping)
        else None
    )
    return TunableSelectiveSuspensionScheduler(
        suspension_factor=float(config.get("suspension_factor", 2.0)),  # type: ignore[arg-type]
        limits=limits,
        preemption_interval=float(config.get("preemption_interval", 60.0)),  # type: ignore[arg-type]
        width_rule=bool(config.get("width_rule", True)),
    )


@register("ss-easy")
def _build_ss_easy(config: Mapping[str, object]) -> Scheduler:
    from repro.schedulers.hybrids import SuspensionWithHeadGuarantee

    return SuspensionWithHeadGuarantee(
        suspension_factor=float(config.get("suspension_factor", 2.0)),  # type: ignore[arg-type]
        preemption_interval=float(config.get("preemption_interval", 60.0)),  # type: ignore[arg-type]
        width_rule=bool(config.get("width_rule", True)),
    )


@register("tss-conservative")
def _build_tss_conservative(config: Mapping[str, object]) -> Scheduler:
    from repro.core.tss import CategoryLimits
    from repro.schedulers.hybrids import TunableSuspensionWithGuarantees

    raw_limits = config.get("limits")
    limits = (
        CategoryLimits.from_config(raw_limits)  # type: ignore[arg-type]
        if isinstance(raw_limits, Mapping)
        else None
    )
    return TunableSuspensionWithGuarantees(
        suspension_factor=float(config.get("suspension_factor", 2.0)),  # type: ignore[arg-type]
        limits=limits,
        preemption_interval=float(config.get("preemption_interval", 60.0)),  # type: ignore[arg-type]
        width_rule=bool(config.get("width_rule", True)),
    )

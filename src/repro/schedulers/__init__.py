"""Non-preemptive scheduling substrate.

The paper's preemptive schemes are built *on top of* classic backfilling
scheduling; this subpackage provides that substrate:

* :mod:`repro.schedulers.base` -- the scheduler interface the simulation
  driver drives.
* :mod:`repro.schedulers.fcfs` -- first-come-first-served (section II's
  strawman).
* :mod:`repro.schedulers.easy` -- aggressive/EASY backfilling, the
  paper's non-preemptive **NS** baseline (section II-A-2).
* :mod:`repro.schedulers.conservative` -- conservative backfilling with
  per-job reservations and schedule compression (section II-A-1).
* :mod:`repro.schedulers.profiles` -- the processor-availability
  timeline both backfilling variants plan against.

The preemptive schemes (SS, TSS, IS) live in :mod:`repro.core` because
they are the paper's contribution, but they implement the same
:class:`~repro.schedulers.base.Scheduler` interface.
"""

from repro.schedulers.base import Scheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.easy import EasyBackfillScheduler
from repro.schedulers.conservative import ConservativeBackfillScheduler
from repro.schedulers.gang import GangScheduler
from repro.schedulers.profiles import AvailabilityProfile
from repro.schedulers.relaxed import RelaxedBackfillScheduler
from repro.schedulers.speculative import SpeculativeBackfillScheduler

__all__ = [
    "AvailabilityProfile",
    "ConservativeBackfillScheduler",
    "EasyBackfillScheduler",
    "FCFSScheduler",
    "GangScheduler",
    "RelaxedBackfillScheduler",
    "Scheduler",
    "SpeculativeBackfillScheduler",
]

"""Gang scheduling (Ousterhout-matrix time slicing).

Section II names gang scheduling as the classic preemptive alternative
to backfilling for rigid jobs: the machine's time is divided into
*slots* (rows of the Ousterhout matrix); each job is placed into one
slot on a fixed set of processors, and the scheduler rotates through
slots every *quantum*, context-switching all jobs of the outgoing slot
and resuming all jobs of the incoming one in one coordinated gang
switch.  Jobs in the same slot run truly in parallel; jobs in different
slots time-share the machine.

This implementation is the straightforward matrix variant:

* admission is first-fit: a job joins the first slot with enough free
  columns (processor ids unused by that slot), else opens a new slot;
* each job keeps the same processor columns for its whole life, so
  suspension/resume is automatically local (the paper's constraint);
* rotation is strictly round-robin over non-empty slots; no
  alternative-slot backfilling of mid-quantum holes (documented
  simplification -- production gang schedulers fill those with
  "alternative scheduling");
* a single occupied slot short-circuits rotation (no churn when the
  machine is not oversubscribed).

Included as an extension baseline: it shows what *indiscriminate*
(time-driven) preemption does to the same workloads, against which the
paper's *selective* (priority-driven) preemption can be judged.  Each
gang switch pays the suspension-overhead model's price like any other
suspension, which is exactly why coarse quanta are mandatory.
"""

from __future__ import annotations

from repro.schedulers.base import Scheduler
from repro.workload.job import Job, JobState


class _Slot:
    """One row of the Ousterhout matrix."""

    __slots__ = ("jobs", "columns")

    def __init__(self) -> None:
        #: members of the slot (running or suspended, never finished)
        self.jobs: list[Job] = []
        #: job_id -> processor columns assigned within this slot
        self.columns: dict[int, frozenset[int]] = {}

    def used(self) -> set[int]:
        out: set[int] = set()
        # repro-lint: disable=RPR001 -- set-union fold: result is order-insensitive
        for cols in self.columns.values():
            out |= cols
        return out


class GangScheduler(Scheduler):
    """Round-robin gang scheduling with first-fit slot admission.

    Parameters
    ----------
    quantum:
        Seconds between gang switches; the classic trade-off knob
        (responsiveness vs context-switch amortisation).
    """

    name = "GANG"
    scheme_id = "gang"

    def config(self) -> dict[str, object]:
        return {"scheme": self.scheme_id, "quantum": self.quantum}

    def __init__(self, quantum: float = 600.0) -> None:
        super().__init__()
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = float(quantum)
        self.timer_interval = float(quantum)
        self._slots: list[_Slot] = []
        self._active = 0
        #: earliest time the active slot may be switched out: the
        #: quantum is a quantum of *service*, so it extends past any
        #: suspend/restart overhead the slot's jobs had to pay first
        #: (otherwise overhead > quantum livelocks the rotation)
        self._slot_protected_until = 0.0

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def on_begin(self) -> None:
        self._slots = []
        self._active = 0

    def on_arrival(self, job: Job) -> None:
        self._admit(job)
        self._dispatch_active()

    def on_finish(self, job: Job) -> None:
        self._evict(job)
        self._dispatch_active()

    def on_timer(self) -> None:
        self._rotate()

    # ------------------------------------------------------------------
    # matrix management
    # ------------------------------------------------------------------
    def _admit(self, job: Job) -> None:
        """First-fit the job into a slot; assign its columns for life."""
        driver = self.driver
        assert driver is not None
        n = driver.cluster.n_procs
        for slot in self._slots:
            free_cols = sorted(set(range(n)) - slot.used())
            if len(free_cols) >= job.procs:
                slot.jobs.append(job)
                slot.columns[job.job_id] = frozenset(free_cols[: job.procs])
                return
        slot = _Slot()
        slot.jobs.append(job)
        slot.columns[job.job_id] = frozenset(range(job.procs))
        self._slots.append(slot)

    def _evict(self, job: Job) -> None:
        for i, slot in enumerate(self._slots):
            if job.job_id in slot.columns:
                slot.jobs.remove(job)
                del slot.columns[job.job_id]
                if not slot.jobs:
                    del self._slots[i]
                    if self._active >= len(self._slots):
                        self._active = 0
                return

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _dispatch_active(self) -> None:
        """Start every queued member of the active slot whose columns are free."""
        driver = self.driver
        assert driver is not None
        if not self._slots:
            return
        slot = self._slots[self._active % len(self._slots)]
        for job in list(slot.jobs):
            if job.state is not JobState.QUEUED:
                continue
            cols = job.suspended_procs or slot.columns[job.job_id]
            if driver.cluster.can_allocate_specific(cols):
                pending = job.pending_overhead
                driver.start_job(job, procs=cols)
                self._slot_protected_until = max(
                    self._slot_protected_until, driver.now + pending + self.quantum
                )

    def _rotate(self) -> None:
        """Gang switch: park the active slot, wake the next one."""
        driver = self.driver
        assert driver is not None
        if len(self._slots) <= 1:
            self._dispatch_active()
            return
        if driver.now < self._slot_protected_until:
            return  # the active slot has not had its quantum of service yet
        outgoing = self._slots[self._active % len(self._slots)]
        for job in list(outgoing.jobs):
            if job.state is JobState.RUNNING:
                driver.suspend_job(job)
        self._active = (self._active + 1) % len(self._slots)
        self._dispatch_active()

    def describe(self) -> str:
        return f"GANG, quantum {self.quantum:g}s, {len(self._slots)} slots"

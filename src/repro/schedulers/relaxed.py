"""Relaxed backfilling (Ward, Mahood & West -- the paper's ref [10]).

EASY backfilling refuses any backfill that would delay the reserved
head job *at all*; relaxed backfilling trades a bounded head delay for
utilisation: a queued job may backfill if doing so postpones the head's
start by at most ``relaxation x`` the head's estimated run time.  At
``relaxation = 0`` this degenerates to EASY; small positive values
(the original paper studies ~0.5) recover most of the utilisation lost
to pessimistic user estimates.

Implementation: like EASY, the head gets the single reservation; each
backfill candidate is evaluated on a *cloned* profile -- claim the
candidate now, re-anchor the head, accept if the new anchor is within
the allowance, otherwise discard the clone.  O(Q x profile) per pass,
same complexity class as the EASY planner.

Included as a substrate extension: the reproduction's ablations use it
to show the paper's conclusions do not hinge on the exact
non-preemptive baseline chosen.
"""

from __future__ import annotations

from repro.schedulers.policy import (
    FifoOrder,
    HeadReservation,
    NoPreemption,
    PolicyKernel,
    RelaxedBackfill,
    SchedulerSpec,
)


class RelaxedBackfillScheduler(PolicyKernel):
    """Backfilling with a bounded head-delay allowance.

    The composition: FIFO queue, a head reservation that is *planned
    but neither claimed nor announced* (the anchor is an internal
    allowance, re-derived per candidate), relaxed what-if admission,
    no preemption.

    Parameters
    ----------
    relaxation:
        Fraction of the head job's estimate by which its reserved start
        may slip to admit a backfill.  0 reproduces EASY exactly.
    """

    scheme_id = "relaxed"

    def __init__(self, relaxation: float = 0.5) -> None:
        super().__init__(
            SchedulerSpec(
                scheme_id="relaxed",
                display_name=f"RELAXED(r={relaxation:g})",
                queue=FifoOrder(),
                reservation=HeadReservation(claim_head=False, announce=False),
                backfill=RelaxedBackfill(relaxation=relaxation),
                preemption=NoPreemption(),
            )
        )

    @property
    def relaxation(self) -> float:
        backfill = self.backfill
        assert isinstance(backfill, RelaxedBackfill)
        return backfill.relaxation

    def schedule_pass(self) -> None:
        self.backfill_pass()

    def describe(self) -> str:
        return f"{self.name} (EASY at r=0)"

"""Relaxed backfilling (Ward, Mahood & West -- the paper's ref [10]).

EASY backfilling refuses any backfill that would delay the reserved
head job *at all*; relaxed backfilling trades a bounded head delay for
utilisation: a queued job may backfill if doing so postpones the head's
start by at most ``relaxation x`` the head's estimated run time.  At
``relaxation = 0`` this degenerates to EASY; small positive values
(the original paper studies ~0.5) recover most of the utilisation lost
to pessimistic user estimates.

Implementation: like EASY, the head gets the single reservation; each
backfill candidate is evaluated on a *cloned* profile -- claim the
candidate now, re-anchor the head, accept if the new anchor is within
the allowance, otherwise discard the clone.  O(Q x profile) per pass,
same complexity class as the EASY planner.

Included as a substrate extension: the reproduction's ablations use it
to show the paper's conclusions do not hinge on the exact
non-preemptive baseline chosen.
"""

from __future__ import annotations

from repro.schedulers.base import Scheduler
from repro.schedulers.profiles import AvailabilityProfile
from repro.workload.job import Job


class RelaxedBackfillScheduler(Scheduler):
    """Backfilling with a bounded head-delay allowance.

    Parameters
    ----------
    relaxation:
        Fraction of the head job's estimate by which its reserved start
        may slip to admit a backfill.  0 reproduces EASY exactly.
    """

    scheme_id = "relaxed"

    def __init__(self, relaxation: float = 0.5) -> None:
        super().__init__()
        if relaxation < 0:
            raise ValueError("relaxation must be nonnegative")
        self.relaxation = float(relaxation)
        self.name = f"RELAXED(r={relaxation:g})"

    def config(self) -> dict[str, object]:
        return {"scheme": self.scheme_id, "relaxation": self.relaxation}

    def on_arrival(self, job: Job) -> None:
        self.schedule_pass()

    def on_finish(self, job: Job) -> None:
        self.schedule_pass()

    # ------------------------------------------------------------------
    def schedule_pass(self) -> None:
        driver = self.driver
        assert driver is not None

        # Phase 1: FIFO starts while the head fits (as EASY).
        while True:
            queue = driver.queued_jobs()
            if not queue or not driver.can_start(queue[0]):
                break
            driver.start_job(queue[0])

        queue = driver.queued_jobs()
        if not queue:
            return

        head = queue[0]
        profile = AvailabilityProfile(driver.cluster.n_procs, driver.now)
        for running in driver.running_jobs():
            profile.claim_running(len(running.allocated_procs), running.expected_end)
        head_duration = head.remaining_estimate()
        head_anchor = profile.find_anchor(head_duration, head.procs)
        allowance = head_anchor + self.relaxation * head.remaining_estimate()

        # Phase 2: admit backfills whose what-if head anchor stays
        # within the allowance.  The accepted claims accumulate in
        # `profile` (without the head's own claim, which moves).
        for job in queue[1:]:
            if not driver.can_start(job):
                continue
            duration = job.remaining_estimate()
            if not profile.fits(driver.now, duration, job.procs):
                continue
            trial = profile.clone()
            trial.claim(driver.now, duration, job.procs)
            new_anchor = trial.find_anchor(head_duration, head.procs)
            if new_anchor <= allowance:
                driver.start_job(job)
                profile.claim(driver.now, duration, job.procs)

    def describe(self) -> str:
        return f"{self.name} (EASY at r=0)"

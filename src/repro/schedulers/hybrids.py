"""Hybrid guarantee + preemption schemes unlocked by the policy kernel.

The paper leaves open how selective preemption interacts with
start-time guarantees: SS deliberately reserves nothing (section IV-A
argues the xfactor priority alone prevents starvation), while the
non-preemptive baselines buy predictability with reservations.  The
policy decomposition makes the cross products expressible:

* **ss-easy** -- SS's suspension sweep with an EASY-style head
  reservation the sweep must honor.  Each suspension sweep plans the
  queue head's earliest start against the running jobs (announced as a
  ``reservation`` decision record, exactly like EASY's) and then
  refuses to *suspend victims* for any other job that would still be
  running at that anchor (denial cause ``reservation_guard``).  Greedy
  starts onto free processors are untouched: the guard constrains
  preemption, not admission, so the scheme trades a little of SS's
  aggression for an EASY-grade guarantee that the most-delayed job's
  forecast start cannot be pushed back by preemption churn.
* **tss-conservative** -- conservative backfilling's per-job
  guarantees with TSS's category-limited preemption sweep layered on
  top.  Arrivals and completions anchor and compress exactly as in
  CONS; every ``preemption_interval`` the sweep additionally serves
  the queue by suspending victims under the category limits.  Jobs the
  sweep starts or suspends drop out of / re-enter the anchor table at
  the next compression (anchors are filtered against the live queue),
  so the guarantees stay self-consistent -- they are forecasts, as in
  CONS, not contracts.

Both are ordinary registry schemes: constructible from ``config()``
mappings, cacheable, traceable, and grid-runnable.
"""

from __future__ import annotations

from repro.core.priorities import PreemptionCriteria
from repro.core.tss import CategoryLimits
from repro.schedulers.policy import (
    GreedyBackfill,
    HeadReservation,
    PerJobReservations,
    PolicyKernel,
    SchedulerSpec,
    SuspensionPriorityOrder,
    SweepPreemption,
)
from repro.workload.job import Job


class SuspensionWithHeadGuarantee(PolicyKernel):
    """``ss-easy``: the SS sweep honoring an EASY head reservation."""

    scheme_id = "ss-easy"

    def __init__(
        self,
        suspension_factor: float = 2.0,
        preemption_interval: float = 60.0,
        width_rule: bool = True,
    ) -> None:
        engine = SweepPreemption(
            PreemptionCriteria(
                suspension_factor=suspension_factor, width_rule=width_rule
            ),
            preemption_interval=preemption_interval,
        )
        self._engine = engine
        super().__init__(
            SchedulerSpec(
                scheme_id="ss-easy",
                display_name=f"SS+EASY(SF={suspension_factor:g})",
                queue=SuspensionPriorityOrder(),
                reservation=HeadReservation(),
                backfill=GreedyBackfill(),
                preemption=engine,
            )
        )

    @property
    def criteria(self) -> PreemptionCriteria:
        return self._engine.criteria

    def describe(self) -> str:
        return (
            f"{self.name}, sweep every {self.timer_interval:g}s, "
            f"head reservation guards preemption"
        )


class TunableSuspensionWithGuarantees(PolicyKernel):
    """``tss-conservative``: per-job guarantees + category-limited sweep."""

    scheme_id = "tss-conservative"

    def __init__(
        self,
        suspension_factor: float = 2.0,
        limits: CategoryLimits | None = None,
        preemption_interval: float = 60.0,
        width_rule: bool = True,
    ) -> None:
        limits = limits if limits is not None else CategoryLimits(online=True)
        mode = "online" if limits.online else "calibrated"
        engine = SweepPreemption(
            PreemptionCriteria(
                suspension_factor=suspension_factor, width_rule=width_rule
            ),
            preemption_interval=preemption_interval,
            limits=limits,
        )
        self._engine = engine
        reservations = PerJobReservations()
        self._reservations = reservations
        super().__init__(
            SchedulerSpec(
                scheme_id="tss-conservative",
                display_name=f"TSS+CONS(SF={suspension_factor:g},{mode})",
                queue=SuspensionPriorityOrder(),
                reservation=reservations,
                backfill=GreedyBackfill(),
                preemption=engine,
            )
        )

    @property
    def criteria(self) -> PreemptionCriteria:
        return self._engine.criteria

    @property
    def limits(self) -> CategoryLimits:
        limits = self._engine.limits
        assert isinstance(limits, CategoryLimits)
        return limits

    def guaranteed_start(self, job: Job) -> float | None:
        """The job's current start-time guarantee (None once running)."""
        return self._reservations.guaranteed_start(job)

    def describe(self) -> str:
        return (
            f"{self.name}, sweep every {self.timer_interval:g}s, "
            f"per-job guarantees with compression"
        )

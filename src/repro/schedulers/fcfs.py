"""First-come-first-served scheduling.

The strawman of section II: jobs start strictly in arrival order; if the
head of the queue does not fit, everything behind it waits, however many
processors sit idle.  Included as the fragmentation baseline against
which backfilling's utilisation gain is measured (and as the simplest
possible correctness reference for the driver).
"""

from __future__ import annotations

from repro.schedulers.policy import (
    FifoOrder,
    NoBackfill,
    NoPreemption,
    NoReservations,
    PolicyKernel,
    SchedulerSpec,
)


class FCFSScheduler(PolicyKernel):
    """Strict arrival-order dispatch, no backfilling.

    The degenerate composition: FIFO queue and nothing else -- no
    reservation means the service pass stops at the first blocked head.
    """

    scheme_id = "fcfs"

    def __init__(self) -> None:
        super().__init__(
            SchedulerSpec(
                scheme_id="fcfs",
                display_name="FCFS",
                queue=FifoOrder(),
                reservation=NoReservations(),
                backfill=NoBackfill(),
                preemption=NoPreemption(),
            )
        )

    def _dispatch_in_order(self) -> None:
        self.backfill_pass()

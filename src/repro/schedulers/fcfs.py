"""First-come-first-served scheduling.

The strawman of section II: jobs start strictly in arrival order; if the
head of the queue does not fit, everything behind it waits, however many
processors sit idle.  Included as the fragmentation baseline against
which backfilling's utilisation gain is measured (and as the simplest
possible correctness reference for the driver).
"""

from __future__ import annotations

from repro.schedulers.base import Scheduler
from repro.workload.job import Job


class FCFSScheduler(Scheduler):
    """Strict arrival-order dispatch, no backfilling."""

    name = "FCFS"
    scheme_id = "fcfs"

    def on_arrival(self, job: Job) -> None:
        self._dispatch_in_order()

    def on_finish(self, job: Job) -> None:
        self._dispatch_in_order()

    def _dispatch_in_order(self) -> None:
        assert self.driver is not None
        # Start queue-head jobs while they fit; stop at the first that
        # does not -- that is the whole policy.
        for job in self.driver.queued_jobs():
            if not self.driver.can_start(job):
                break
            self.driver.start_job(job)

"""Aggressive (EASY) backfilling -- the paper's **NS** baseline.

Section II-A-2: jobs are kept in arrival order; the first job that
cannot start receives the *only* reservation, at the earliest time
enough processors are forecast free.  Any later queued job may jump
ahead provided it does not delay that reserved head job, i.e. it either

* terminates (by its estimate) before the head's reservation starts, or
* uses only processors the head will not need at its start time.

Both conditions are captured uniformly by planning against an
:class:`~repro.schedulers.profiles.AvailabilityProfile` that contains
the running jobs *and* the head's reservation: a queued job may backfill
iff the profile admits it starting now for its full estimated duration.

With accurate estimates this is exactly EASY; with over-estimates, jobs
finish early and the next event re-plans, recovering the released time
(the paper's section V setting).
"""

from __future__ import annotations

from repro.schedulers.policy import (
    FifoOrder,
    HeadReservation,
    NoPreemption,
    PolicyKernel,
    ProfileBackfill,
    SchedulerSpec,
)


class EasyBackfillScheduler(PolicyKernel):
    """EASY/aggressive backfilling over user estimates.

    The composition: FIFO queue, single head reservation (claimed and
    announced), profile-admission backfill, no preemption.
    """

    scheme_id = "easy"

    def __init__(self) -> None:
        super().__init__(
            SchedulerSpec(
                scheme_id="easy",
                display_name="EASY",
                queue=FifoOrder(),
                reservation=HeadReservation(),
                backfill=ProfileBackfill(),
                preemption=NoPreemption(),
            )
        )

    def schedule_pass(self) -> None:
        """One planning pass: greedy FIFO starts, then backfill."""
        self.backfill_pass()

"""Aggressive (EASY) backfilling -- the paper's **NS** baseline.

Section II-A-2: jobs are kept in arrival order; the first job that
cannot start receives the *only* reservation, at the earliest time
enough processors are forecast free.  Any later queued job may jump
ahead provided it does not delay that reserved head job, i.e. it either

* terminates (by its estimate) before the head's reservation starts, or
* uses only processors the head will not need at its start time.

Both conditions are captured uniformly by planning against an
:class:`~repro.schedulers.profiles.AvailabilityProfile` that contains
the running jobs *and* the head's reservation: a queued job may backfill
iff the profile admits it starting now for its full estimated duration.

With accurate estimates this is exactly EASY; with over-estimates, jobs
finish early and the next event re-plans, recovering the released time
(the paper's section V setting).
"""

from __future__ import annotations

from repro.schedulers.base import Scheduler
from repro.schedulers.profiles import AvailabilityProfile
from repro.workload.job import Job


class EasyBackfillScheduler(Scheduler):
    """EASY/aggressive backfilling over user estimates."""

    name = "EASY"
    scheme_id = "easy"

    def on_arrival(self, job: Job) -> None:
        self.schedule_pass()

    def on_finish(self, job: Job) -> None:
        self.schedule_pass()

    # ------------------------------------------------------------------
    def schedule_pass(self) -> None:
        """One planning pass: greedy FIFO starts, then backfill."""
        driver = self.driver
        assert driver is not None

        # Phase 1: start jobs strictly in queue order while they fit.
        queue = driver.queued_jobs()
        started = True
        while started:
            started = False
            queue = driver.queued_jobs()
            if queue and driver.can_start(queue[0]):
                driver.start_job(queue[0])
                started = True

        queue = driver.queued_jobs()
        if not queue:
            return

        # Phase 2: the head cannot start; give it the single reservation.
        head = queue[0]
        profile = AvailabilityProfile(driver.cluster.n_procs, driver.now)
        for running in driver.running_jobs():
            profile.claim_running(len(running.allocated_procs), running.expected_end)
        head_anchor = profile.find_anchor(head.remaining_estimate(), head.procs)
        profile.claim(head_anchor, head.remaining_estimate(), head.procs)
        if self.tracer is not None:
            self.tracer.decision(
                driver.now,
                "reservation",
                head.job_id,
                anchor=head_anchor,
                requested=head.procs,
                duration=head.remaining_estimate(),
            )

        # Phase 3: backfill later jobs that start now without touching
        # the head's reservation.  Each start updates both the real
        # cluster and the planning profile.
        for job in queue[1:]:
            if not driver.can_start(job):
                continue
            duration = job.remaining_estimate()
            if profile.fits(driver.now, duration, job.procs):
                driver.start_job(job, via="backfill")
                profile.claim(driver.now, duration, job.procs)

"""The composable policy kernel.

The paper's scheme family is a cross product: NS (EASY), conservative,
SS, TSS and IS differ only in which **queue ordering**, **reservation
discipline**, **backfill rule** and **preemption rule** they combine.
This module expresses each axis as a narrow policy class and composes
them under one dispatch loop:

* :class:`QueuePolicy` -- how waiting jobs are ordered for service
  (FIFO for the backfilling family, descending suspension priority for
  the SS family, descending instantaneous priority for IS).
* :class:`ReservationPolicy` -- which start-time guarantees exist and
  who owns the :class:`~repro.schedulers.profiles.AvailabilityProfile`
  lifecycle (none / single head reservation / per-job guarantees with
  compression).
* :class:`BackfillPolicy` -- how jobs behind the head are admitted
  (profile admission, relaxed what-if admission, speculative test runs,
  or greedy free-processor starts inside the sweep).
* :class:`PreemptionPolicy` -- whether and how running jobs are
  suspended (never / the SS sweep engine / IS timeslices).  The sweep
  engine is the former ``SelectiveSuspensionScheduler`` body, lifted
  here and *parameterised*: TSS's category limits and the hybrids'
  reservation guard are constructor arguments, not subclass overrides.

:class:`PolicyKernel` is the single :class:`Scheduler` that drives any
composition from the :mod:`repro.sim.driver` hooks; a composition is a
declarative :class:`SchedulerSpec`.  Every legacy scheme class
(``SelectiveSuspensionScheduler``, ``EasyBackfillScheduler``, ...) is
now a thin spec-building subclass, and the specs serialise through
:meth:`SchedulerSpec.config` into exactly the ``config()`` mappings the
registry, the result cache and the golden traces already pin --
the refactor is byte-identical on all eight committed golden traces
(``tests/test_kernel_equivalence.py``).

The decomposition also unlocks hybrids the sealed classes could not
express (see :mod:`repro.schedulers.hybrids`): ``ss-easy`` gives the
queue head an EASY-style reservation that the preemption sweep must
honor, and ``tss-conservative`` combines per-job guarantees with
category-limited preemption -- the paper's open question of selective
preemption *under start-time guarantees*.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import insort
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Protocol

from repro.cluster.bitset import iter_bits, mask_from_ids, take_lowest
from repro.core.priorities import (
    PreemptionCriteria,
    instantaneous_priority,
    suspension_priority,
)
from repro.obs.events import victim_verdict
from repro.schedulers.base import Scheduler
from repro.schedulers.profiles import AvailabilityProfile

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.driver import SchedulingSimulation
    from repro.workload.job import Job

#: Tie-break order when several rejection causes block one decision.
_CAUSE_PREFERENCE = {
    "sf_threshold": 0,
    "category_limit": 1,
    "width_rule": 2,
    "protected": 3,
    "priority": 4,
    "reservation_guard": 5,
}


def primary_denial_cause(verdicts: list[dict[str, Any]] | None) -> str:
    """The headline ``cause`` of a denied preemption decision.

    The most frequent non-``candidate`` verdict wins (ties broken by a
    fixed preference order); an empty or all-candidate list means the
    eligible victims simply did not cover the request --
    ``"insufficient"``.
    """
    counts: dict[str, int] = {}
    for v in verdicts or ():
        cause = v["verdict"]
        if cause != "candidate":
            counts[cause] = counts.get(cause, 0) + 1
    if not counts:
        return "insufficient"
    return min(counts, key=lambda c: (-counts[c], _CAUSE_PREFERENCE.get(c, 99)))


class PreemptionLimits(Protocol):
    """What the sweep engine needs from a per-victim protection table.

    :class:`repro.core.tss.CategoryLimits` is the canonical
    implementation; the engine only depends on this structural shape so
    the policy layer stays import-free of the TSS module.
    """

    def limit_for(self, job: Job) -> float: ...

    def observe(self, job: Job) -> None: ...

    def to_config(self) -> dict[str, object]: ...


# ======================================================================
# policy protocol roots
# ======================================================================
class Policy(ABC):
    """Shared base for all four policy axes.

    A policy is bound to exactly one :class:`PolicyKernel` (policies are
    stateful and single-use, like the schedulers they compose into) and
    reaches the simulation through it.
    """

    def __init__(self) -> None:
        self._kernel: PolicyKernel | None = None

    def bind_kernel(self, kernel: "PolicyKernel") -> None:
        self._kernel = kernel

    @property
    def kernel(self) -> "PolicyKernel":
        assert self._kernel is not None, "policy used before kernel binding"
        return self._kernel

    @property
    def driver(self) -> "SchedulingSimulation":
        driver = self.kernel.driver
        assert driver is not None, "kernel used before driver binding"
        return driver

    def on_begin(self) -> None:
        """Reset run-scoped state; called once at simulation start."""

    def config_fragment(self) -> dict[str, object]:
        """This policy's knobs, merged into :meth:`SchedulerSpec.config`.

        Every behavioural constructor knob must surface here (or be
        fully determined by the composition's ``scheme_id``) so cache
        fingerprints compose correctly -- enforced by RPR004.
        """
        return {}


class QueuePolicy(Policy):
    """Ordering of waiting jobs for one service pass."""

    @abstractmethod
    def priority(self, job: Job, now: float) -> float:
        """The job's service priority at *now* (higher serves earlier)."""

    def order(
        self,
        queued: list[Job],
        now: float,
        priorities: dict[int, float] | None = None,
    ) -> list[Job]:
        """Waiting jobs in service order (priority desc, then FIFO).

        *priorities* lets sweep engines pass their once-per-sweep
        snapshot instead of recomputing the priority inside the sort.
        """
        if priorities is None:
            return sorted(
                queued,
                key=lambda j: (-self.priority(j, now), j.submit_time, j.job_id),
            )
        snapshot = priorities
        return sorted(
            queued,
            key=lambda j: (-snapshot[j.job_id], j.submit_time, j.job_id),
        )


class ReservationPolicy(Policy):
    """Start-time-guarantee discipline; owns the planning profiles."""

    #: True when the policy serves arrivals itself (per-job guarantees
    #: anchor each arrival individually instead of running a pass)
    handles_arrival = False
    #: True when the policy serves completions itself (compression)
    handles_finish = False
    #: True when a preemption sweep must honor this policy's guarantee
    #: (consulted by :class:`SweepPreemption`)
    guards_preemption = False

    def on_arrival(self, job: Job) -> None:
        """Serve one arrival (only called when :attr:`handles_arrival`)."""
        raise NotImplementedError

    def on_finish(self, job: Job) -> None:
        """Serve one completion (only called when :attr:`handles_finish`)."""
        raise NotImplementedError

    def plan_head(self, head: Job) -> "HeadPlan | None":
        """Plan the queue head's reservation for a backfill pass.

        ``None`` means no reservation exists and the pass ends after its
        FIFO phase (FCFS, and the per-job discipline which never runs a
        backfill pass at all).
        """
        return None

    def sweep_guard(self, head: Job) -> float:
        """The head's guaranteed start, for a preemption sweep to honor
        (only called when :attr:`guards_preemption`)."""
        raise NotImplementedError


@dataclass
class HeadPlan:
    """One backfill pass's planning state, produced by ``plan_head``."""

    #: availability profile over running jobs (and the head's claim,
    #: when the reservation discipline claims it)
    profile: AvailabilityProfile
    #: the reserved queue head
    head: Job
    #: earliest forecast start of the head
    anchor: float
    #: the head's remaining estimate used for the anchor
    duration: float


class BackfillPolicy(Policy):
    """Admission of jobs behind the reserved head."""

    #: True when a killed speculative run must trigger a new pass
    resched_on_kill = False

    @abstractmethod
    def fill(self, rest: list[Job], plan: HeadPlan) -> None:
        """Admit whatever fits behind the head without breaking *plan*."""


class PreemptionPolicy(Policy):
    """Whether and how running jobs are suspended."""

    #: the kernel's periodic-tick interval (``None`` = no timer)
    timer_interval: float | None = None

    def on_arrival(self, job: Job) -> None:
        """Arrival-time action before the service pass (IS grants the
        arriving job its immediate timeslice here)."""

    def observe_finish(self, job: Job) -> None:
        """Fold one completion into policy state (TSS online limits,
        IS protection windows) before the completion's service pass."""

    def service_pass(self, allow_suspension: bool) -> None:
        """Serve the queue once.  The default is the non-preemptive
        backfill pass; sweep engines override with their own walk."""
        self.kernel.backfill_pass()


# ======================================================================
# queue orderings
# ======================================================================
class FifoOrder(QueuePolicy):
    """Strict arrival order (the backfilling family)."""

    def priority(self, job: Job, now: float) -> float:
        return 0.0

    def order(
        self,
        queued: list[Job],
        now: float,
        priorities: dict[int, float] | None = None,
    ) -> list[Job]:
        return list(queued)


class SuspensionPriorityOrder(QueuePolicy):
    """Descending xfactor -- the SS/TSS suspension priority (section IV)."""

    def priority(self, job: Job, now: float) -> float:
        return suspension_priority(job, now)


class InstantaneousPriorityOrder(QueuePolicy):
    """Descending instantaneous xfactor -- the IS victim/service order."""

    def priority(self, job: Job, now: float) -> float:
        return instantaneous_priority(job, now)


# ======================================================================
# reservation disciplines
# ======================================================================
class NoReservations(ReservationPolicy):
    """No start-time guarantees at all (FCFS, SS, TSS, IS)."""


class HeadReservation(ReservationPolicy):
    """The single EASY-style reservation for the first blocked job.

    Parameters
    ----------
    claim_head:
        Claim the head's slot in the planning profile (EASY,
        speculative).  Relaxed backfilling plans the head's anchor
        *without* claiming it -- the anchor is re-derived per candidate.
    announce:
        Emit the ``reservation`` decision record.  Relaxed backfilling
        treats the anchor as an internal allowance and stays silent.

    Both knobs are fully determined by the composing ``scheme_id``
    (they are what distinguishes EASY from relaxed), so they add no
    :meth:`config_fragment` keys.
    """

    guards_preemption = True

    def __init__(self, claim_head: bool = True, announce: bool = True) -> None:
        super().__init__()
        self.claim_head = claim_head
        self.announce = announce

    def config_fragment(self) -> dict[str, object]:
        # scheme-id-determined knobs: nothing to serialise (see class doc)
        return {}

    def _running_profile(self) -> AvailabilityProfile:
        driver = self.driver
        profile = AvailabilityProfile(driver.cluster.n_procs, driver.now)
        for running in driver.running_jobs():
            profile.claim_running(len(running.allocated_procs), running.expected_end)
        return profile

    def plan_head(self, head: Job) -> HeadPlan:
        driver = self.driver
        profile = self._running_profile()
        duration = head.remaining_estimate()
        anchor = profile.find_anchor(duration, head.procs)
        if self.claim_head:
            profile.claim(anchor, duration, head.procs)
        if self.announce and driver.tracer is not None:
            driver.tracer.decision(
                driver.now,
                "reservation",
                head.job_id,
                anchor=anchor,
                requested=head.procs,
                duration=duration,
            )
        return HeadPlan(profile=profile, head=head, anchor=anchor, duration=duration)

    def sweep_guard(self, head: Job) -> float:
        """The head's anchor for a preemption sweep to honor.

        Planned against running jobs only (suspended jobs hold no
        processors, so their pinned sets are counted as free -- the
        guarantee is an estimate re-derived every sweep, exactly as
        EASY re-plans on every pass).
        """
        driver = self.driver
        profile = self._running_profile()
        duration = head.remaining_estimate()
        anchor = profile.find_anchor(duration, head.procs)
        if self.announce and driver.tracer is not None:
            driver.tracer.decision(
                driver.now,
                "reservation",
                head.job_id,
                anchor=anchor,
                requested=head.procs,
                duration=duration,
            )
        return anchor


class PerJobReservations(ReservationPolicy):
    """Conservative backfilling: every job gets a guarantee; early
    completions compress the schedule (section II-A-1).

    This is the former ``ConservativeBackfillScheduler`` body.  As a
    policy it also composes with a preemption sweep
    (``tss-conservative``): jobs the sweep starts or suspends simply
    drop out of / re-enter the anchor table at the next compression --
    ``_profile_with_reservations`` already filters anchors against the
    live queue, so stale entries self-correct.
    """

    handles_arrival = True
    handles_finish = True

    def __init__(self) -> None:
        super().__init__()
        #: job_id -> guaranteed start time, for every queued job
        self._anchors: dict[int, float] = {}

    def on_begin(self) -> None:
        self._anchors.clear()

    def on_arrival(self, job: Job) -> None:
        """Anchor the new job behind all existing reservations."""
        driver = self.driver
        profile = self._profile_with_reservations(exclude=job.job_id)
        anchor = profile.find_anchor(job.remaining_estimate(), job.procs)
        self._anchors[job.job_id] = anchor
        if anchor <= driver.now and driver.can_start(job):
            del self._anchors[job.job_id]
            driver.start_job(job)
        elif driver.tracer is not None:
            driver.tracer.decision(
                driver.now,
                "reservation",
                job.job_id,
                anchor=anchor,
                requested=job.procs,
                duration=job.remaining_estimate(),
            )

    def on_finish(self, job: Job) -> None:
        """Compress: re-anchor every queued job in guarantee order."""
        driver = self.driver
        tracer = driver.tracer
        old_anchors = dict(self._anchors) if tracer is not None else {}
        queue = sorted(
            driver.queued_jobs(),
            key=lambda j: (self._anchors.get(j.job_id, float("inf")), j.job_id),
        )
        # Rebuild from running jobs only, then re-admit reservations in
        # guarantee order; each job's new anchor is <= its old one
        # because the profile it sees is a subset of the old claims.
        profile = self._running_profile()
        self._anchors.clear()
        for queued in queue:
            duration = queued.remaining_estimate()
            anchor = profile.find_anchor(duration, queued.procs)
            if anchor <= driver.now and driver.can_start(queued):
                driver.start_job(queued)
                profile.claim(driver.now, duration, queued.procs)
            else:
                self._anchors[queued.job_id] = anchor
                profile.claim(anchor, duration, queued.procs)
                # compression moved the guarantee: record the new anchor
                # (unchanged reservations are not re-emitted)
                if tracer is not None and old_anchors.get(queued.job_id) != anchor:
                    tracer.decision(
                        driver.now,
                        "reservation",
                        queued.job_id,
                        anchor=anchor,
                        requested=queued.procs,
                        duration=duration,
                        compressed_from=old_anchors.get(queued.job_id),
                    )

    # ------------------------------------------------------------------
    def _running_profile(self) -> AvailabilityProfile:
        driver = self.driver
        profile = AvailabilityProfile(driver.cluster.n_procs, driver.now)
        for running in driver.running_jobs():
            profile.claim_running(len(running.allocated_procs), running.expected_end)
        return profile

    def _profile_with_reservations(self, exclude: int) -> AvailabilityProfile:
        driver = self.driver
        profile = self._running_profile()
        by_anchor = sorted(
            (anchor, jid) for jid, anchor in self._anchors.items() if jid != exclude
        )
        queued_by_id = {j.job_id: j for j in driver.queued_jobs()}
        for anchor, jid in by_anchor:
            queued = queued_by_id.get(jid)
            if queued is None:  # reservation for a job that just started
                continue
            earliest = max(anchor, driver.now)
            # Under pure conservative discipline the stored anchor always
            # fits (claims were made against this very profile), so
            # find_anchor returns `earliest` unchanged.  Composed with a
            # preemption sweep the machine can change between
            # compressions, leaving anchors that no longer fit; pushing
            # the claim to the next feasible slot keeps the profile
            # consistent until the next compression re-anchors properly.
            duration = queued.remaining_estimate()
            start = profile.find_anchor(duration, queued.procs, earliest=earliest)
            if start != earliest:
                self._anchors[jid] = start
            profile.claim(start, duration, queued.procs)
        return profile

    def guaranteed_start(self, job: Job) -> float | None:
        """The job's current start-time guarantee (None once running)."""
        return self._anchors.get(job.job_id)


# ======================================================================
# backfill rules
# ======================================================================
class NoBackfill(BackfillPolicy):
    """Nothing jumps the queue (FCFS; also the per-job discipline,
    whose anchor-due starts are its own form of admission)."""

    def fill(self, rest: list[Job], plan: HeadPlan) -> None:
        return


class GreedyBackfill(BackfillPolicy):
    """Greedy free-processor starts in queue-priority order.

    Declarative marker for the sweep compositions: the sweep engine
    (:class:`SweepPreemption` / :class:`TimeslicePreemption`) performs
    the greedy admission itself inside its walk -- starting any job
    that fits free processors, highest priority first -- because the
    same walk interleaves starts with suspensions and resumes.
    """

    def fill(self, rest: list[Job], plan: HeadPlan) -> None:  # pragma: no cover
        return


class ProfileBackfill(BackfillPolicy):
    """EASY admission: a job backfills iff the profile (running jobs +
    the head's claimed reservation) admits it starting now."""

    def fill(self, rest: list[Job], plan: HeadPlan) -> None:
        driver = self.driver
        profile = plan.profile
        for job in rest:
            if not driver.can_start(job):
                continue
            duration = job.remaining_estimate()
            if profile.fits(driver.now, duration, job.procs):
                driver.start_job(job, via="backfill")
                profile.claim(driver.now, duration, job.procs)


class RelaxedBackfill(BackfillPolicy):
    """Bounded head-delay admission (Ward, Mahood & West).

    Each candidate is evaluated on a cloned profile: claim it now,
    re-anchor the head, accept iff the what-if anchor stays within
    ``anchor + relaxation x head estimate``.
    """

    def __init__(self, relaxation: float = 0.5) -> None:
        super().__init__()
        if relaxation < 0:
            raise ValueError("relaxation must be nonnegative")
        self.relaxation = float(relaxation)

    def config_fragment(self) -> dict[str, object]:
        return {"relaxation": self.relaxation}

    def fill(self, rest: list[Job], plan: HeadPlan) -> None:
        driver = self.driver
        profile = plan.profile
        head = plan.head
        allowance = plan.anchor + self.relaxation * head.remaining_estimate()
        for job in rest:
            if not driver.can_start(job):
                continue
            duration = job.remaining_estimate()
            if not profile.fits(driver.now, duration, job.procs):
                continue
            trial = profile.clone()
            trial.claim(driver.now, duration, job.procs)
            new_anchor = trial.find_anchor(plan.duration, head.procs)
            if new_anchor <= allowance:
                driver.start_job(job)
                profile.claim(driver.now, duration, job.procs)


class SpeculativeBackfill(BackfillPolicy):
    """EASY admission plus bounded test runs into pre-reservation holes
    (Perkovic & Keleher); see :mod:`repro.schedulers.speculative`."""

    resched_on_kill = True

    def __init__(self, speculation_window: float = 900.0, max_kills: int = 2) -> None:
        super().__init__()
        if speculation_window <= 0:
            raise ValueError("speculation_window must be positive")
        if max_kills < 0:
            raise ValueError("max_kills must be nonnegative")
        self.speculation_window = float(speculation_window)
        self.max_kills = int(max_kills)

    def config_fragment(self) -> dict[str, object]:
        return {
            "speculation_window": self.speculation_window,
            "max_kills": self.max_kills,
        }

    def fill(self, rest: list[Job], plan: HeadPlan) -> None:
        driver = self.driver
        profile = plan.profile
        for job in rest:
            if not driver.can_start(job):
                continue
            duration = job.remaining_estimate()
            if profile.fits(driver.now, duration, job.procs):
                driver.start_job(job, via="backfill")
                profile.claim(driver.now, duration, job.procs)
                continue
            self._try_speculate(job, profile)

    def _try_speculate(self, job: Job, profile: AvailabilityProfile) -> bool:
        """Test-run *job* in the hole before the profile next tightens."""
        driver = self.driver
        if job.kill_count >= self.max_kills:
            return False
        if job.needs_specific_procs:
            return False  # never gamble away a suspension checkpoint
        if job.remaining_estimate() <= self.speculation_window:
            return False  # not a gamble; conventional backfill territory
        # hole length on job.procs processors starting now: scan the
        # profile breakpoints for the first time free drops below need
        hole_end = float("inf")
        for t, free in profile.breakpoints():
            if t <= driver.now:
                if free < job.procs:
                    return False  # no room even now (reservation at now)
                continue
            if free < job.procs:
                hole_end = t
                break
        hole = hole_end - driver.now
        if hole < self.speculation_window:
            return False  # too short for a meaningful test run
        deadline = driver.now + self.speculation_window
        if driver.tracer is not None:
            driver.tracer.decision(
                driver.now,
                "speculate",
                job.job_id,
                deadline=deadline,
                window=self.speculation_window,
                hole=hole if hole != float("inf") else None,
                requested=job.procs,
                kills_so_far=job.kill_count,
            )
        driver.start_speculative(job, deadline=deadline)
        profile.claim(driver.now, self.speculation_window, job.procs)
        return True


# ======================================================================
# preemption rules
# ======================================================================
class NoPreemption(PreemptionPolicy):
    """Running jobs are never disturbed; service is the backfill pass."""


class SweepPreemption(PreemptionPolicy):
    """The SS preemption sweep engine (section IV), parameterised.

    This is the former ``SelectiveSuspensionScheduler`` dispatch body:
    the periodic walk over the idle queue in descending suspension
    priority that assembles processors for jobs that do not fit by
    suspending running victims -- SF threshold, half-width rule for
    fresh starts, local re-entry (``suspend_jobs_2``), widest-first
    victim choice (``suspend_jobs_1``).  What used to be subclass
    overrides are now parameters:

    * *limits* -- a :class:`PreemptionLimits` table (TSS's category
      limits); ``None`` means no victim is ever protected (plain SS).
    * the **reservation guard** -- when the composition's reservation
      policy sets ``guards_preemption``, each suspension sweep first
      plans the queue head's anchor and then refuses to suspend victims
      for any other job that would still be running at that anchor
      (denial cause ``reservation_guard``).  This is how ``ss-easy``
      honors an EASY head reservation inside the SS sweep.

    All the incremental fast paths of the optimised kernel are kept:
    the once-per-sweep priority snapshot, the insort-maintained victim
    list with its lazy dead set, the incrementally-updated pinned mask,
    and the empty-queue / no-free-processor early exits (the bench gate
    pins their effect; see ``benchmarks/bench_micro.py``).
    """

    def __init__(
        self,
        criteria: PreemptionCriteria,
        preemption_interval: float = 60.0,
        limits: PreemptionLimits | None = None,
    ) -> None:
        super().__init__()
        if preemption_interval <= 0:
            raise ValueError("preemption interval must be positive")
        self.criteria = criteria
        self.timer_interval = float(preemption_interval)
        self.limits = limits
        # -- sweep-scoped scratch state ---------------------------------
        # Valid only while sweep() is on the stack; see sweep() for the
        # invalidation protocol.  Buffers are instance-level so repeated
        # sweeps reuse the same allocations instead of rebuilding them
        # per idle job (the old quadratic term in congested queues).
        self._sweep_active = False
        self._sweep_suspension = False
        #: mask of processors some suspended job must reacquire; kept
        #: current across mid-sweep suspends (|=) and resumes (&= ~)
        self._sweep_pinned = 0
        #: running victims as (priority, job_id, Job), ascending -- built
        #: once per suspension sweep, extended by insort on mid-sweep
        #: starts, lazily invalidated through _sweep_dead on suspends
        self._sweep_victims: list[tuple[float, int, Job]] = []
        #: job ids suspended mid-sweep (membership tests only)
        self._sweep_dead: set[int] = set()
        self._scratch_candidates: list[Job] = []
        self._scratch_chosen: list[Job] = []
        #: reservation guard, set per suspension sweep when the
        #: composition's reservation policy guards preemption
        self._guard_head: int | None = None
        self._guard_anchor: float | None = None

    def config_fragment(self) -> dict[str, object]:
        cfg: dict[str, object] = {
            "suspension_factor": self.criteria.suspension_factor,
            "preemption_interval": self.timer_interval,
            "width_rule": self.criteria.width_rule,
        }
        if self.limits is not None:
            cfg["limits"] = self.limits.to_config()
        return cfg

    def observe_finish(self, job: Job) -> None:
        if self.limits is not None:
            self.limits.observe(job)

    def service_pass(self, allow_suspension: bool) -> None:
        self.sweep(allow_suspension)

    # ------------------------------------------------------------------
    # victim protection (the former TSS override points)
    # ------------------------------------------------------------------
    def victim_preemptable(self, victim: Job, priority: float) -> bool:
        """Whether policy allows suspending *victim* at all.

        With no *limits* table nothing is ever protected (plain SS);
        with one, the victim is protected once its xfactor (*priority*,
        the sweep-precomputed value) exceeds its category limit.
        """
        if self.limits is None:
            return True
        return priority <= self.limits.limit_for(victim)

    def victim_protection_limit(self, victim: Job) -> float | None:
        """The xfactor ceiling protecting *victim*, for decision records.

        ``None`` without a limits table (no protection exists), else the
        victim's category limit so ``category_limit`` verdicts carry the
        threshold that was hit.  Trace-only -- never consulted on the
        scheduling path.
        """
        if self.limits is None:
            return None
        limit = self.limits.limit_for(victim)
        return None if limit == float("inf") else limit

    # ------------------------------------------------------------------
    # the sweep
    # ------------------------------------------------------------------
    def sweep(self, allow_suspension: bool) -> None:
        """One pass over the idle queue in descending queue priority.

        With ``allow_suspension=False`` this is plain greedy backfilling
        onto free processors (what arrivals and completions trigger);
        with ``True`` it is the full periodic preemption routine.

        Priorities are computed **once per sweep** into ``priorities``
        (job_id -> xfactor at *now*) and threaded through
        :meth:`_try_start` / :meth:`_try_resume`.  This is safe because
        the xfactor is an exact integral over past state intervals: a
        job suspended or started *at* ``now`` has the same xfactor
        before and after the transition, so mid-sweep state changes
        cannot invalidate the snapshot.  The naive form recomputed
        the priority O(queue x running) times per sweep inside sort
        keys and per-victim filters -- the dominant cost of congested
        simulations (see ``benchmarks/bench_micro.py``).

        Two more sweep-scoped structures extend the same idea to the
        remaining quadratic terms.  The **victim list** is sorted once
        per suspension sweep (ascending ``(priority, job_id)``, the
        per-victim walk order) instead of re-sorting ``running_jobs()``
        inside every :meth:`_try_start`; jobs started mid-sweep are
        insort-ed in, jobs suspended mid-sweep are lazily skipped via a
        dead set -- both preserve the exact order the per-call sort
        produced, because ``(priority, job_id)`` is a total order over
        an identical membership.  The **pinned mask** (processors
        suspended jobs must reacquire) is snapshotted at sweep entry and
        updated incrementally: a suspend pins the victim's processors,
        a resume unpins the job's -- the only two events that can change
        it mid-sweep -- replacing the per-:meth:`_place` rescan of the
        whole queue.
        """
        driver = self.driver
        if not allow_suspension and not driver.cluster.free_mask:
            # Decision-equivalent fast path: without suspension, every
            # start (can_allocate) and resume (can_allocate_mask on a
            # nonempty set) needs at least one free processor, and a
            # no-suspension sweep has no other observable effect -- the
            # full walk would deny every job and emit nothing.
            return
        queued = driver.queued_jobs()
        if not queued:
            # Nothing to start or resume: the idle walk is empty and a
            # sweep has no other observable effect.  Most timer sweeps
            # on moderately loaded traces hit this, so skipping the
            # victim-list build and priority snapshot here is the
            # cheapest win in the whole kernel.
            return
        now = driver.now
        queue_policy = self.kernel.queue
        prio = queue_policy.priority  # bound once: hottest call in the sweep
        priorities = {j.job_id: prio(j, now) for j in queued}
        victims = self._sweep_victims
        victims.clear()
        self._sweep_dead.clear()
        if allow_suspension:
            # victims come from the running set; a job started earlier in
            # this sweep was queued at sweep start and is already present
            for r in driver.running_jobs():
                p = prio(r, now)
                priorities[r.job_id] = p
                victims.append((p, r.job_id, r))
            victims.sort()
        pinned = 0
        for j in queued:
            pinned |= j.suspended_mask  # 0 unless awaiting local resume
        self._sweep_pinned = pinned
        self._sweep_suspension = allow_suspension
        self._guard_head = None
        self._guard_anchor = None
        reservation = self.kernel.reservation
        if allow_suspension and reservation.guards_preemption:
            # plan (and announce) the head's guarantee once per sweep;
            # _try_start/_try_resume refuse suspensions for any other
            # job that would overrun it
            head = queued[0]
            self._guard_head = head.job_id
            self._guard_anchor = reservation.sweep_guard(head)
        self._sweep_active = True
        try:
            idle = queue_policy.order(queued, now, priorities)
            for job in idle:
                if not allow_suspension and not driver.cluster.free_mask:
                    break  # same argument as above, mid-sweep
                if job.needs_specific_procs:
                    self._try_resume(job, allow_suspension, priorities)
                else:
                    self._try_start(job, allow_suspension, priorities)
        finally:
            self._sweep_active = False
            victims.clear()
            self._sweep_dead.clear()
            self._guard_head = None
            self._guard_anchor = None

    # ------------------------------------------------------------------
    # sweep-scoped bookkeeping
    # ------------------------------------------------------------------
    def _note_started(self, job: Job, priorities: dict[int, float]) -> None:
        """A queued job entered running mid-sweep: it is now a potential
        victim for later idle jobs, exactly as the old per-call re-sort
        would have picked it up."""
        if self._sweep_active and self._sweep_suspension:
            insort(self._sweep_victims, (priorities[job.job_id], job.job_id, job))

    def _note_resumed(
        self, job: Job, needed_mask: int, priorities: dict[int, float]
    ) -> None:
        """A suspended job resumed mid-sweep: its processors unpin."""
        if self._sweep_active:
            self._sweep_pinned &= ~needed_mask
            self._note_started(job, priorities)

    def _note_suspended(self, victim: Job, released_mask: int) -> None:
        """A running job was suspended mid-sweep: its processors pin and
        it leaves the victim list (lazily, via the dead set)."""
        if self._sweep_active:
            self._sweep_pinned |= released_mask
            self._sweep_dead.add(victim.job_id)

    # ------------------------------------------------------------------
    # the reservation guard (hybrid compositions only)
    # ------------------------------------------------------------------
    def _guard_blocks(self, job: Job, now: float) -> bool:
        """Whether the head's guaranteed start forbids preempting for
        *job*: any non-head job still running at the anchor would
        squat on processors the guarantee promised the head."""
        anchor = self._guard_anchor
        if anchor is None or job.job_id == self._guard_head:
            return False
        return now + job.remaining_estimate() > anchor

    # ------------------------------------------------------------------
    # fresh starts (pseudocode path suspend_jobs_1)
    # ------------------------------------------------------------------
    def _pinned_mask(self) -> int:
        """Mask of processors some suspended job must reacquire to resume.

        Recomputed from the queue; during a sweep the maintained
        ``_sweep_pinned`` snapshot is used instead (same value, O(1)).
        """
        pinned = 0
        for j in self.driver.queued_jobs():
            pinned |= j.suspended_mask  # 0 unless awaiting local resume
        return pinned

    def _pinned_procs(self) -> set[int]:
        """Processors some suspended job must reacquire to resume."""
        return set(iter_bits(self._pinned_mask()))

    def _place(self, job: Job, preferred: frozenset[int] = frozenset()) -> frozenset[int]:
        """Choose processors for a fresh start (id-set facade over
        :meth:`_place_mask`, kept for tests and scheme classes)."""
        return frozenset(iter_bits(self._place_mask(job, mask_from_ids(preferred))))

    def _place_mask(self, job: Job, preferred_mask: int = 0) -> int:
        """Choose processors for a fresh start.

        Priority order: (1) *preferred_mask* (the just-suspended victims'
        processors, per the pseudocode's ``available_processor_set`` --
        so a victim unpins the moment its preemptor finishes), (2) free
        processors no suspended job is waiting for, (3) the rest.
        Skipping pinned processors where possible keeps suspended jobs'
        resume sets clear, which is what lets SS hold NS-level
        utilisation under load.

        Each tier takes the lowest free ids it can -- identical choices
        to the old ``sorted(tier)[:remaining]`` on id sets, because the
        lowest set bits of a mask *are* the sorted prefix.
        """
        free = self.driver.cluster.free_mask
        pinned = self._sweep_pinned if self._sweep_active else self._pinned_mask()
        chosen = take_lowest(preferred_mask & free, job.procs)
        n = chosen.bit_count()
        if n < job.procs:
            chosen |= take_lowest(free & ~chosen & ~pinned, job.procs - n)
            n = chosen.bit_count()
        if n < job.procs:
            chosen |= take_lowest(free & ~chosen, job.procs - n)
        return chosen

    def _try_start(
        self, job: Job, allow_suspension: bool, priorities: dict[int, float]
    ) -> bool:
        driver = self.driver
        if driver.cluster.can_allocate(job.procs):
            driver.start_job(job, procs=self._place(job))
            self._note_started(job, priorities)
            return True
        if not allow_suspension:
            return False

        now = driver.now
        tracer = driver.tracer
        idle_priority = priorities[job.job_id]
        free = driver.cluster.free_count
        if self._guard_anchor is not None and self._guard_blocks(job, now):
            if tracer is not None:
                tracer.decision(
                    now,
                    "preempt_denied",
                    job.job_id,
                    cause="reservation_guard",
                    xfactor=idle_priority,
                    sf=self.criteria.suspension_factor,
                    requested=job.procs,
                    free=free,
                    reentry=False,
                    anchor=self._guard_anchor,
                )
            return False
        candidates = self._scratch_candidates
        candidates.clear()
        #: per-victim verdicts, built only when tracing is on (decision
        #: records are the one place per-victim reasoning is preserved)
        verdicts: list[dict[str, Any]] | None = [] if tracer is not None else None
        covered = free  # free + candidate processors
        dead = self._sweep_dead
        # Per-victim checks bound outside the loop; without a limits
        # table victim_preemptable is unconditionally True, so the call
        # is skipped entirely (plain SS's densest inner loop).
        protected = self.limits is not None
        priority_allows = self.criteria.priority_allows
        width_allows = self.criteria.width_allows
        needed = job.procs
        # Victims in ascending priority: cheapest (least entitled) first.
        # The sweep-sorted list replaces the old per-call
        # ``sorted(driver.running_jobs(), key=(priority, job_id))``:
        # same membership (insort on mid-sweep starts, dead set on
        # mid-sweep suspends), same total order.
        for victim_priority, victim_id, victim in self._sweep_victims:
            if covered >= needed:
                break
            if victim_id in dead:
                continue
            width = len(victim.allocated_procs)
            if protected and not self.victim_preemptable(victim, victim_priority):
                if verdicts is not None:
                    verdicts.append(
                        victim_verdict(
                            victim.job_id,
                            victim_priority,
                            width,
                            "category_limit",
                            self.victim_protection_limit(victim),
                        )
                    )
                continue
            if not priority_allows(idle_priority, victim_priority):
                if verdicts is not None:
                    verdicts.append(
                        victim_verdict(
                            victim.job_id, victim_priority, width, "sf_threshold"
                        )
                    )
                continue
            if not width_allows(needed, width, reentry=False):
                if verdicts is not None:
                    verdicts.append(
                        victim_verdict(
                            victim.job_id, victim_priority, width, "width_rule"
                        )
                    )
                continue
            candidates.append(victim)
            if verdicts is not None:
                verdicts.append(
                    victim_verdict(victim.job_id, victim_priority, width, "candidate")
                )
            covered += width

        if covered < needed:
            if tracer is not None:
                tracer.decision(
                    now,
                    "preempt_denied",
                    job.job_id,
                    cause=primary_denial_cause(verdicts),
                    xfactor=idle_priority,
                    sf=self.criteria.suspension_factor,
                    requested=job.procs,
                    free=free,
                    reentry=False,
                    victims=verdicts,
                )
            return False

        # Suspend the widest candidates first, stopping once the request
        # is covered (the paper sorts the candidate set in descending
        # processor count so the fewest jobs are disturbed).  The chosen
        # set is fixed *before* any suspension -- free_count only changes
        # through our own suspends, so precomputing it is equivalent and
        # lets the decision record precede the suspend events it causes.
        chosen = self._scratch_chosen
        chosen.clear()
        covered_free = free
        for victim in sorted(
            candidates, key=lambda c: (-len(c.allocated_procs), c.job_id)
        ):
            if covered_free >= job.procs:
                break
            chosen.append(victim)
            covered_free += len(victim.allocated_procs)
        if tracer is not None:
            tracer.decision(
                now,
                "preempt",
                job.job_id,
                xfactor=idle_priority,
                sf=self.criteria.suspension_factor,
                requested=job.procs,
                free=free,
                reentry=False,
                suspended=[v.job_id for v in chosen],
                victims=verdicts,
            )
        freed_mask = 0
        for victim in chosen:
            released = driver.cluster.owner_mask(victim.job_id)
            freed_mask |= released
            driver.suspend_job(victim, preemptor=job.job_id)
            self._note_suspended(victim, released)
        # run the preemptor on its victims' processors (the pseudocode's
        # available_processor_set) so each victim's resume set clears
        # when the preemptor finishes
        placed = self._place_mask(job, preferred_mask=freed_mask)
        driver.start_job(job, procs=frozenset(iter_bits(placed)))
        self._note_started(job, priorities)
        return True

    # ------------------------------------------------------------------
    # re-entry of suspended jobs (pseudocode path suspend_jobs_2)
    # ------------------------------------------------------------------
    def _try_resume(
        self, job: Job, allow_suspension: bool, priorities: dict[int, float]
    ) -> bool:
        driver = self.driver
        needed_mask = job.suspended_mask  # cached at suspension time
        if driver.cluster.can_allocate_mask(needed_mask):
            driver.start_job(job)
            self._note_resumed(job, needed_mask, priorities)
            return True
        if not allow_suspension:
            return False

        now = driver.now
        tracer = driver.tracer
        idle_priority = priorities[job.job_id]
        if self._guard_anchor is not None and self._guard_blocks(job, now):
            if tracer is not None:
                tracer.decision(
                    now,
                    "preempt_denied",
                    job.job_id,
                    cause="reservation_guard",
                    xfactor=idle_priority,
                    sf=self.criteria.suspension_factor,
                    requested=job.procs,
                    reentry=True,
                    anchor=self._guard_anchor,
                )
            return False
        # sorted for determinism: both the verdict-list order and the
        # reported primary blocking cause must reproduce run to run
        # (traces are byte-identical for identical inputs --
        # docs/TRACING.md), so the order is pinned to job ids rather
        # than to whatever order the owners are discovered in.
        owners: list[Job] = []
        for owner_id in sorted(driver.cluster.owners_in_mask(needed_mask)):
            owner = driver.running_job(owner_id)
            if owner is None:  # pragma: no cover - defensive
                return False
            owners.append(owner)
        # Every squatter must clear the SF threshold (no width rule on
        # re-entry); one protected occupant blocks the whole resume.
        # When tracing, keep walking past the first blocker so the
        # decision record carries *every* owner's verdict (the extra
        # checks are pure -- no scheduling effect).
        verdicts: list[dict[str, Any]] | None = [] if tracer is not None else None
        blocking: str | None = None
        protected = self.limits is not None
        priority_allows = self.criteria.priority_allows
        for victim in owners:
            victim_priority = priorities[victim.job_id]
            if protected and not self.victim_preemptable(victim, victim_priority):
                cause = "category_limit"
            elif not priority_allows(idle_priority, victim_priority):
                cause = "sf_threshold"
            else:
                cause = None
            if verdicts is not None:
                verdicts.append(
                    victim_verdict(
                        victim.job_id,
                        victim_priority,
                        len(victim.allocated_procs),
                        cause or "candidate",
                        self.victim_protection_limit(victim)
                        if cause == "category_limit"
                        else None,
                    )
                )
            if cause is not None:
                blocking = blocking or cause
                if verdicts is None:
                    break  # untraced: first blocker settles it
        if blocking is not None:
            if tracer is not None:
                tracer.decision(
                    now,
                    "preempt_denied",
                    job.job_id,
                    cause=blocking,
                    xfactor=idle_priority,
                    sf=self.criteria.suspension_factor,
                    requested=job.procs,
                    reentry=True,
                    victims=verdicts,
                )
            return False
        if tracer is not None:
            tracer.decision(
                now,
                "preempt",
                job.job_id,
                xfactor=idle_priority,
                sf=self.criteria.suspension_factor,
                requested=job.procs,
                reentry=True,
                suspended=sorted(o.job_id for o in owners),
                victims=verdicts,
            )
        for victim in owners:  # already ascending by job id
            released = driver.cluster.owner_mask(victim.job_id)
            driver.suspend_job(victim, preemptor=job.job_id)
            self._note_suspended(victim, released)
        if driver.cluster.can_allocate_mask(needed_mask):
            driver.start_job(job)
            self._note_resumed(job, needed_mask, priorities)
            return True
        return False  # pragma: no cover - owners covered all of `needed`


class TimeslicePreemption(PreemptionPolicy):
    """The IS timeslice engine: serve-on-arrival with protection windows.

    The former ``ImmediateServiceScheduler`` body (Chiang & Vernon's
    "immediate service" comparator): every arriving job is offered an
    immediate timeslice, suspending the running jobs with the lowest
    queue priority (instantaneous xfactor in the IS composition) if
    needed; every dispatch opens a protection window of one *timeslice*
    past the job's pending suspend/restart overhead; and the periodic
    sweep re-serves waiting jobs against unprotected victims of
    *strictly lower* priority.  See :mod:`repro.core.immediate_service`
    for the policy rationale and the pinned-down unstated details.
    """

    def __init__(
        self,
        timeslice: float = 600.0,
        sweep_interval: float = 60.0,
    ) -> None:
        super().__init__()
        if timeslice <= 0:
            raise ValueError("timeslice must be positive")
        self.timeslice = float(timeslice)
        self.timer_interval = float(sweep_interval)
        #: job_id -> end of its current protection window
        self._protected_until: dict[int, float] = {}

    def config_fragment(self) -> dict[str, object]:
        return {"timeslice": self.timeslice, "sweep_interval": self.timer_interval}

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def on_begin(self) -> None:
        self._protected_until.clear()

    def on_arrival(self, job: Job) -> None:
        if not self._grant_immediate_service(job):
            # could not assemble processors even with preemption; the
            # job waits and competes in subsequent sweeps
            pass

    def observe_finish(self, job: Job) -> None:
        self._protected_until.pop(job.job_id, None)

    def service_pass(self, allow_suspension: bool) -> None:
        self._sweep()

    # ------------------------------------------------------------------
    # mechanics
    # ------------------------------------------------------------------
    def _priority(self, job: Job, now: float) -> float:
        return self.kernel.queue.priority(job, now)

    def _is_protected(self, job: Job) -> bool:
        return self.driver.now < self._protected_until.get(job.job_id, -float("inf"))

    def _start(self, job: Job) -> None:
        driver = self.driver
        # The 10-minute timeslice is ten minutes of *service*: a resumed
        # job first pays its suspend/restart overhead on the processors,
        # so protection must cover overhead + timeslice.  Without this,
        # a job whose per-cycle overhead exceeds the timeslice makes
        # zero progress per cycle and two such jobs can suspend each
        # other forever (observed livelock under the disk-swap model).
        pending = job.pending_overhead
        driver.start_job(job)
        self._protected_until[job.job_id] = driver.now + pending + self.timeslice

    def _grant_immediate_service(self, job: Job) -> bool:
        """Arrival path: start *job* now, preempting if necessary."""
        driver = self.driver
        if driver.cluster.can_allocate(job.procs):
            self._start(job)
            return True
        victims = self._cheapest_victims(limit_priority=None)
        freed = driver.cluster.free_count
        chosen: list[Job] = []
        for victim in victims:
            if freed >= job.procs:
                break
            chosen.append(victim)
            freed += len(victim.allocated_procs)
        if freed < job.procs:
            self._record_denial(job, limit_priority=None, path="arrival")
            return False
        self._record_grant(job, chosen, limit_priority=None, path="arrival")
        for victim in chosen:
            driver.suspend_job(victim, preemptor=job.job_id)
            self._protected_until.pop(victim.job_id, None)
        self._start(job)
        return True

    # ------------------------------------------------------------------
    # decision records (trace-only; never consulted by the policy)
    # ------------------------------------------------------------------
    def _victim_verdicts(self, limit_priority: float | None) -> list[dict[str, Any]]:
        """Per-running-job verdicts for a decision record.

        ``protected`` -- inside its timeslice protection window;
        ``priority`` -- queue priority not strictly below the waiter's
        (sweep/re-entry paths only); else ``candidate``.
        """
        driver = self.driver
        now = driver.now
        out: list[dict[str, Any]] = []
        for r in sorted(driver.running_jobs(), key=lambda r: r.job_id):
            p = self._priority(r, now)
            if self._is_protected(r):
                verdict = "protected"
            elif limit_priority is not None and p >= limit_priority:
                verdict = "priority"
            else:
                verdict = "candidate"
            out.append(victim_verdict(r.job_id, p, len(r.allocated_procs), verdict))
        return out

    def _record_denial(
        self, job: Job, limit_priority: float | None, path: str
    ) -> None:
        driver = self.driver
        tracer = driver.tracer
        if tracer is None:
            return
        verdicts = self._victim_verdicts(limit_priority)
        tracer.decision(
            driver.now,
            "preempt_denied",
            job.job_id,
            cause=primary_denial_cause(verdicts),
            requested=job.procs,
            free=driver.cluster.free_count,
            path=path,
            timeslice=self.timeslice,
            victims=verdicts,
        )

    def _record_grant(
        self,
        job: Job,
        chosen: list[Job],
        limit_priority: float | None,
        path: str,
    ) -> None:
        driver = self.driver
        tracer = driver.tracer
        if tracer is None:
            return
        tracer.decision(
            driver.now,
            "timeslice_grant",
            job.job_id,
            requested=job.procs,
            free=driver.cluster.free_count,
            path=path,
            timeslice=self.timeslice,
            suspended=[v.job_id for v in chosen],
            victims=self._victim_verdicts(limit_priority),
        )

    def _cheapest_victims(self, limit_priority: float | None) -> list[Job]:
        """Unprotected running jobs in ascending queue priority.

        If *limit_priority* is given, only victims strictly below it are
        eligible (the waiting-job service path).
        """
        driver = self.driver
        now = driver.now
        out = [
            r
            for r in driver.running_jobs()
            if not self._is_protected(r)
            and (
                limit_priority is None or self._priority(r, now) < limit_priority
            )
        ]
        out.sort(key=lambda r: (self._priority(r, now), r.job_id))
        return out

    def _sweep(self) -> None:
        """Serve waiting jobs: free processors first, then preemption."""
        driver = self.driver
        now = driver.now
        waiting = sorted(
            driver.queued_jobs(),
            key=lambda j: (-self._priority(j, now), j.submit_time, j.job_id),
        )
        for job in waiting:
            if job.needs_specific_procs:
                self._serve_reentry(job)
            else:
                self._serve_fresh(job)

    def _serve_fresh(self, job: Job) -> bool:
        driver = self.driver
        if driver.cluster.can_allocate(job.procs):
            self._start(job)
            return True
        my_priority = self._priority(job, driver.now)
        victims = self._cheapest_victims(limit_priority=my_priority)
        freed = driver.cluster.free_count
        chosen: list[Job] = []
        for victim in victims:
            if freed >= job.procs:
                break
            chosen.append(victim)
            freed += len(victim.allocated_procs)
        if freed < job.procs:
            self._record_denial(job, limit_priority=my_priority, path="sweep")
            return False
        self._record_grant(job, chosen, limit_priority=my_priority, path="sweep")
        for victim in chosen:
            driver.suspend_job(victim, preemptor=job.job_id)
            self._protected_until.pop(victim.job_id, None)
        self._start(job)
        return True

    def _serve_reentry(self, job: Job) -> bool:
        driver = self.driver
        needed = job.suspended_procs
        if driver.cluster.can_allocate_specific(needed):
            self._start(job)
            return True
        now = driver.now
        tracer = driver.tracer
        my_priority = self._priority(job, now)
        owner_ids = driver.cluster.owners_overlapping(needed)
        owners = [r for r in driver.running_jobs() if r.job_id in owner_ids]
        # One protected or higher-priority squatter blocks the resume.
        # When tracing, classify every owner so the decision record is
        # complete (the checks are pure; scheduling is unchanged).
        verdicts: list[dict[str, Any]] | None = [] if tracer is not None else None
        blocking: str | None = None
        for victim in sorted(owners, key=lambda o: o.job_id):
            p = self._priority(victim, now)
            if self._is_protected(victim):
                cause = "protected"
            elif p >= my_priority:
                cause = "priority"
            else:
                cause = None
            if verdicts is not None:
                verdicts.append(
                    victim_verdict(
                        victim.job_id,
                        p,
                        len(victim.allocated_procs),
                        cause or "candidate",
                    )
                )
            if cause is not None:
                blocking = blocking or cause
                if verdicts is None:
                    break  # untraced: first blocker settles it
        if blocking is not None:
            if tracer is not None:
                tracer.decision(
                    now,
                    "preempt_denied",
                    job.job_id,
                    cause=blocking,
                    requested=job.procs,
                    path="reentry",
                    timeslice=self.timeslice,
                    victims=verdicts,
                )
            return False
        if tracer is not None:
            tracer.decision(
                now,
                "timeslice_grant",
                job.job_id,
                requested=job.procs,
                path="reentry",
                timeslice=self.timeslice,
                suspended=sorted(o.job_id for o in owners),
                victims=verdicts,
            )
        for victim in sorted(owners, key=lambda o: o.job_id):
            driver.suspend_job(victim, preemptor=job.job_id)
            self._protected_until.pop(victim.job_id, None)
        if driver.cluster.can_allocate_specific(needed):
            self._start(job)
            return True
        return False  # pragma: no cover - owners covered all of `needed`


# ======================================================================
# composition
# ======================================================================
@dataclass(frozen=True)
class SchedulerSpec:
    """A scheme as a declarative composition of the four policy axes.

    ``config()`` merges the axes' :meth:`Policy.config_fragment` dicts
    in a fixed order (queue, reservation, backfill, preemption) after
    the scheme id, so cache fingerprints compose automatically -- and,
    for the eight ported schemes, reproduce the legacy key order
    byte-for-byte (the golden traces embed these dicts in ``run_begin``
    events).
    """

    scheme_id: str
    display_name: str
    queue: QueuePolicy
    reservation: ReservationPolicy
    backfill: BackfillPolicy
    preemption: PreemptionPolicy

    def config(self) -> dict[str, object]:
        cfg: dict[str, object] = {"scheme": self.scheme_id}
        for policy in (self.queue, self.reservation, self.backfill, self.preemption):
            cfg.update(policy.config_fragment())
        return cfg


class PolicyKernel(Scheduler):
    """One dispatch loop composing the four policy axes.

    Driver hooks route to the composition:

    * ``on_arrival`` -- the preemption policy may serve immediately
      (IS); a reservation policy that handles arrivals (conservative)
      admits the job itself; otherwise a no-suspension service pass.
    * ``on_finish`` -- the preemption policy observes the completion
      (TSS calibration), then either the reservation policy recomputes
      guarantees or a no-suspension service pass fills the hole.
    * ``on_timer`` -- the full (suspension-allowed) service pass.
    * ``on_kill`` -- reschedules when the backfill policy asks for it
      (speculative test runs).

    The default service pass is :meth:`backfill_pass`: start jobs in
    queue order while they fit, then let the reservation policy plan
    the head and the backfill policy fill around it.  Preemption
    policies override ``service_pass`` with their own engines.

    Scheme identity (``scheme_id``, ``name``, ``timer_interval``,
    ``config()``) comes entirely from the :class:`SchedulerSpec`, so
    concrete scheme classes are pure compositions plus back-compat
    accessors.
    """

    def __init__(self, spec: SchedulerSpec) -> None:
        super().__init__()
        self.spec = spec
        self.queue = spec.queue
        self.reservation = spec.reservation
        self.backfill = spec.backfill
        self.preemption = spec.preemption
        self.scheme_id = spec.scheme_id
        self.name = spec.display_name
        self.timer_interval = spec.preemption.timer_interval
        for policy in (self.queue, self.reservation, self.backfill, self.preemption):
            policy.bind_kernel(self)

    # ------------------------------------------------------------------
    def config(self) -> dict[str, object]:
        return self.spec.config()

    def on_begin(self) -> None:
        for policy in (self.queue, self.reservation, self.backfill, self.preemption):
            policy.on_begin()

    def on_arrival(self, job: Job) -> None:
        self.preemption.on_arrival(job)
        if self.reservation.handles_arrival:
            self.reservation.on_arrival(job)
            return
        self.preemption.service_pass(False)

    def on_finish(self, job: Job) -> None:
        self.preemption.observe_finish(job)
        if self.reservation.handles_finish:
            self.reservation.on_finish(job)
            return
        self.preemption.service_pass(False)

    def on_timer(self) -> None:
        self.preemption.service_pass(True)

    def on_kill(self, job: Job) -> None:
        if self.backfill.resched_on_kill:
            self.preemption.service_pass(False)

    # ------------------------------------------------------------------
    # the default service pass (non-preemptive schemes)
    # ------------------------------------------------------------------
    def backfill_pass(self) -> None:
        """Start in order while the head fits, then backfill behind it.

        Phase 1 starts the queue head while it fits, refetching the
        queue each iteration (a start removes exactly the head, so this
        is equivalent to the legacy snapshot walks in FCFS and EASY).
        Phase 2 asks the reservation policy to plan the (now blocked)
        head; if the scheme reserves nothing, dispatch stops at the
        head.  Phase 3 lets the backfill policy fill around the plan.
        """
        driver = self.driver
        while True:
            queue = driver.queued_jobs()
            if not queue:
                return
            ordered = self.queue.order(queue, driver.now)
            head = ordered[0]
            if not driver.can_start(head):
                break
            driver.start_job(head)
        queue = driver.queued_jobs()
        if not queue:
            return  # pragma: no cover - loop returned already
        plan = self.reservation.plan_head(queue[0])
        if plan is None:
            return
        self.backfill.fill(queue[1:], plan)

"""The scheduler interface.

A scheduler is a policy object driven by the simulation driver
(:class:`~repro.sim.driver.SchedulingSimulation`).  The driver owns all
*mechanism* -- job state transitions, processor accounting, finish
events, metrics.  The scheduler owns all *policy*: which queued job to
start, when, and (for preemptive schemes) which running jobs to suspend.

Contract
--------

* The driver calls :meth:`Scheduler.on_arrival` after a job joined the
  queue, :meth:`Scheduler.on_finish` after a job's processors were
  released, and :meth:`Scheduler.on_timer` on each periodic tick (only
  if :attr:`Scheduler.timer_interval` is not ``None``).
* Inside a hook the scheduler may call ``self.driver.start_job(job)``
  and ``self.driver.suspend_job(job)``; both take effect immediately
  (processors move synchronously), so the scheduler can chain decisions
  within one hook.
* The driver's ``queued`` list is in arrival order (suspended jobs
  re-enter at the tail).  Schedulers must not mutate it; they select
  jobs and the driver updates the list inside ``start_job``.
* Schedulers never touch :class:`~repro.workload.job.Job` lifecycle
  methods directly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.events import Tracer
    from repro.sim.driver import SchedulingSimulation
    from repro.workload.job import Job


class Scheduler(ABC):
    """Base class for all scheduling policies."""

    #: Human-readable policy name for reports.
    name: str = "base"

    #: Stable machine-readable scheme id; the key under which
    #: :mod:`repro.schedulers.registry` can rebuild the policy from its
    #: :meth:`config`.  Concrete schedulers must override it.
    scheme_id: str = "base"

    #: If not ``None``, the driver fires :meth:`on_timer` every this many
    #: seconds while work remains.  The paper's preemptive schemes use a
    #: 60 s preemption sweep (section IV-B).
    timer_interval: float | None = None

    def __init__(self) -> None:
        self.driver: "SchedulingSimulation | None" = None

    # ------------------------------------------------------------------
    # driver wiring
    # ------------------------------------------------------------------
    def bind(self, driver: "SchedulingSimulation") -> None:
        """Attach to a driver; called once before the simulation starts."""
        self.driver = driver

    def on_begin(self) -> None:
        """Hook called once at simulation start (after binding)."""

    def on_end(self) -> None:
        """Hook called once when the event calendar drains."""

    # ------------------------------------------------------------------
    # event hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def on_arrival(self, job: "Job") -> None:
        """A job was submitted and queued."""

    @abstractmethod
    def on_finish(self, job: "Job") -> None:
        """A job finished; its processors are already free."""

    def on_timer(self) -> None:
        """Periodic tick; only fired when :attr:`timer_interval` is set."""

    def on_kill(self, job: "Job") -> None:
        """A speculative run of *job* hit its deadline and was requeued.

        Only fired for schedulers that call ``driver.start_speculative``.
        """

    # ------------------------------------------------------------------
    # conveniences shared by concrete schedulers
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (valid inside hooks)."""
        assert self.driver is not None
        return self.driver.now

    @property
    def tracer(self) -> "Tracer | None":
        """The run's trace emitter, or ``None`` when tracing is off.

        Emission sites in concrete schedulers guard with a single
        ``if self.tracer is not None`` check -- build no event payloads,
        format no strings, outside that branch (the zero-overhead
        contract, see :mod:`repro.obs`).
        """
        assert self.driver is not None
        return self.driver.tracer

    def describe(self) -> str:
        """One-line description for report headers."""
        return self.name

    def config(self) -> dict[str, object]:
        """The policy's full configuration as a JSON-serialisable mapping.

        Contract: the mapping **completely determines scheduling
        behaviour** -- two scheduler instances with equal configs must
        produce identical schedules over any workload.  It always
        contains a ``"scheme"`` key (:attr:`scheme_id`) and only
        JSON-stable values (numbers, strings, bools, lists, dicts with
        string keys).

        Two consumers rely on this:

        * the on-disk result cache (:mod:`repro.experiments.cache`)
          folds it into the cell fingerprint, so any behavioural knob a
          subclass adds **must** appear here or cached results go stale
          silently;
        * the parallel executor (:mod:`repro.experiments.parallel`)
          ships it to worker processes, where
          :func:`repro.schedulers.registry.scheduler_from_config`
          rebuilds a fresh single-use instance (scheduler objects
          themselves are stateful and non-portable).
        """
        return {"scheme": self.scheme_id}

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"

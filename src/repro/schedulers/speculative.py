"""Speculative backfilling (Perkovic & Keleher -- the paper's ref [29]).

Section V discusses this scheme when dissecting slowdown metrics: "a
job is given a free timeslot to execute in, even if that slot is
considerably smaller than the requested wall-clock limit".  Jobs whose
real run time is far below their estimate (the aborted-job pathology)
complete inside the hole and skip the queue entirely; jobs that
outlive the hole are killed at its end and requeued **from scratch**
(no checkpoint -- the wasted occupancy is the price of the gamble).

Implementation: EASY backfilling as the base; when a queued job cannot
backfill conventionally, it may *speculate* into the hole in front of
the head's reservation.  The gamble is a bounded **test run**: the job
gets at most ``speculation_window`` seconds (default 15 minutes) -- if
it completes within the window it was an aborting/over-estimated job
and the speculation won; otherwise it is killed with bounded waste
(window x width processor-seconds).  Unbounded gambles (run until the
hole closes) lose more than they win on realistic mixes, because most
badly *estimated* jobs are not badly *behaved* -- their actual run
times exceed any plausible hole; the bounded window is what makes the
scheme profitable, and matches the test-run flavour of the original.
``max_kills`` bounds per-job thrash; kills never revoke the job's FIFO
position, so conventional service still makes progress.

This scheduler exists to reproduce the paper's section V argument that
speculative backfilling's headline slowdown gains come from badly
estimated jobs, not from normal ones -- the ablation bench measures
exactly that split.
"""

from __future__ import annotations

from repro.schedulers.policy import (
    FifoOrder,
    HeadReservation,
    NoPreemption,
    PolicyKernel,
    SchedulerSpec,
    SpeculativeBackfill,
)


class SpeculativeBackfillScheduler(PolicyKernel):
    """EASY plus bounded test-run speculation into pre-reservation holes.

    The composition: EASY's queue and reservation, with the backfill
    rule swapped for :class:`SpeculativeBackfill` (which also asks the
    kernel to re-run the pass after every speculative kill).

    Parameters
    ----------
    speculation_window:
        Length of a test run, seconds (default 900).  A speculating job
        is killed after this long; a hole shorter than the window is
        not gambled on.
    max_kills:
        Maximum lost speculations per job before it must wait for
        conventional service.
    """

    scheme_id = "speculative"

    def __init__(self, speculation_window: float = 900.0, max_kills: int = 2) -> None:
        super().__init__(
            SchedulerSpec(
                scheme_id="speculative",
                display_name="SPEC-BF",
                queue=FifoOrder(),
                reservation=HeadReservation(),
                backfill=SpeculativeBackfill(
                    speculation_window=speculation_window, max_kills=max_kills
                ),
                preemption=NoPreemption(),
            )
        )

    @property
    def _speculative(self) -> SpeculativeBackfill:
        backfill = self.backfill
        assert isinstance(backfill, SpeculativeBackfill)
        return backfill

    @property
    def speculation_window(self) -> float:
        return self._speculative.speculation_window

    @property
    def max_kills(self) -> int:
        return self._speculative.max_kills

    def schedule_pass(self) -> None:
        self.backfill_pass()

    def describe(self) -> str:
        return (
            f"{self.name}, {self.speculation_window:g}s test runs, "
            f"<= {self.max_kills} kills"
        )

"""Speculative backfilling (Perkovic & Keleher -- the paper's ref [29]).

Section V discusses this scheme when dissecting slowdown metrics: "a
job is given a free timeslot to execute in, even if that slot is
considerably smaller than the requested wall-clock limit".  Jobs whose
real run time is far below their estimate (the aborted-job pathology)
complete inside the hole and skip the queue entirely; jobs that
outlive the hole are killed at its end and requeued **from scratch**
(no checkpoint -- the wasted occupancy is the price of the gamble).

Implementation: EASY backfilling as the base; when a queued job cannot
backfill conventionally, it may *speculate* into the hole in front of
the head's reservation.  The gamble is a bounded **test run**: the job
gets at most ``speculation_window`` seconds (default 15 minutes) -- if
it completes within the window it was an aborting/over-estimated job
and the speculation won; otherwise it is killed with bounded waste
(window x width processor-seconds).  Unbounded gambles (run until the
hole closes) lose more than they win on realistic mixes, because most
badly *estimated* jobs are not badly *behaved* -- their actual run
times exceed any plausible hole; the bounded window is what makes the
scheme profitable, and matches the test-run flavour of the original.
``max_kills`` bounds per-job thrash; kills never revoke the job's FIFO
position, so conventional service still makes progress.

This scheduler exists to reproduce the paper's section V argument that
speculative backfilling's headline slowdown gains come from badly
estimated jobs, not from normal ones -- the ablation bench measures
exactly that split.
"""

from __future__ import annotations

from repro.schedulers.base import Scheduler
from repro.schedulers.profiles import AvailabilityProfile
from repro.workload.job import Job


class SpeculativeBackfillScheduler(Scheduler):
    """EASY plus bounded test-run speculation into pre-reservation holes.

    Parameters
    ----------
    speculation_window:
        Length of a test run, seconds (default 900).  A speculating job
        is killed after this long; a hole shorter than the window is
        not gambled on.
    max_kills:
        Maximum lost speculations per job before it must wait for
        conventional service.
    """

    scheme_id = "speculative"

    def __init__(self, speculation_window: float = 900.0, max_kills: int = 2) -> None:
        super().__init__()
        if speculation_window <= 0:
            raise ValueError("speculation_window must be positive")
        if max_kills < 0:
            raise ValueError("max_kills must be nonnegative")
        self.speculation_window = float(speculation_window)
        self.max_kills = int(max_kills)
        self.name = "SPEC-BF"

    def config(self) -> dict[str, object]:
        return {
            "scheme": self.scheme_id,
            "speculation_window": self.speculation_window,
            "max_kills": self.max_kills,
        }

    def on_arrival(self, job: Job) -> None:
        self.schedule_pass()

    def on_finish(self, job: Job) -> None:
        self.schedule_pass()

    def on_kill(self, job: Job) -> None:
        self.schedule_pass()

    # ------------------------------------------------------------------
    def schedule_pass(self) -> None:
        driver = self.driver
        assert driver is not None

        # Phase 1: FIFO starts (as EASY).
        while True:
            queue = driver.queued_jobs()
            if not queue or not driver.can_start(queue[0]):
                break
            driver.start_job(queue[0])

        queue = driver.queued_jobs()
        if not queue:
            return

        # Phase 2: head reservation.
        head = queue[0]
        profile = AvailabilityProfile(driver.cluster.n_procs, driver.now)
        for running in driver.running_jobs():
            profile.claim_running(len(running.allocated_procs), running.expected_end)
        head_anchor = profile.find_anchor(head.remaining_estimate(), head.procs)
        profile.claim(head_anchor, head.remaining_estimate(), head.procs)
        if self.tracer is not None:
            self.tracer.decision(
                driver.now,
                "reservation",
                head.job_id,
                anchor=head_anchor,
                requested=head.procs,
                duration=head.remaining_estimate(),
            )

        # Phase 3: conventional backfill, then speculation.
        for job in queue[1:]:
            if not driver.can_start(job):
                continue
            duration = job.remaining_estimate()
            if profile.fits(driver.now, duration, job.procs):
                driver.start_job(job, via="backfill")
                profile.claim(driver.now, duration, job.procs)
                continue
            self._try_speculate(job, profile)

    def _try_speculate(self, job: Job, profile: AvailabilityProfile) -> bool:
        """Test-run *job* in the hole before the profile next tightens."""
        driver = self.driver
        assert driver is not None
        if job.kill_count >= self.max_kills:
            return False
        if job.needs_specific_procs:
            return False  # never gamble away a suspension checkpoint
        if job.remaining_estimate() <= self.speculation_window:
            return False  # not a gamble; conventional backfill territory
        # hole length on job.procs processors starting now: scan the
        # profile breakpoints for the first time free drops below need
        hole_end = float("inf")
        for t, free in profile.breakpoints():
            if t <= driver.now:
                if free < job.procs:
                    return False  # no room even now (reservation at now)
                continue
            if free < job.procs:
                hole_end = t
                break
        hole = hole_end - driver.now
        if hole < self.speculation_window:
            return False  # too short for a meaningful test run
        deadline = driver.now + self.speculation_window
        if self.tracer is not None:
            self.tracer.decision(
                driver.now,
                "speculate",
                job.job_id,
                deadline=deadline,
                window=self.speculation_window,
                hole=hole if hole != float("inf") else None,
                requested=job.procs,
                kills_so_far=job.kill_count,
            )
        driver.start_speculative(job, deadline=deadline)
        profile.claim(driver.now, self.speculation_window, job.procs)
        return True

    def describe(self) -> str:
        return (
            f"{self.name}, {self.speculation_window:g}s test runs, "
            f"<= {self.max_kills} kills"
        )

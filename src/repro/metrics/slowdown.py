"""Per-job metrics: bounded slowdown, turnaround, wait.

The paper's two headline metrics (section II-B):

* **turnaround time** -- completion minus submission;
* **bounded slowdown** (eq. 1)::

      max( (wait + run_time) / max(run_time, 10), 1 )

  The 10-second threshold keeps sub-second jobs from dominating averages.

Under preemption a job's "wait" is every second it was neither finished
nor making progress: queueing before the first start, suspended periods,
and overhead seconds all count.  That makes ``wait + run_time`` equal to
the turnaround exactly, so we compute bounded slowdown as
``max(turnaround / max(run_time, threshold), 1)`` -- identical to eq. 1
for non-preemptive schedules and its natural generalisation for
preemptive ones.
"""

from __future__ import annotations

from repro.workload.job import Job, JobState

#: Eq. 1's threshold (seconds) limiting the influence of very short jobs.
BOUNDED_SLOWDOWN_THRESHOLD = 10.0


def _require_finished(job: Job) -> None:
    if job.state is not JobState.FINISHED or job.finish_time is None:
        raise ValueError(f"job {job.job_id} has not finished; metrics undefined")


def turnaround_time(job: Job) -> float:
    """Completion minus submission, seconds."""
    _require_finished(job)
    assert job.finish_time is not None
    return job.finish_time - job.submit_time


def wait_time(job: Job) -> float:
    """Total non-running time: queueing + suspended periods.

    Overhead seconds are spent *on processors* and therefore show up in
    turnaround but not here; ``wait + run_time + total_overhead ==
    turnaround`` holds for every finished job (asserted in tests).
    """
    _require_finished(job)
    return turnaround_time(job) - job.run_time - job.total_overhead


def bounded_slowdown(
    job: Job, threshold: float = BOUNDED_SLOWDOWN_THRESHOLD
) -> float:
    """Eq. 1's bounded slowdown of a finished job (>= 1 always)."""
    _require_finished(job)
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    denom = max(job.run_time, threshold)
    return max(turnaround_time(job) / denom, 1.0)


def xfactor_final(job: Job) -> float:
    """The job's final expansion factor, ``turnaround / run_time``.

    Unbounded version of the slowdown, used in SS theory discussions.
    """
    _require_finished(job)
    return turnaround_time(job) / job.run_time

"""Metrics: the paper's evaluation quantities.

* :mod:`repro.metrics.slowdown` -- bounded slowdown (eq. 1), turnaround,
  wait time.
* :mod:`repro.metrics.aggregate` -- per-category averages / worst cases /
  counts over a simulation result, including the section V split by
  estimation quality and the section VI 4-way grid.
* :mod:`repro.metrics.utilization` -- overall utilisation and busy-time
  accounting helpers.

All metrics are pure functions over finished jobs (or the
:class:`~repro.sim.driver.SimulationResult`), so the same result can be
sliced every way the paper reports without re-simulating.
"""

from repro.metrics.slowdown import (
    BOUNDED_SLOWDOWN_THRESHOLD,
    bounded_slowdown,
    turnaround_time,
    wait_time,
)
from repro.metrics.aggregate import (
    CategoryStats,
    MetricSummary,
    overall_stats,
    per_category_stats,
    per_category_worst,
    split_by_estimate_quality,
)
from repro.metrics.utilization import utilization_of

__all__ = [
    "BOUNDED_SLOWDOWN_THRESHOLD",
    "CategoryStats",
    "MetricSummary",
    "bounded_slowdown",
    "overall_stats",
    "per_category_stats",
    "per_category_worst",
    "split_by_estimate_quality",
    "turnaround_time",
    "utilization_of",
    "wait_time",
]

"""Aggregation of per-job metrics into the paper's tables and figures.

Everything the paper reports is one of:

* an **average** (slowdown or turnaround) over a job category;
* a **worst case** (max) over a category (Figs 11-18);
* a **count/share** per category (Tables II, III, VII, VIII);
* the same, restricted to well/badly estimated jobs (Figs 19-30).

:func:`per_category_stats` computes all of it in one pass; callers pick
the classifier (16-way or 4-way) and optionally an estimate-quality
filter.  Numbers come back in plain dataclasses so report rendering and
tests stay independent of numpy dtypes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.metrics.slowdown import bounded_slowdown, turnaround_time, wait_time
from repro.workload.categories import (
    classify_four_way,
    classify_sixteen_way,
    estimate_quality,
)
from repro.workload.job import Job

Classifier = Callable[[Job], tuple[str, str]]


@dataclass(frozen=True)
class MetricSummary:
    """Summary statistics of one metric over one job population."""

    count: int
    mean: float
    worst: float
    total: float

    @staticmethod
    def of(values: list[float]) -> "MetricSummary":
        if not values:
            return MetricSummary(count=0, mean=0.0, worst=0.0, total=0.0)
        total = float(sum(values))
        return MetricSummary(
            count=len(values),
            mean=total / len(values),
            worst=float(max(values)),
            total=total,
        )


@dataclass(frozen=True)
class CategoryStats:
    """Both paper metrics for one category."""

    category: tuple[str, str]
    slowdown: MetricSummary
    turnaround: MetricSummary
    wait: MetricSummary

    @property
    def count(self) -> int:
        return self.slowdown.count


def _collect(
    jobs: Iterable[Job], classifier: Classifier
) -> dict[tuple[str, str], list[Job]]:
    buckets: dict[tuple[str, str], list[Job]] = {}
    for job in jobs:
        buckets.setdefault(classifier(job), []).append(job)
    return buckets


def per_category_stats(
    jobs: Iterable[Job],
    classifier: Classifier = classify_sixteen_way,
    quality: str | None = None,
) -> dict[tuple[str, str], CategoryStats]:
    """Per-category metric summaries.

    Parameters
    ----------
    jobs:
        Finished jobs (a :class:`SimulationResult`'s ``jobs`` list).
    classifier:
        :func:`classify_sixteen_way` (default) or
        :func:`classify_four_way` -- or any custom bucketing.
    quality:
        ``"well"``/``"badly"`` restricts to that estimation-quality
        group (section V); ``None`` uses every job.
    """
    if quality is not None:
        if quality not in ("well", "badly"):
            raise ValueError(f"quality must be 'well', 'badly' or None, got {quality!r}")
        jobs = [j for j in jobs if estimate_quality(j) == quality]
    out: dict[tuple[str, str], CategoryStats] = {}
    for category, bucket in _collect(jobs, classifier).items():
        out[category] = CategoryStats(
            category=category,
            slowdown=MetricSummary.of([bounded_slowdown(j) for j in bucket]),
            turnaround=MetricSummary.of([turnaround_time(j) for j in bucket]),
            wait=MetricSummary.of([wait_time(j) for j in bucket]),
        )
    return out


def per_category_worst(
    jobs: Iterable[Job],
    classifier: Classifier = classify_sixteen_way,
) -> dict[tuple[str, str], tuple[float, float]]:
    """(worst slowdown, worst turnaround) per category (Figs 11-18)."""
    stats = per_category_stats(jobs, classifier)
    return {c: (s.slowdown.worst, s.turnaround.worst) for c, s in stats.items()}


def overall_stats(jobs: Iterable[Job]) -> CategoryStats:
    """Whole-trace summary (the paper's 'overall slowdown was 3.58' numbers)."""
    bucket = list(jobs)
    return CategoryStats(
        category=("ALL", "ALL"),
        slowdown=MetricSummary.of([bounded_slowdown(j) for j in bucket]),
        turnaround=MetricSummary.of([turnaround_time(j) for j in bucket]),
        wait=MetricSummary.of([wait_time(j) for j in bucket]),
    )


def split_by_estimate_quality(
    jobs: Iterable[Job],
) -> tuple[list[Job], list[Job]]:
    """(well estimated, badly estimated) partitions of *jobs* (section V)."""
    well: list[Job] = []
    badly: list[Job] = []
    for job in jobs:
        (well if estimate_quality(job) == "well" else badly).append(job)
    return well, badly


def category_shares(
    jobs: Iterable[Job], classifier: Classifier = classify_sixteen_way
) -> dict[tuple[str, str], float]:
    """Fraction of jobs per category (Tables II/III/VII/VIII)."""
    buckets = _collect(jobs, classifier)
    total = sum(len(b) for b in buckets.values())
    if total == 0:
        return {}
    return {c: len(b) / total for c, b in buckets.items()}

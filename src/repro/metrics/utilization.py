"""Utilisation accounting.

The paper's "overall system utilization" (Figs 35/38) is the fraction of
processor-time spent busy over the schedule's span.  The driver already
integrates busy processor-seconds exactly (piecewise-constant between
allocation changes), so this module mostly re-derives and cross-checks.

:func:`utilization_of` reads the driver's integral;
:func:`utilization_from_jobs` recomputes a lower bound from the finished
jobs themselves (useful-work seconds only, no overhead), which tests use
to cross-validate the integral.
"""

from __future__ import annotations

from typing import Iterable

from repro.sim.driver import SimulationResult
from repro.workload.job import Job


def utilization_of(result: SimulationResult) -> float:
    """Overall utilisation of a run, in [0, 1]."""
    return result.utilization


def busy_area_from_jobs(jobs: Iterable[Job]) -> float:
    """Processor-seconds of occupancy implied by the finished jobs.

    Each job occupied ``procs`` processors for ``run_time`` of useful
    work, its paid overhead, and any processor-time wasted by killed
    speculative runs; this must equal the driver's busy integral exactly
    (tested), since processors are never busy without a job on them.
    """
    return sum(
        j.procs * (j.run_time + j.total_overhead + j.wasted_time) for j in jobs
    )


def utilization_from_jobs(
    jobs: Iterable[Job], n_procs: int, makespan: float
) -> float:
    """Utilisation recomputed from job areas (cross-check path)."""
    if makespan <= 0 or n_procs <= 0:
        return 0.0
    return busy_area_from_jobs(jobs) / (n_procs * makespan)

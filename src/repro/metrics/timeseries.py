"""Time-series instrumentation of a running simulation.

The paper's aggregate metrics hide dynamics: how deep the queue gets,
how many suspended jobs exist at once, how busy the machine is through
time.  A :class:`StateProbe` attached to the driver samples those
trajectories at a fixed cadence (decimated -- at most one sample per
interval regardless of event density), for plots, saturation analysis
and the diagnosis-style tests that caught the pinned-backlog effect
documented in DESIGN.md §3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.driver import SchedulingSimulation


@dataclass(frozen=True)
class StateSample:
    """One snapshot of simulation state."""

    time: float
    running: int
    queued_fresh: int
    queued_suspended: int
    busy_procs: int
    free_procs: int

    @property
    def queued(self) -> int:
        return self.queued_fresh + self.queued_suspended


@dataclass
class StateProbe:
    """Samples driver state at most once per *interval* seconds.

    Attach via ``SchedulingSimulation(..., probe=probe)``; the driver
    calls :meth:`maybe_sample` after every event.
    """

    interval: float = 600.0
    samples: list[StateSample] = field(default_factory=list)
    _next_due: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("probe interval must be positive")

    def maybe_sample(self, driver: "SchedulingSimulation") -> None:
        """Record a snapshot if the cadence allows."""
        if driver.now < self._next_due:
            return
        self._next_due = driver.now + self.interval
        queued = driver.queued_jobs()
        suspended = sum(1 for j in queued if j.needs_specific_procs)
        self.samples.append(
            StateSample(
                time=driver.now,
                running=driver.running_count,
                queued_fresh=len(queued) - suspended,
                queued_suspended=suspended,
                busy_procs=driver.cluster.busy_count,
                free_procs=driver.cluster.free_count,
            )
        )

    # ------------------------------------------------------------------
    # series accessors
    # ------------------------------------------------------------------
    def times(self) -> list[float]:
        return [s.time for s in self.samples]

    def series(self, name: str) -> list[float]:
        """Named series: running / queued / queued_fresh /
        queued_suspended / busy_procs / free_procs / utilization."""
        if name == "utilization":
            return [
                s.busy_procs / (s.busy_procs + s.free_procs)
                if (s.busy_procs + s.free_procs)
                else 0.0
                for s in self.samples
            ]
        try:
            return [float(getattr(s, name)) for s in self.samples]
        except AttributeError as exc:
            raise KeyError(f"unknown series {name!r}") from exc

    def peak(self, name: str) -> float:
        """Maximum of a named series (0 if no samples)."""
        values = self.series(name)
        return max(values) if values else 0.0

    def mean(self, name: str) -> float:
        """Mean of a named series (0 if no samples)."""
        values = self.series(name)
        return sum(values) / len(values) if values else 0.0

"""User run-time estimate models (section V).

Backfilling schedulers plan with the user's *estimated* run time.  The
paper first assumes perfect estimates, then studies inaccuracy.  Its
analysis splits jobs into **well estimated** (estimate <= 2x actual) and
**badly estimated** (estimate > 2x actual), noting that badly estimated
short jobs look long to the xfactor priority and are therefore the jobs
SS penalises.

Real logs show heavily quantised over-estimation (users request round
wall-clock limits; many jobs abort early).  :class:`InaccurateEstimates`
models this with a two-population mixture:

* with probability ``1 - badly_fraction``: estimate = actual x U(1, 2)
  (well estimated);
* with probability ``badly_fraction``: estimate = actual x LogU(2, max_factor)
  (badly estimated -- log-uniform, so extreme over-estimates such as an
  aborted "24-hour" one-minute job appear with realistic frequency).

Estimates never fall below the actual run time (jobs are not killed at
the estimate in this study; the paper's schedulers treat the estimate as
a planning hint, and the synthetic model keeps estimate >= actual so the
backfilling profiles never have to handle overruns).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class EstimateModel(ABC):
    """Strategy that assigns user estimates to actual run times."""

    @abstractmethod
    def estimates(self, run_times: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Vector of estimates, elementwise >= ``run_times``."""

    def name(self) -> str:
        """Short label for reports."""
        return type(self).__name__


class AccurateEstimates(EstimateModel):
    """Perfect estimation: estimate == actual (sections III-IV)."""

    def estimates(self, run_times: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return np.asarray(run_times, dtype=float).copy()


class PerfectWithNoise(EstimateModel):
    """Mild multiplicative noise: estimate = actual x U(1, 1 + noise).

    A sanity-check model between the accurate and inaccurate extremes;
    every job stays "well estimated" for ``noise < 1``.
    """

    def __init__(self, noise: float = 0.2) -> None:
        if noise < 0:
            raise ValueError(f"noise must be nonnegative, got {noise}")
        self.noise = float(noise)

    def estimates(self, run_times: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        run_times = np.asarray(run_times, dtype=float)
        return run_times * rng.uniform(1.0, 1.0 + self.noise, size=run_times.shape)


class InaccurateEstimates(EstimateModel):
    """Two-population over-estimation mixture (section V).

    Parameters
    ----------
    badly_fraction:
        Fraction of jobs whose estimate exceeds 2x the actual run time.
        Archive logs put this around 0.3-0.5; default 0.4.
    max_factor:
        Upper bound of the log-uniform over-estimation factor for badly
        estimated jobs.  50 allows a 30-minute job to request a 24-hour
        limit, matching the aborted-job pathology the paper discusses.
    cap_seconds:
        Optional absolute cap on the estimate (a machine's maximum
        wall-clock limit); ``None`` disables.
    """

    def __init__(
        self,
        badly_fraction: float = 0.4,
        max_factor: float = 50.0,
        cap_seconds: float | None = 60 * 3600.0,
    ) -> None:
        if not 0.0 <= badly_fraction <= 1.0:
            raise ValueError(f"badly_fraction must be in [0,1], got {badly_fraction}")
        if max_factor <= 2.0:
            raise ValueError(f"max_factor must exceed 2, got {max_factor}")
        if cap_seconds is not None and cap_seconds <= 0:
            raise ValueError(f"cap_seconds must be positive, got {cap_seconds}")
        self.badly_fraction = float(badly_fraction)
        self.max_factor = float(max_factor)
        self.cap_seconds = cap_seconds

    def estimates(self, run_times: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        run_times = np.asarray(run_times, dtype=float)
        n = run_times.shape[0]
        bad = rng.random(n) < self.badly_fraction
        factors = rng.uniform(1.0, 2.0, size=n)
        # log-uniform on (2, max_factor] for the badly estimated population
        n_bad = int(bad.sum())
        if n_bad:
            lo, hi = np.log(2.0), np.log(self.max_factor)
            factors[bad] = np.exp(rng.uniform(lo, hi, size=n_bad))
        est = run_times * factors
        if self.cap_seconds is not None:
            # never cap below the actual run time: estimate >= actual holds
            est = np.maximum(np.minimum(est, self.cap_seconds), run_times)
        return est

    def name(self) -> str:
        return f"InaccurateEstimates(bad={self.badly_fraction:g})"

"""Trace presets modelling the paper's workloads.

The paper evaluates on subsets of three Parallel Workloads Archive logs:

* **CTC** -- 430-node IBM SP2, Cornell Theory Center;
* **SDSC** -- 128-node IBM SP2, San Diego Supercomputer Center;
* **KTH** -- 100-node IBM SP2, Swedish Royal Institute of Technology.

The logs themselves are not redistributable and this environment has no
network access, so each preset captures what the paper publishes about
its trace -- machine size and the per-category job distribution (Tables
II and III) -- plus calibration targets (offered load, saturation point)
chosen so the non-preemptive baseline reproduces the paper's overall
behaviour.  :mod:`repro.workload.synthetic` turns a preset into a
concrete job list; :func:`repro.workload.swf.read_swf` can replace it
with the real log where available.

The KTH distribution is **not** published in the paper (its results are
described as "similar trends" and omitted); the preset here is modelled
on the published character of the KTH-SP2 log (dominated by short,
narrow jobs) and is clearly marked synthetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workload.categories import (
    SIXTEEN_WAY_CATEGORIES,
    SixteenWayCategory,
)

HOUR = 3600.0


@dataclass(frozen=True)
class TracePreset:
    """Everything needed to synthesise a trace shaped like a paper workload.

    Parameters
    ----------
    name:
        Short identifier (``"CTC"``, ``"SDSC"``, ``"KTH"``).
    n_procs:
        Machine size in processors.
    category_shares:
        Probability of each Table I category (must sum to ~1.0); these are
        the paper's Tables II/III for CTC/SDSC.
    target_utilization:
        Offered load at load factor 1.0, used to calibrate the arrival
        rate: mean interarrival = E[procs x runtime] / (P x target).
    saturation_load:
        Load factor at which the paper reports the system saturates
        (Figs 35/38: 1.6 for CTC, 1.3 for SDSC); recorded for the
        load-variation experiments.
    runtime_bounds:
        (low, high] run-time bounds in seconds per length class label;
        run times are drawn log-uniformly inside the class.
    max_width:
        Largest processor request the generator will produce (the VW
        class is log-uniform on [33, max_width]).
    paper_overall_ns_slowdown:
        The overall average bounded slowdown the paper reports for the
        non-preemptive baseline on this trace (3.58 CTC, 14.13 SDSC);
        recorded for EXPERIMENTS.md comparison, not used by the code.
    """

    name: str
    n_procs: int
    category_shares: dict[SixteenWayCategory, float]
    target_utilization: float
    saturation_load: float
    max_width: int
    runtime_bounds: dict[str, tuple[float, float]] = field(
        default_factory=lambda: {
            "VS": (30.0, 600.0),
            "S": (600.0, 3600.0),
            "L": (3600.0, 8 * 3600.0),
            "VL": (8 * 3600.0, 24 * 3600.0),
        }
    )
    paper_overall_ns_slowdown: float | None = None

    def __post_init__(self) -> None:
        total = sum(self.category_shares.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(
                f"preset {self.name}: category shares sum to {total}, expected 1.0"
            )
        missing = set(SIXTEEN_WAY_CATEGORIES) - set(self.category_shares)
        if missing:
            raise ValueError(f"preset {self.name}: missing categories {missing}")
        if self.max_width > self.n_procs:
            raise ValueError(
                f"preset {self.name}: max_width {self.max_width} exceeds "
                f"machine size {self.n_procs}"
            )


def _shares(rows: list[list[float]]) -> dict[SixteenWayCategory, float]:
    """Build a share dict from a 4x4 percentage table (length x width)."""
    lengths = ("VS", "S", "L", "VL")
    widths = ("Seq", "N", "W", "VW")
    out: dict[SixteenWayCategory, float] = {}
    for i, lc in enumerate(lengths):
        for j, wc in enumerate(widths):
            out[(lc, wc)] = rows[i][j] / 100.0
    return out


#: CTC preset -- Table II distribution, 430 processors.
CTC = TracePreset(
    name="CTC",
    n_procs=430,
    category_shares=_shares(
        [
            # Seq   N     W     VW
            [14.0, 8.0, 13.0, 9.0],  # VS
            [18.0, 4.0, 6.0, 2.0],  # S
            [6.0, 3.0, 9.0, 2.0],  # L
            [2.0, 2.0, 1.0, 1.0],  # VL
        ]
    ),
    # Calibrated so the NS baseline's overall bounded slowdown lands on
    # the paper's 3.58 (measured 3.9 at 3000 jobs, seed 7); see
    # EXPERIMENTS.md for the calibration record.
    target_utilization=0.45,
    saturation_load=1.6,
    max_width=336,
    paper_overall_ns_slowdown=3.58,
)

#: SDSC preset -- Table III distribution, 128 processors.
SDSC = TracePreset(
    name="SDSC",
    n_procs=128,
    category_shares=_shares(
        [
            # Seq   N     W    VW
            [8.0, 29.0, 9.0, 4.0],  # VS
            [2.0, 8.0, 5.0, 3.0],  # S
            [8.0, 5.0, 6.0, 1.0],  # L
            [3.0, 5.0, 3.0, 1.0],  # VL
        ]
    ),
    # Calibrated so the NS baseline's overall bounded slowdown lands on
    # the paper's 14.13 (measured 14.5 at 3000 jobs, seed 7).
    target_utilization=0.54,
    saturation_load=1.3,
    max_width=128,
    paper_overall_ns_slowdown=14.13,
)

#: KTH preset -- distribution NOT published in the paper; modelled on the
#: published character of the KTH-SP2 log (short/narrow heavy).
KTH = TracePreset(
    name="KTH",
    n_procs=100,
    category_shares=_shares(
        [
            # Seq   N     W    VW
            [12.0, 22.0, 8.0, 2.0],  # VS
            [8.0, 12.0, 5.0, 2.0],  # S
            [6.0, 8.0, 5.0, 2.0],  # L
            [3.0, 3.0, 1.0, 1.0],  # VL
        ]
    ),
    target_utilization=0.50,
    saturation_load=1.4,
    max_width=100,
)

#: Registry of presets by (case-insensitive) name.
PRESETS: dict[str, TracePreset] = {p.name: p for p in (CTC, SDSC, KTH)}


def get_preset(name: str) -> TracePreset:
    """Look up a preset by name, case-insensitively."""
    key = name.upper()
    if key not in PRESETS:
        raise KeyError(
            f"unknown trace preset {name!r}; available: {sorted(PRESETS)}"
        )
    return PRESETS[key]

"""Calibrated synthetic trace generation.

This is the substitution for the Parallel Workloads Archive logs the
paper simulates (see DESIGN.md section 3).  A generator takes a
:class:`~repro.workload.archive.TracePreset` -- machine size, the paper's
per-category job distribution, a target offered load -- and produces a
job list whose *distributional* properties match what the paper reports:

* category shares equal to Tables II/III (multinomial draw);
* run times log-uniform within each length class (heavy-tailed within
  class, as archive logs are);
* widths: 1 for Seq, uniform on 2-8 for N, 9-32 for W, log-uniform on
  33..max_width for VW (real VW requests skew toward the small end);
* Poisson arrivals with the rate calibrated so offered load equals the
  preset's ``target_utilization`` exactly on the realised sample:
  ``mean interarrival = mean(procs x run_time) / (P x target)``;
* optional diurnal modulation of the arrival rate (archive logs have a
  strong day/night cycle; off by default because the paper's load
  transformation divides submit times, which preserves any cycle);
* per-processor memory uniform on [100 MB, 1 GB] (the paper's own
  substitution for the missing memory field, section V-A);
* user estimates from a pluggable :class:`~repro.workload.estimates.EstimateModel`.

Everything is drawn from a single seeded :class:`numpy.random.Generator`,
so a (preset, n_jobs, seed, estimate model) tuple is fully reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.workload.archive import TracePreset, get_preset
from repro.workload.categories import SIXTEEN_WAY_CATEGORIES
from repro.workload.estimates import AccurateEstimates, EstimateModel
from repro.workload.job import Job

#: Width bounds per width-class label; VW's upper bound comes from the preset.
_WIDTH_RANGES = {"Seq": (1, 1), "N": (2, 8), "W": (9, 32)}


@dataclass
class SyntheticTraceGenerator:
    """Reproducible workload generator for a trace preset.

    Parameters
    ----------
    preset:
        The machine/distribution description (CTC, SDSC, KTH, or custom).
    estimate_model:
        How user estimates relate to actual run times; defaults to
        accurate estimation (the paper's sections III-IV assumption).
    seed:
        Seed for the private RNG; same seed => identical trace.
    memory_range_mb:
        Uniform bounds for per-processor resident set (section V-A).
    diurnal:
        If true, modulate the arrival rate with a 24 h sinusoid
        (amplitude 0.5), approximating the day/night cycle of real logs.
    """

    preset: TracePreset
    estimate_model: EstimateModel = field(default_factory=AccurateEstimates)
    seed: int = 0
    memory_range_mb: tuple[float, float] = (100.0, 1000.0)
    diurnal: bool = False

    def generate(self, n_jobs: int) -> list[Job]:
        """Draw *n_jobs* jobs; returned sorted by submit time, ids 0..n-1."""
        if n_jobs <= 0:
            raise ValueError(f"n_jobs must be positive, got {n_jobs}")
        rng = np.random.default_rng(self.seed)

        cats = self._draw_categories(rng, n_jobs)
        run_times = self._draw_run_times(rng, cats)
        widths = self._draw_widths(rng, cats)
        submits = self._draw_arrivals(rng, run_times, widths)
        estimates = np.maximum(self.estimate_model.estimates(run_times, rng), run_times)
        memory = rng.uniform(*self.memory_range_mb, size=n_jobs)

        order = np.argsort(submits, kind="stable")
        jobs = [
            Job(
                job_id=i,
                submit_time=float(submits[k]),
                run_time=float(run_times[k]),
                estimate=float(estimates[k]),
                procs=int(widths[k]),
                memory_mb=float(memory[k]),
            )
            for i, k in enumerate(order)
        ]
        return jobs

    # ------------------------------------------------------------------
    # sampling stages
    # ------------------------------------------------------------------
    def _draw_categories(
        self, rng: np.random.Generator, n: int
    ) -> list[tuple[str, str]]:
        labels = list(SIXTEEN_WAY_CATEGORIES)
        probs = np.array([self.preset.category_shares[c] for c in labels])
        probs = probs / probs.sum()
        idx = rng.choice(len(labels), size=n, p=probs)
        return [labels[i] for i in idx]

    def _draw_run_times(
        self, rng: np.random.Generator, cats: list[tuple[str, str]]
    ) -> np.ndarray:
        n = len(cats)
        out = np.empty(n)
        bounds = self.preset.runtime_bounds
        u = rng.random(n)
        for i, (length, _width) in enumerate(cats):
            lo, hi = bounds[length]
            out[i] = math.exp(
                math.log(lo) + u[i] * (math.log(hi) - math.log(lo))
            )
        return out

    def _draw_widths(
        self, rng: np.random.Generator, cats: list[tuple[str, str]]
    ) -> np.ndarray:
        n = len(cats)
        out = np.empty(n, dtype=int)
        u = rng.random(n)
        vw_hi = self.preset.max_width
        for i, (_length, width) in enumerate(cats):
            if width in _WIDTH_RANGES:
                lo, hi = _WIDTH_RANGES[width]
                out[i] = lo + int(u[i] * (hi - lo + 1))
                out[i] = min(out[i], hi)
            else:  # VW: log-uniform integers on [33, max_width]
                lo, hi = 33, max(vw_hi, 33)
                val = math.exp(math.log(lo) + u[i] * (math.log(hi + 1) - math.log(lo)))
                out[i] = min(max(int(val), lo), hi)
        return out

    def _draw_arrivals(
        self,
        rng: np.random.Generator,
        run_times: np.ndarray,
        widths: np.ndarray,
    ) -> np.ndarray:
        mean_area = float(np.mean(run_times * widths))
        target = self.preset.target_utilization
        mean_gap = mean_area / (self.preset.n_procs * target)
        gaps = rng.exponential(mean_gap, size=run_times.shape[0])
        if self.diurnal:
            # thin/stretch interarrivals with a 24 h sinusoid: arrivals at
            # simulated "night" are ~3x sparser than at midday peak.
            t = np.cumsum(gaps)
            phase = 2.0 * np.pi * (t % 86400.0) / 86400.0
            gaps = gaps * (1.0 / (1.0 + 0.5 * np.sin(phase)))
        submits = np.cumsum(gaps)
        submits[0] = 0.0  # trace starts with its first arrival
        return submits


def generate_trace(
    preset: str | TracePreset,
    n_jobs: int,
    seed: int = 0,
    estimate_model: EstimateModel | None = None,
    diurnal: bool = False,
) -> list[Job]:
    """One-call trace synthesis.

    Parameters
    ----------
    preset:
        Preset name (``"CTC"``/``"SDSC"``/``"KTH"``) or a
        :class:`TracePreset` instance.
    n_jobs, seed, estimate_model, diurnal:
        Forwarded to :class:`SyntheticTraceGenerator`.
    """
    if isinstance(preset, str):
        preset = get_preset(preset)
    gen = SyntheticTraceGenerator(
        preset=preset,
        estimate_model=estimate_model or AccurateEstimates(),
        seed=seed,
        diurnal=diurnal,
    )
    return gen.generate(n_jobs)

"""Job categorisation grids from the paper.

Table I (16 categories)
-----------------------

======================  ==========================
run time                width (processors)
======================  ==========================
VS: (0, 10 min]         Seq: 1
S:  (10 min, 1 hr]      N (Narrow): 2-8
L:  (1 hr, 8 hr]        W (Wide): 9-32
VL: (8 hr, inf)         VW (Very Wide): > 32
======================  ==========================

Table VI (4 categories, load-variation study)
---------------------------------------------

======================  ==========================
run time                width (processors)
======================  ==========================
S:  (0, 1 hr]           N: <= 8 processors
L:  (1 hr, inf)         W: > 8 processors
======================  ==========================

Categorisation is by **actual** run time.  Section V additionally splits
jobs into *well estimated* (estimate <= 2x actual) and *badly estimated*
(estimate > 2x actual) groups; that split lives in
:func:`estimate_quality` here because it is part of the same
classification vocabulary.
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.workload.job import Job

MINUTE = 60.0
HOUR = 3600.0


class LengthClass(Enum):
    """Run-time classes of Table I."""

    VERY_SHORT = "VS"
    SHORT = "S"
    LONG = "L"
    VERY_LONG = "VL"


class WidthClass(Enum):
    """Width classes of Table I."""

    SEQUENTIAL = "Seq"
    NARROW = "N"
    WIDE = "W"
    VERY_WIDE = "VW"


#: 16-way category label, e.g. ``("VS", "VW")`` -- ordered as the paper's
#: tables read: length rows, width columns.
SixteenWayCategory = tuple[str, str]

#: 4-way category label for the load study, e.g. ``("S", "N")``.
FourWayCategory = tuple[str, str]

#: All 16 categories in table order (length-major).
SIXTEEN_WAY_CATEGORIES: tuple[SixteenWayCategory, ...] = tuple(
    (lc.value, wc.value) for lc in LengthClass for wc in WidthClass
)

#: All 4 load-study categories in table order.
FOUR_WAY_CATEGORIES: tuple[FourWayCategory, ...] = (
    ("S", "N"),
    ("S", "W"),
    ("L", "N"),
    ("L", "W"),
)

#: Run-time boundaries (exclusive lower, inclusive upper) per length class.
LENGTH_BOUNDS: dict[LengthClass, tuple[float, float]] = {
    LengthClass.VERY_SHORT: (0.0, 10 * MINUTE),
    LengthClass.SHORT: (10 * MINUTE, HOUR),
    LengthClass.LONG: (HOUR, 8 * HOUR),
    LengthClass.VERY_LONG: (8 * HOUR, float("inf")),
}

#: Width boundaries (inclusive) per width class.
WIDTH_BOUNDS: dict[WidthClass, tuple[int, int]] = {
    WidthClass.SEQUENTIAL: (1, 1),
    WidthClass.NARROW: (2, 8),
    WidthClass.WIDE: (9, 32),
    WidthClass.VERY_WIDE: (33, 10**9),
}


def length_class(run_time: float) -> LengthClass:
    """Classify a run time (seconds) per Table I."""
    if run_time <= 0:
        raise ValueError(f"run time must be positive, got {run_time}")
    if run_time <= 10 * MINUTE:
        return LengthClass.VERY_SHORT
    if run_time <= HOUR:
        return LengthClass.SHORT
    if run_time <= 8 * HOUR:
        return LengthClass.LONG
    return LengthClass.VERY_LONG


def width_class(procs: int) -> WidthClass:
    """Classify a processor count per Table I."""
    if procs < 1:
        raise ValueError(f"processor count must be >= 1, got {procs}")
    if procs == 1:
        return WidthClass.SEQUENTIAL
    if procs <= 8:
        return WidthClass.NARROW
    if procs <= 32:
        return WidthClass.WIDE
    return WidthClass.VERY_WIDE


def classify_sixteen_way(job: "Job") -> SixteenWayCategory:
    """Table I category of *job* (by actual run time and width)."""
    return (length_class(job.run_time).value, width_class(job.procs).value)


def classify_four_way(job: "Job") -> FourWayCategory:
    """Table VI category of *job* for the load-variation study."""
    length = "S" if job.run_time <= HOUR else "L"
    width = "N" if job.procs <= 8 else "W"
    return (length, width)


def estimate_quality(job: "Job") -> str:
    """Section V estimation-quality group.

    Returns ``"well"`` when the user estimate is at most twice the actual
    run time, else ``"badly"``.
    """
    return "well" if job.estimate <= 2.0 * job.run_time else "badly"


def category_label(category: tuple[str, str]) -> str:
    """Human-readable label, e.g. ``"VS VW"`` -- matches the paper's axes."""
    return f"{category[0]} {category[1]}"

"""Load scaling (section VI).

The paper varies offered load by "dividing the arrival times of the jobs
by suitable constants, keeping their run time the same as in the original
trace": a load factor of 1.1 compresses every submit time by 1.1x, which
raises the arrival rate (and hence offered load) by 10% without touching
the job mix.

:func:`scale_load` applies exactly that transformation to a job list.
"""

from __future__ import annotations

from repro.workload.job import Job


def scale_load(jobs: list[Job], load_factor: float) -> list[Job]:
    """Return fresh copies of *jobs* with submit times divided by *load_factor*.

    Parameters
    ----------
    jobs:
        The base trace.  Jobs are copied (via :meth:`Job.copy_static`), so
        the originals stay reusable.
    load_factor:
        > 0.  Values above 1 increase load; 1.0 returns an unscaled copy;
        values below 1 thin the load (useful for sanity sweeps).

    Notes
    -----
    Run times, estimates, widths and memory are untouched, matching the
    paper's methodology.  Relative ordering of arrivals is preserved.
    """
    if load_factor <= 0:
        raise ValueError(f"load factor must be positive, got {load_factor}")
    return [
        Job(
            job_id=job.job_id,
            submit_time=job.submit_time / load_factor,
            run_time=job.run_time,
            estimate=job.estimate,
            procs=job.procs,
            memory_mb=job.memory_mb,
            user=job.user,
        )
        for job in jobs
    ]

"""Standard Workload Format (SWF) I/O.

The Parallel Workloads Archive distributes logs in SWF: one line per job,
18 whitespace-separated fields, ``;`` comment lines carrying header
metadata.  This module parses the full record (so real CTC/SDSC/KTH logs
can replace the synthetic generators) and converts records into
:class:`~repro.workload.job.Job` objects with the usual hygiene filters.

SWF fields (1-based, as documented by the archive)::

     1 job number            10 requested memory (KB per node)
     2 submit time (s)       11 status
     3 wait time (s)         12 user id
     4 run time (s)          13 group id
     5 allocated processors  14 executable id
     6 avg cpu time used     15 queue number
     7 used memory (KB)      16 partition number
     8 requested processors  17 preceding job number
     9 requested time (s)    18 think time from preceding job

Missing values are ``-1`` throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.workload.job import Job

#: Number of data fields in an SWF record.
SWF_FIELD_COUNT = 18


@dataclass(frozen=True)
class SWFRecord:
    """One parsed SWF line, faithful to the file (no filtering)."""

    job_number: int
    submit_time: float
    wait_time: float
    run_time: float
    allocated_procs: int
    avg_cpu_time: float
    used_memory_kb: float
    requested_procs: int
    requested_time: float
    requested_memory_kb: float
    status: int
    user_id: int
    group_id: int
    executable: int
    queue: int
    partition: int
    preceding_job: int
    think_time: float

    @classmethod
    def from_line(cls, line: str) -> "SWFRecord":
        """Parse one SWF data line.

        Raises
        ------
        ValueError
            If the line does not have exactly 18 numeric fields.
        """
        parts = line.split()
        if len(parts) != SWF_FIELD_COUNT:
            raise ValueError(
                f"SWF line has {len(parts)} fields, expected {SWF_FIELD_COUNT}: "
                f"{line[:80]!r}"
            )
        f = [float(p) for p in parts]
        return cls(
            job_number=int(f[0]),
            submit_time=f[1],
            wait_time=f[2],
            run_time=f[3],
            allocated_procs=int(f[4]),
            avg_cpu_time=f[5],
            used_memory_kb=f[6],
            requested_procs=int(f[7]),
            requested_time=f[8],
            requested_memory_kb=f[9],
            status=int(f[10]),
            user_id=int(f[11]),
            group_id=int(f[12]),
            executable=int(f[13]),
            queue=int(f[14]),
            partition=int(f[15]),
            preceding_job=int(f[16]),
            think_time=f[17],
        )

    def to_line(self) -> str:
        """Serialise back to a canonical SWF data line."""

        def num(x: float) -> str:
            return str(int(x)) if float(x).is_integer() else f"{x:.2f}"

        fields = [
            self.job_number,
            self.submit_time,
            self.wait_time,
            self.run_time,
            self.allocated_procs,
            self.avg_cpu_time,
            self.used_memory_kb,
            self.requested_procs,
            self.requested_time,
            self.requested_memory_kb,
            self.status,
            self.user_id,
            self.group_id,
            self.executable,
            self.queue,
            self.partition,
            self.preceding_job,
            self.think_time,
        ]
        return " ".join(num(v) for v in fields)


def iter_swf(stream: TextIO) -> Iterator[SWFRecord]:
    """Yield records from an open SWF stream, skipping comments/blanks."""
    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        try:
            yield SWFRecord.from_line(line)
        except ValueError as exc:
            raise ValueError(f"line {lineno}: {exc}") from exc


def read_swf(path: str | Path) -> list[SWFRecord]:
    """Parse an SWF file into a list of records."""
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        return list(iter_swf(fh))


def read_swf_header(path: str | Path) -> dict[str, str]:
    """Extract ``; Key: value`` header metadata from an SWF file."""
    out: dict[str, str] = {}
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        for raw in fh:
            line = raw.strip()
            if not line.startswith(";"):
                break
            body = line.lstrip("; ").strip()
            if ":" in body:
                key, _, value = body.partition(":")
                out[key.strip()] = value.strip()
    return out


def write_swf(
    path: str | Path,
    records: Iterable[SWFRecord],
    header: dict[str, str] | None = None,
) -> int:
    """Write records as an SWF file; returns the number of lines written."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for key, value in (header or {}).items():
            fh.write(f"; {key}: {value}\n")
        for rec in records:
            fh.write(rec.to_line() + "\n")
            n += 1
    return n


def jobs_from_swf_records(
    records: Iterable[SWFRecord],
    max_procs: int | None = None,
    min_run_time: float = 1.0,
    use_requested_procs: bool = True,
    rebase_time: bool = True,
) -> list[Job]:
    """Convert SWF records to simulate-ready :class:`Job` objects.

    Applies the standard hygiene filters used in scheduling studies:

    * drop jobs with nonpositive run time or processor count (cancelled
      before start, or corrupt records);
    * clamp run times below *min_run_time* up to it;
    * estimates: use the requested time where present, else fall back to
      the run time (accurate); always at least the run time's floor of 1 s
      (schedulers need a positive planning horizon) -- note real logs can
      have estimate < run time (killed at the limit, logged longer); we
      preserve that, schedulers must tolerate it;
    * optionally drop jobs wider than *max_procs* (they could never run);
    * rebase submit times so the trace starts at t=0.

    Memory: SWF requested memory is KB per node; converted to MB per
    processor for the overhead model when present.
    """
    jobs: list[Job] = []
    for rec in records:
        procs = rec.requested_procs if use_requested_procs else rec.allocated_procs
        if procs <= 0:
            procs = max(rec.allocated_procs, rec.requested_procs)
        if procs <= 0:
            continue
        if rec.run_time <= 0:
            continue
        if max_procs is not None and procs > max_procs:
            continue
        run_time = max(rec.run_time, min_run_time)
        estimate = rec.requested_time if rec.requested_time > 0 else run_time
        estimate = max(estimate, 1.0)
        memory_mb = rec.requested_memory_kb / 1024.0 if rec.requested_memory_kb > 0 else 0.0
        jobs.append(
            Job(
                job_id=rec.job_number,
                submit_time=max(rec.submit_time, 0.0),
                run_time=run_time,
                estimate=estimate,
                procs=procs,
                memory_mb=memory_mb,
                user=rec.user_id,
            )
        )
    jobs.sort(key=lambda j: (j.submit_time, j.job_id))
    if rebase_time and jobs:
        t0 = jobs[0].submit_time
        if t0 > 0:
            rebased = []
            for j in jobs:
                rebased.append(
                    Job(
                        job_id=j.job_id,
                        submit_time=j.submit_time - t0,
                        run_time=j.run_time,
                        estimate=j.estimate,
                        procs=j.procs,
                        memory_mb=j.memory_mb,
                        user=j.user,
                    )
                )
            jobs = rebased
    return jobs


def jobs_to_swf_records(jobs: Iterable[Job]) -> list[SWFRecord]:
    """Convert jobs back to SWF records (round-trip support)."""
    out = []
    for j in jobs:
        out.append(
            SWFRecord(
                job_number=j.job_id,
                submit_time=j.submit_time,
                wait_time=-1.0,
                run_time=j.run_time,
                allocated_procs=j.procs,
                avg_cpu_time=-1.0,
                used_memory_kb=-1.0,
                requested_procs=j.procs,
                requested_time=j.estimate,
                requested_memory_kb=j.memory_mb * 1024.0 if j.memory_mb else -1.0,
                status=1,
                user_id=j.user,
                group_id=-1,
                executable=-1,
                queue=-1,
                partition=-1,
                preceding_job=-1,
                think_time=-1.0,
            )
        )
    return out

"""Standard Workload Format (SWF) I/O: eager and streaming.

The Parallel Workloads Archive distributes logs in SWF: one line per job,
18 whitespace-separated fields, ``;`` comment lines carrying header
metadata.  This module parses the full record (so real CTC/SDSC/KTH logs
can replace the synthetic generators) and converts records into
:class:`~repro.workload.job.Job` objects with the usual hygiene filters.

Two reading modes:

* the original **eager** helpers (:func:`read_swf`,
  :func:`jobs_from_swf_records`) materialise the whole log -- fine for
  synthetic seeds and tests;
* the **streaming** layer (:class:`SWFReader`, :func:`stream_swf`,
  :func:`stream_jobs`, :func:`scan_swf`) holds O(1) records in memory,
  parses header directives into a typed :class:`SWFHeader`, validates
  each record as it passes, and powers the archive-scale pipeline in
  :mod:`repro.workload.pipeline` (see ``docs/WORKLOADS.md``).

SWF fields (1-based, as documented by the archive)::

     1 job number            10 requested memory (KB per node)
     2 submit time (s)       11 status
     3 wait time (s)         12 user id
     4 run time (s)          13 group id
     5 allocated processors  14 executable id
     6 avg cpu time used     15 queue number
     7 used memory (KB)      16 partition number
     8 requested processors  17 preceding job number
     9 requested time (s)    18 think time from preceding job

Missing values are ``-1`` throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from types import TracebackType
from typing import IO, Iterable, Iterator, Literal, Mapping, TextIO

from repro.workload.job import Job

#: Number of data fields in an SWF record.
SWF_FIELD_COUNT = 18

#: SWF ``status`` field values (archive definition).  Partial-execution
#: checkpoints (2-4) appear only in a handful of logs.
STATUS_FAILED = 0
STATUS_COMPLETED = 1
STATUS_PARTIAL_TO_BE_CONTINUED = 2
STATUS_PARTIAL_LAST = 3
STATUS_PARTIAL_FAILED = 4
STATUS_CANCELLED = 5

#: Queue number the archive suggests for interactive jobs ("it is
#: suggested to use queue 0 for interactive jobs").
INTERACTIVE_QUEUE = 0


@dataclass(frozen=True)
class SWFRecord:
    """One parsed SWF line, faithful to the file (no filtering)."""

    job_number: int
    submit_time: float
    wait_time: float
    run_time: float
    allocated_procs: int
    avg_cpu_time: float
    used_memory_kb: float
    requested_procs: int
    requested_time: float
    requested_memory_kb: float
    status: int
    user_id: int
    group_id: int
    executable: int
    queue: int
    partition: int
    preceding_job: int
    think_time: float

    @classmethod
    def from_line(cls, line: str) -> "SWFRecord":
        """Parse one SWF data line.

        Raises
        ------
        ValueError
            If the line does not have exactly 18 numeric fields.
        """
        parts = line.split()
        if len(parts) != SWF_FIELD_COUNT:
            raise ValueError(
                f"SWF line has {len(parts)} fields, expected {SWF_FIELD_COUNT}: "
                f"{line[:80]!r}"
            )
        f = [float(p) for p in parts]
        return cls(
            job_number=int(f[0]),
            submit_time=f[1],
            wait_time=f[2],
            run_time=f[3],
            allocated_procs=int(f[4]),
            avg_cpu_time=f[5],
            used_memory_kb=f[6],
            requested_procs=int(f[7]),
            requested_time=f[8],
            requested_memory_kb=f[9],
            status=int(f[10]),
            user_id=int(f[11]),
            group_id=int(f[12]),
            executable=int(f[13]),
            queue=int(f[14]),
            partition=int(f[15]),
            preceding_job=int(f[16]),
            think_time=f[17],
        )

    @property
    def is_interactive(self) -> bool:
        """Archive convention: queue 0 is the interactive queue.

        ``False`` for batch jobs *and* for logs that do not record a
        queue (queue = -1); callers that care about the distinction
        should check ``queue >= 0`` first.
        """
        return self.queue == INTERACTIVE_QUEUE

    def status_label(self) -> str:
        """Human-readable status (``"completed"``, ``"failed"``, ...)."""
        return _STATUS_LABELS.get(self.status, f"unknown({self.status})")

    def to_line(self) -> str:
        """Serialise back to a canonical SWF data line."""

        def num(x: float) -> str:
            return str(int(x)) if float(x).is_integer() else f"{x:.2f}"

        fields = [
            self.job_number,
            self.submit_time,
            self.wait_time,
            self.run_time,
            self.allocated_procs,
            self.avg_cpu_time,
            self.used_memory_kb,
            self.requested_procs,
            self.requested_time,
            self.requested_memory_kb,
            self.status,
            self.user_id,
            self.group_id,
            self.executable,
            self.queue,
            self.partition,
            self.preceding_job,
            self.think_time,
        ]
        return " ".join(num(v) for v in fields)


_STATUS_LABELS = {
    STATUS_FAILED: "failed",
    STATUS_COMPLETED: "completed",
    STATUS_PARTIAL_TO_BE_CONTINUED: "partial (continued)",
    STATUS_PARTIAL_LAST: "partial (last)",
    STATUS_PARTIAL_FAILED: "partial (failed)",
    STATUS_CANCELLED: "cancelled",
    -1: "unknown",
}


def parse_header_directive(line: str) -> tuple[str, str] | None:
    """Parse one ``; Key: value`` header-directive line, if it is one.

    Plain comments (no colon, or an empty key) return ``None``; they are
    legal SWF but carry no metadata.
    """
    stripped = line.strip()
    if not stripped.startswith(";"):
        return None
    body = stripped.lstrip("; \t").strip()
    key, sep, value = body.partition(":")
    if not sep or not key.strip():
        return None
    return key.strip(), value.strip()


@dataclass(frozen=True)
class SWFHeader:
    """Typed view of an SWF preamble's ``; Key: value`` directives.

    ``directives`` preserves every directive verbatim (first occurrence
    wins, matching :func:`read_swf_header`); the properties decode the
    handful the pipeline acts on.  A directive that fails to parse as
    its expected type reads as ``None`` rather than raising -- archive
    headers are hand-edited text.
    """

    directives: Mapping[str, str] = field(default_factory=dict)

    def _int(self, key: str) -> int | None:
        raw = self.directives.get(key)
        if raw is None:
            return None
        try:
            return int(raw.split()[0])
        except (ValueError, IndexError):
            return None

    @property
    def computer(self) -> str | None:
        """The ``Computer`` directive (machine description), if present."""
        return self.directives.get("Computer")

    @property
    def max_nodes(self) -> int | None:
        """``MaxNodes``: number of nodes in the machine."""
        return self._int("MaxNodes")

    @property
    def max_procs(self) -> int | None:
        """``MaxProcs``: number of processors in the machine."""
        return self._int("MaxProcs")

    @property
    def max_jobs(self) -> int | None:
        """``MaxJobs``: number of data lines the header promises."""
        return self._int("MaxJobs")

    @property
    def unix_start_time(self) -> int | None:
        """``UnixStartTime``: epoch seconds of the log's t=0."""
        return self._int("UnixStartTime")

    def machine_procs(self) -> int | None:
        """Best-effort machine size: ``MaxProcs``, else ``MaxNodes``.

        The width-validation default for :func:`scan_swf` and the
        ``repro-sched workload`` commands when the caller gives none.
        """
        return self.max_procs if self.max_procs is not None else self.max_nodes


#: What a malformed data line does to a streaming read: ``"raise"``
#: stops with :class:`ValueError` (the default -- a corrupt archive log
#: should be looked at), ``"skip"`` drops the line and counts it.
MalformedPolicy = Literal["raise", "skip"]


class SWFReader:
    """Constant-memory streaming reader for one SWF log.

    Opens the file lazily, parses the ``;`` preamble into a typed
    :class:`SWFHeader`, then yields :class:`SWFRecord` objects one line
    at a time -- peak memory is one record regardless of log length
    (the bench gate asserts this on a 100k-job log).  Usable as a
    context manager and as an iterator::

        with SWFReader("CTC-SP2.swf") as reader:
            print(reader.header.machine_procs())
            for record in reader:
                ...

    Parameters
    ----------
    source:
        Path to an SWF file, or an already-open text stream (the caller
        keeps ownership of a passed-in stream; paths are closed by
        :meth:`close` / the context manager).
    on_malformed:
        ``"raise"`` (default) propagates a :class:`ValueError` naming
        the line number; ``"skip"`` drops bad lines and counts them in
        :attr:`malformed_lines`.
    """

    def __init__(
        self,
        source: str | Path | IO[str],
        on_malformed: MalformedPolicy = "raise",
    ) -> None:
        if on_malformed not in ("raise", "skip"):
            raise ValueError(f"on_malformed must be 'raise' or 'skip', got {on_malformed!r}")
        self._path: Path | None
        self._stream: IO[str] | None
        if isinstance(source, (str, Path)):
            self._path = Path(source)
            self._stream = None
            self._owns_stream = True
        else:
            self._path = None
            self._stream = source
            self._owns_stream = False
        self.on_malformed: MalformedPolicy = on_malformed
        self._header: SWFHeader | None = None
        #: first data line seen while scanning the preamble (replayed
        #: by the record iterator), with its line number
        self._pending: tuple[int, str] | None = None
        self._lineno = 0
        self._iterating = False
        #: data lines parsed so far
        self.records_read = 0
        #: malformed data lines dropped so far (``on_malformed="skip"``)
        self.malformed_lines = 0

    # -- lifecycle -----------------------------------------------------
    def _ensure_open(self) -> IO[str]:
        if self._stream is None:
            assert self._path is not None
            self._stream = open(self._path, "r", encoding="utf-8", errors="replace")
        return self._stream

    def close(self) -> None:
        """Close the underlying file if this reader opened it."""
        if self._stream is not None and self._owns_stream:
            self._stream.close()
        self._stream = None if self._owns_stream else self._stream

    def __enter__(self) -> "SWFReader":
        self._ensure_open()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    # -- header --------------------------------------------------------
    @property
    def header(self) -> SWFHeader:
        """The preamble's directives, parsed on first access.

        Reads forward only as far as the first data line (which is
        buffered, not lost).  Directives appearing *after* data lines
        are plain comments per the SWF spec and are ignored.
        """
        if self._header is None:
            self._scan_preamble()
            assert self._header is not None
        return self._header

    def _scan_preamble(self) -> None:
        stream = self._ensure_open()
        directives: dict[str, str] = {}
        for raw in stream:
            self._lineno += 1
            line = raw.strip()
            if not line:
                continue
            if line.startswith(";"):
                parsed = parse_header_directive(line)
                if parsed is not None and parsed[0] not in directives:
                    directives[parsed[0]] = parsed[1]
                continue
            self._pending = (self._lineno, line)
            break
        self._header = SWFHeader(directives)

    # -- records -------------------------------------------------------
    def __iter__(self) -> Iterator[SWFRecord]:
        if self._iterating:
            raise RuntimeError("SWFReader is single-pass; create a new reader to re-read")
        self._iterating = True
        return self._records()

    def _parse(self, lineno: int, line: str) -> SWFRecord | None:
        try:
            record = SWFRecord.from_line(line)
        except ValueError as exc:
            if self.on_malformed == "raise":
                raise ValueError(f"line {lineno}: {exc}") from exc
            self.malformed_lines += 1
            return None
        self.records_read += 1
        return record

    def _records(self) -> Iterator[SWFRecord]:
        if self._header is None:
            self._scan_preamble()
        if self._pending is not None:
            lineno, line = self._pending
            self._pending = None
            record = self._parse(lineno, line)
            if record is not None:
                yield record
        stream = self._ensure_open()
        for raw in stream:
            self._lineno += 1
            line = raw.strip()
            if not line or line.startswith(";"):
                continue
            record = self._parse(self._lineno, line)
            if record is not None:
                yield record

    def iter_chunks(self, chunk_size: int) -> Iterator[list[SWFRecord]]:
        """Yield records in lists of at most *chunk_size* (the last may be short)."""
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        chunk: list[SWFRecord] = []
        for record in self:
            chunk.append(record)
            if len(chunk) >= chunk_size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk


def stream_swf(
    path: str | Path, on_malformed: MalformedPolicy = "raise"
) -> Iterator[SWFRecord]:
    """Stream records from *path* with constant memory; closes the file when done."""
    with SWFReader(path, on_malformed=on_malformed) as reader:
        yield from reader


def iter_swf(stream: TextIO) -> Iterator[SWFRecord]:
    """Yield records from an open SWF stream, skipping comments/blanks."""
    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        try:
            yield SWFRecord.from_line(line)
        except ValueError as exc:
            raise ValueError(f"line {lineno}: {exc}") from exc


def read_swf(path: str | Path) -> list[SWFRecord]:
    """Parse an SWF file into a list of records."""
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        return list(iter_swf(fh))


def read_swf_header(path: str | Path) -> dict[str, str]:
    """Extract ``; Key: value`` header metadata from an SWF file.

    Thin eager wrapper over :attr:`SWFReader.header`; prefer the reader
    when you also need the records (one pass instead of two).
    """
    with SWFReader(path) as reader:
        return dict(reader.header.directives)


# ----------------------------------------------------------------------
# streaming validation / anomaly scan
# ----------------------------------------------------------------------
@dataclass
class SWFScanReport:
    """What one streaming validation pass found (``repro-sched workload validate``).

    Every counter is over *data* records; ``examples`` keeps the first
    few offending job numbers per anomaly kind so the report is
    actionable without a second pass.
    """

    records: int = 0
    #: data lines that did not parse as 18 numeric fields
    malformed_lines: int = 0
    #: run time <= 0 (cancelled before start, or corrupt)
    nonpositive_run_time: int = 0
    #: neither requested nor allocated processors positive
    nonpositive_width: int = 0
    #: submit time earlier than the record before it
    out_of_order_submits: int = 0
    #: width exceeds the machine size (from the header or the caller)
    too_wide: int = 0
    #: requested time missing (-1); the loader falls back to run time
    missing_estimate: int = 0
    #: estimate below actual run time (killed at the limit, logged longer)
    underestimates: int = 0
    #: jobs in the archive's interactive queue (queue 0)
    interactive: int = 0
    #: status value -> count (``-1`` = unrecorded)
    status_counts: dict[int, int] = field(default_factory=dict)
    #: anomaly kind -> first few job numbers exhibiting it
    examples: dict[str, list[int]] = field(default_factory=dict)
    #: machine size the width check used (None = check skipped)
    machine_procs: int | None = None

    _EXAMPLE_CAP = 5

    def _note(self, kind: str, job_number: int) -> None:
        bucket = self.examples.setdefault(kind, [])
        if len(bucket) < self._EXAMPLE_CAP:
            bucket.append(job_number)

    @property
    def anomalies(self) -> int:
        """Total anomalous observations (a record may contribute several)."""
        return (
            self.malformed_lines
            + self.nonpositive_run_time
            + self.nonpositive_width
            + self.out_of_order_submits
            + self.too_wide
            + self.underestimates
        )

    @property
    def clean(self) -> bool:
        """True when the log would stream through the pipeline unfiltered."""
        return self.anomalies == 0

    def observe(self, record: SWFRecord, prev_submit: float | None) -> None:
        """Fold one record into the report (records must arrive in file order)."""
        self.records += 1
        self.status_counts[record.status] = self.status_counts.get(record.status, 0) + 1
        if record.run_time <= 0:
            self.nonpositive_run_time += 1
            self._note("nonpositive_run_time", record.job_number)
        width = max(record.requested_procs, record.allocated_procs)
        if width <= 0:
            self.nonpositive_width += 1
            self._note("nonpositive_width", record.job_number)
        elif self.machine_procs is not None and width > self.machine_procs:
            self.too_wide += 1
            self._note("too_wide", record.job_number)
        if prev_submit is not None and record.submit_time < prev_submit:
            self.out_of_order_submits += 1
            self._note("out_of_order_submits", record.job_number)
        if record.requested_time <= 0:
            self.missing_estimate += 1
        elif record.run_time > 0 and record.requested_time < record.run_time:
            self.underestimates += 1
            self._note("underestimates", record.job_number)
        if record.queue >= 0 and record.is_interactive:
            self.interactive += 1


def scan_swf(
    path: str | Path, machine_procs: int | None = None
) -> tuple[SWFHeader, SWFScanReport]:
    """One streaming validation pass over *path*.

    Parameters
    ----------
    path:
        The SWF log.
    machine_procs:
        Machine size for the width check; ``None`` takes the header's
        ``MaxProcs``/``MaxNodes`` (and skips the check if the header has
        neither).

    Returns the parsed header and the filled :class:`SWFScanReport`.
    Malformed lines are counted, never fatal -- validation exists to
    describe a log, not to fall over on it.
    """
    with SWFReader(path, on_malformed="skip") as reader:
        header = reader.header
        report = SWFScanReport(
            machine_procs=(
                machine_procs if machine_procs is not None else header.machine_procs()
            )
        )
        prev_submit: float | None = None
        for record in reader:
            report.observe(record, prev_submit)
            prev_submit = record.submit_time
        report.malformed_lines = reader.malformed_lines
    return header, report


def format_scan_report(report: SWFScanReport) -> str:
    """Human-readable anomaly report for ``repro-sched workload validate``."""
    lines = [
        f"records: {report.records}   anomalies: {report.anomalies}"
        + ("   (clean)" if report.clean else ""),
    ]
    rows = [
        (None, "malformed lines", report.malformed_lines),
        ("nonpositive_run_time", "nonpositive run time", report.nonpositive_run_time),
        ("nonpositive_width", "nonpositive width", report.nonpositive_width),
        ("out_of_order_submits", "out-of-order submits", report.out_of_order_submits),
        (
            "too_wide",
            "width > machine"
            + (f" ({report.machine_procs} procs)" if report.machine_procs else ""),
            report.too_wide,
        ),
        ("underestimates", "estimate < run time", report.underestimates),
        (None, "missing estimates (fallback: run time)", report.missing_estimate),
        (None, "interactive-queue jobs", report.interactive),
    ]
    for key, label, count in rows:
        if count:
            examples = report.examples.get(key, []) if key else []
            suffix = f"   e.g. jobs {examples}" if examples else ""
            lines.append(f"  {label}: {count}{suffix}")
    if report.status_counts:
        by_status = ", ".join(
            f"{_STATUS_LABELS.get(s, s)}: {n}"
            for s, n in sorted(report.status_counts.items())
        )
        lines.append(f"  statuses: {by_status}")
    return "\n".join(lines)


def stream_jobs(
    records: Iterable[SWFRecord],
    max_procs: int | None = None,
    min_run_time: float = 1.0,
    use_requested_procs: bool = True,
    rebase_time: bool = True,
    keep_statuses: frozenset[int] | None = None,
    drop_interactive: bool = False,
    require_sorted: bool = True,
) -> Iterator[Job]:
    """Streaming twin of :func:`jobs_from_swf_records` (same hygiene filters).

    Yields simulate-ready jobs one at a time with O(1) memory.  The one
    semantic difference from the eager path: a stream cannot be sorted,
    so the input must already be in nondecreasing submit order (true of
    archive logs; verify with :func:`scan_swf`).  With
    ``require_sorted=True`` (default) an out-of-order submit raises;
    ``False`` passes records through in file order, which changes
    arrival tie-breaking versus the eager path -- only disable it for
    logs you have deliberately left unsorted.

    Additional stream-only filters:

    keep_statuses:
        Keep only records whose ``status`` is in the set (``None`` =
        keep all, matching the eager path).  Records with status ``-1``
        (unrecorded) are always kept.
    drop_interactive:
        Drop records in the archive's interactive queue (queue 0).
    """
    prev_submit: float | None = None
    t0: float | None = None
    for rec in records:
        if require_sorted and prev_submit is not None and rec.submit_time < prev_submit:
            raise ValueError(
                f"record {rec.job_number}: submit time {rec.submit_time} is before "
                f"the previous record's {prev_submit}; streaming conversion needs a "
                "submit-sorted log (see docs/WORKLOADS.md)"
            )
        prev_submit = rec.submit_time
        if keep_statuses is not None and rec.status >= 0 and rec.status not in keep_statuses:
            continue
        if drop_interactive and rec.queue >= 0 and rec.is_interactive:
            continue
        procs = rec.requested_procs if use_requested_procs else rec.allocated_procs
        if procs <= 0:
            procs = max(rec.allocated_procs, rec.requested_procs)
        if procs <= 0:
            continue
        if rec.run_time <= 0:
            continue
        if max_procs is not None and procs > max_procs:
            continue
        run_time = max(rec.run_time, min_run_time)
        estimate = rec.requested_time if rec.requested_time > 0 else run_time
        estimate = max(estimate, 1.0)
        memory_mb = rec.requested_memory_kb / 1024.0 if rec.requested_memory_kb > 0 else 0.0
        submit = max(rec.submit_time, 0.0)
        if rebase_time:
            if t0 is None:
                t0 = submit
            submit -= t0
        yield Job(
            job_id=rec.job_number,
            submit_time=submit,
            run_time=run_time,
            estimate=estimate,
            procs=procs,
            memory_mb=memory_mb,
            user=rec.user_id,
        )


def write_swf(
    path: str | Path,
    records: Iterable[SWFRecord],
    header: dict[str, str] | None = None,
) -> int:
    """Write records as an SWF file; returns the number of lines written."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for key, value in (header or {}).items():
            fh.write(f"; {key}: {value}\n")
        for rec in records:
            fh.write(rec.to_line() + "\n")
            n += 1
    return n


def jobs_from_swf_records(
    records: Iterable[SWFRecord],
    max_procs: int | None = None,
    min_run_time: float = 1.0,
    use_requested_procs: bool = True,
    rebase_time: bool = True,
) -> list[Job]:
    """Convert SWF records to simulate-ready :class:`Job` objects.

    Applies the standard hygiene filters used in scheduling studies:

    * drop jobs with nonpositive run time or processor count (cancelled
      before start, or corrupt records);
    * clamp run times below *min_run_time* up to it;
    * estimates: use the requested time where present, else fall back to
      the run time (accurate); always at least the run time's floor of 1 s
      (schedulers need a positive planning horizon) -- note real logs can
      have estimate < run time (killed at the limit, logged longer); we
      preserve that, schedulers must tolerate it;
    * optionally drop jobs wider than *max_procs* (they could never run);
    * rebase submit times so the trace starts at t=0.

    Memory: SWF requested memory is KB per node; converted to MB per
    processor for the overhead model when present.
    """
    jobs: list[Job] = []
    for rec in records:
        procs = rec.requested_procs if use_requested_procs else rec.allocated_procs
        if procs <= 0:
            procs = max(rec.allocated_procs, rec.requested_procs)
        if procs <= 0:
            continue
        if rec.run_time <= 0:
            continue
        if max_procs is not None and procs > max_procs:
            continue
        run_time = max(rec.run_time, min_run_time)
        estimate = rec.requested_time if rec.requested_time > 0 else run_time
        estimate = max(estimate, 1.0)
        memory_mb = rec.requested_memory_kb / 1024.0 if rec.requested_memory_kb > 0 else 0.0
        jobs.append(
            Job(
                job_id=rec.job_number,
                submit_time=max(rec.submit_time, 0.0),
                run_time=run_time,
                estimate=estimate,
                procs=procs,
                memory_mb=memory_mb,
                user=rec.user_id,
            )
        )
    jobs.sort(key=lambda j: (j.submit_time, j.job_id))
    if rebase_time and jobs:
        t0 = jobs[0].submit_time
        if t0 > 0:
            rebased = []
            for j in jobs:
                rebased.append(
                    Job(
                        job_id=j.job_id,
                        submit_time=j.submit_time - t0,
                        run_time=j.run_time,
                        estimate=j.estimate,
                        procs=j.procs,
                        memory_mb=j.memory_mb,
                        user=j.user,
                    )
                )
            jobs = rebased
    return jobs


def jobs_to_swf_records(jobs: Iterable[Job]) -> list[SWFRecord]:
    """Convert jobs back to SWF records (round-trip support)."""
    out = []
    for j in jobs:
        out.append(
            SWFRecord(
                job_number=j.job_id,
                submit_time=j.submit_time,
                wait_time=-1.0,
                run_time=j.run_time,
                allocated_procs=j.procs,
                avg_cpu_time=-1.0,
                used_memory_kb=-1.0,
                requested_procs=j.procs,
                requested_time=j.estimate,
                requested_memory_kb=j.memory_mb * 1024.0 if j.memory_mb else -1.0,
                status=1,
                user_id=j.user,
                group_id=-1,
                executable=-1,
                queue=-1,
                partition=-1,
                preceding_job=-1,
                think_time=-1.0,
            )
        )
    return out


def write_synthetic_swf(
    path: str | Path, n_jobs: int, n_procs: int = 128, mean_gap: float = 30.0
) -> None:
    """Write a deterministic *n_jobs*-line SWF log with O(1) memory.

    An arithmetic job mix (cycling run times, widths and over-estimation
    factors; no RNG, no numpy) intended for ingestion benchmarks, the
    peak-RSS gate and big-log tests -- places that need a *large*,
    *reproducible* log cheaply.  It is **not** calibrated to any archive
    trace; experiments should use :mod:`repro.workload.synthetic` or a
    real log.  Submit times are nondecreasing, so the log streams
    through :func:`stream_jobs` and shards cleanly.
    """
    if n_jobs < 0:
        raise ValueError(f"n_jobs must be nonnegative, got {n_jobs}")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("; Computer: Synthetic ingest rig\n")
        fh.write(f"; MaxProcs: {n_procs}\n")
        fh.write(f"; MaxJobs: {n_jobs}\n")
        fh.write("; Note: deterministic arithmetic mix (write_synthetic_swf)\n")
        submit = 0
        width_cap = min(64, n_procs)
        for i in range(1, n_jobs + 1):
            submit += (i * 7) % (2 * int(mean_gap)) + 1
            run = 60 + (i * 37) % 7200
            procs = 1 + (i * 13) % width_cap
            estimate = run * (1 + i % 4)
            user = 1 + i % 50
            fh.write(
                f"{i} {submit} -1 {run} {procs} -1 -1 {procs} {estimate} -1 "
                f"1 {user} 1 -1 1 -1 -1 -1\n"
            )

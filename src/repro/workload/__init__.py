"""Workloads: the job model, trace I/O, categorisation and generators.

* :mod:`repro.workload.job` -- the :class:`~repro.workload.job.Job`
  lifecycle object (submit -> queued -> running <-> suspended -> finished)
  with the wait/run clock separation the xfactor priority depends on.
* :mod:`repro.workload.swf` -- Standard Workload Format parser/writer so
  real Parallel Workloads Archive logs (CTC, SDSC, KTH, ...) drop in;
  eager helpers plus a constant-memory streaming reader and validator.
* :mod:`repro.workload.pipeline` -- lazy transformation stages over job
  streams (load scaling, estimate models, category filtering) with a
  cache-keying config fingerprint (see docs/WORKLOADS.md).
* :mod:`repro.workload.categories` -- the paper's 16-way (Table I) and
  4-way (Table VI) job classification grids.
* :mod:`repro.workload.synthetic` -- calibrated synthetic trace
  generators standing in for the archive logs (see DESIGN.md section 3).
* :mod:`repro.workload.estimates` -- user run-time estimate models
  (accurate / inaccurate with a badly-estimated fraction).
* :mod:`repro.workload.load` -- load scaling by compressing arrivals.
* :mod:`repro.workload.archive` -- presets describing each modelled
  machine/trace.
"""

from repro.workload.job import Job, JobState
from repro.workload.categories import (
    FourWayCategory,
    LengthClass,
    SixteenWayCategory,
    WidthClass,
    classify_four_way,
    classify_sixteen_way,
    length_class,
    width_class,
    FOUR_WAY_CATEGORIES,
    SIXTEEN_WAY_CATEGORIES,
)
from repro.workload.archive import TracePreset, CTC, SDSC, KTH, PRESETS
from repro.workload.synthetic import SyntheticTraceGenerator, generate_trace
from repro.workload.estimates import (
    AccurateEstimates,
    EstimateModel,
    InaccurateEstimates,
    PerfectWithNoise,
)
from repro.workload.load import scale_load
from repro.workload.pipeline import (
    CategoryFilterStage,
    EstimateStage,
    LoadScaleStage,
    PipelineStage,
    WorkloadPipeline,
    open_workload,
)
from repro.workload.swf import (
    SWFHeader,
    SWFReader,
    SWFRecord,
    jobs_from_swf_records,
    read_swf,
    scan_swf,
    stream_jobs,
    stream_swf,
    write_swf,
)

__all__ = [
    "AccurateEstimates",
    "CTC",
    "CategoryFilterStage",
    "EstimateModel",
    "EstimateStage",
    "FOUR_WAY_CATEGORIES",
    "FourWayCategory",
    "InaccurateEstimates",
    "Job",
    "JobState",
    "KTH",
    "LengthClass",
    "LoadScaleStage",
    "PerfectWithNoise",
    "PRESETS",
    "PipelineStage",
    "SDSC",
    "SIXTEEN_WAY_CATEGORIES",
    "SWFHeader",
    "SWFReader",
    "SWFRecord",
    "SixteenWayCategory",
    "SyntheticTraceGenerator",
    "TracePreset",
    "WidthClass",
    "WorkloadPipeline",
    "classify_four_way",
    "classify_sixteen_way",
    "generate_trace",
    "jobs_from_swf_records",
    "length_class",
    "open_workload",
    "read_swf",
    "scale_load",
    "scan_swf",
    "stream_jobs",
    "stream_swf",
    "width_class",
    "write_swf",
]

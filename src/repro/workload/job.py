"""The job lifecycle object.

A :class:`Job` is a *rigid* parallel job: it needs exactly ``procs``
processors for ``run_time`` seconds of useful work.  The scheduler sees
only the user's ``estimate``; the simulator knows the truth.

Clock separation
----------------

The paper's suspension priority (the xfactor, eq. 2) is

    xfactor = (wait time + estimated run time) / estimated run time

where *wait time* accrues **only while the job is not running** -- "the
suspension priority of a task remains constant when the task executes and
increases when the task waits" (section IV-A).  :class:`Job` therefore
maintains two clocks:

* :meth:`Job.waited` -- total queued + suspended time up to ``now``;
* :meth:`Job.accrued` -- total useful run time up to ``now``.

Both are integrals over state intervals, updated lazily from the
timestamps of the last state change, so they are exact regardless of how
often the simulator samples them.

Overhead accounting
-------------------

Suspension/restart overhead (section V-A of the paper) is charged to the
*suspended* job: each suspend/resume cycle adds ``pending_overhead``
seconds that the job must spend on the processors before its remaining
useful work completes.  Overhead time is *not* useful work: it extends
occupancy (and therefore turnaround) without advancing :meth:`accrued`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.cluster.bitset import mask_from_ids


class JobState(Enum):
    """Lifecycle states of a job."""

    #: Known to the workload, not yet submitted (before its arrival event).
    PENDING = "pending"
    #: Submitted and waiting in the queue (never run, or between runs
    #: after being suspended -- see :attr:`Job.suspended_procs`).
    QUEUED = "queued"
    #: Holding processors and making progress (or paying overhead).
    RUNNING = "running"
    #: Completed all useful work; terminal.
    FINISHED = "finished"


@dataclass(eq=False)  # identity semantics: a job is a stateful entity
class Job:
    """One rigid parallel job.

    Static fields come from the trace; dynamic fields are owned by the
    simulation driver.  User code should treat a finished job as
    immutable and read results through :mod:`repro.metrics`.

    Parameters
    ----------
    job_id:
        Unique nonnegative id (SWF job number or generator index).
    submit_time:
        Arrival time, seconds from trace start.
    run_time:
        Actual useful run time, seconds (> 0).
    estimate:
        User-estimated run time, seconds; schedulers plan with this.
        Clamped to at least ``run_time``'s floor of 1 s by the loaders.
    procs:
        Number of processors requested (rigid).
    memory_mb:
        Resident set per processor in MB; drives the suspension-overhead
        model.  ``0`` means "unknown" (overhead model substitutes its
        default distribution).
    """

    job_id: int
    submit_time: float
    run_time: float
    estimate: float
    procs: int
    memory_mb: float = 0.0
    user: int = -1

    # ------------------------------------------------------------------
    # dynamic state -- owned by the simulation driver
    # ------------------------------------------------------------------
    state: JobState = field(default=JobState.PENDING, repr=False)
    #: first time the job ever started running (None until then)
    first_start_time: float | None = field(default=None, repr=False)
    #: completion time (None until finished)
    finish_time: float | None = field(default=None, repr=False)
    #: processors currently held while RUNNING (empty otherwise)
    allocated_procs: frozenset[int] = field(default_factory=frozenset, repr=False)
    #: processors held at the moment of the last suspension; a resume must
    #: reacquire exactly this set (local preemption).  Empty if never
    #: suspended or currently running.
    suspended_procs: frozenset[int] = field(default_factory=frozenset, repr=False)
    #: bitmask twin of :attr:`suspended_procs`, maintained in lockstep by
    #: the ``mark_*`` transitions.  Schedulers probe resume feasibility
    #: against the cluster's free bitmask on every sweep; caching the
    #: mask here makes that probe O(words) with no per-proc conversion.
    suspended_mask: int = field(default=0, repr=False)
    #: number of times the job has been suspended
    suspension_count: int = field(default=0, repr=False)
    #: number of times a speculative run of the job was killed
    kill_count: int = field(default=0, repr=False)
    #: processor-time wasted by killed speculative runs (seconds of
    #: occupancy that produced no retained progress)
    wasted_time: float = field(default=0.0, repr=False)
    #: overhead seconds still to be paid on the processors (suspend cost
    #: of past suspensions plus resume cost), excluded from useful work.
    #: Overhead is paid *first* after a resume (the image must be read
    #: back from disk before progress), so a re-suspension during the
    #: overhead window does zero useful work.
    pending_overhead: float = field(default=0.0, repr=False)
    #: total overhead seconds actually paid over the job's lifetime
    total_overhead: float = field(default=0.0, repr=False)
    #: useful work still to do, seconds; driver-managed (initialised to
    #: ``run_time``, decremented by useful running time only)
    remaining_useful: float = field(default=-1.0, repr=False)
    #: guard for lazily cancelled finish events; bumped on every
    #: suspend/resume so stale events can be recognised
    epoch: int = field(default=0, repr=False)
    #: when the current run period began (driver-managed)
    last_dispatch_time: float = field(default=-1.0, repr=False)
    #: estimate-based completion time of the current run period, used by
    #: backfilling profiles (driver-managed; meaningless unless RUNNING)
    expected_end: float = field(default=float("inf"), repr=False)

    # lazy clock integrals
    _wait_accrued: float = field(default=0.0, repr=False)
    _run_accrued: float = field(default=0.0, repr=False)
    _clock_mark: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise ValueError(f"job_id must be nonnegative, got {self.job_id}")
        if self.run_time <= 0:
            raise ValueError(f"job {self.job_id}: run_time must be > 0")
        if self.procs <= 0:
            raise ValueError(f"job {self.job_id}: procs must be > 0")
        if self.estimate <= 0:
            raise ValueError(f"job {self.job_id}: estimate must be > 0")
        if self.submit_time < 0:
            raise ValueError(f"job {self.job_id}: negative submit time")
        self._clock_mark = self.submit_time
        if self.remaining_useful < 0:
            self.remaining_useful = self.run_time

    # ------------------------------------------------------------------
    # clocks
    # ------------------------------------------------------------------
    def _advance_clocks(self, now: float) -> None:
        """Fold the interval since the last state change into the clocks."""
        dt = now - self._clock_mark
        if dt < -1e-9:
            raise ValueError(
                f"job {self.job_id}: clock moved backwards "
                f"({self._clock_mark} -> {now})"
            )
        dt = max(dt, 0.0)
        if self.state is JobState.QUEUED:
            self._wait_accrued += dt
        elif self.state is JobState.RUNNING:
            self._run_accrued += dt
        self._clock_mark = now

    def waited(self, now: float) -> float:
        """Total non-running time accumulated up to *now* (seconds)."""
        extra = 0.0
        if self.state is JobState.QUEUED:
            extra = max(now - self._clock_mark, 0.0)
        return self._wait_accrued + extra

    def accrued(self, now: float) -> float:
        """Total occupancy time accumulated up to *now* (seconds).

        Includes overhead seconds; useful progress is
        ``min(accrued - total_overhead_paid, run_time)`` but the driver
        tracks completion through scheduled finish events, so callers
        normally only need this for the instantaneous xfactor.
        """
        extra = 0.0
        if self.state is JobState.RUNNING:
            extra = max(now - self._clock_mark, 0.0)
        return self._run_accrued + extra

    @property
    def useful_done(self) -> float:
        """Useful work completed so far (seconds); excludes overhead."""
        return self.run_time - self.remaining_useful

    def remaining_estimate(self) -> float:
        """Scheduler-visible remaining occupancy, from the user estimate.

        ``max(estimate - useful_done, 0) + pending_overhead`` -- what a
        backfilling profile should budget for this job if (re)started now.
        A small floor keeps profiles sane when a job outlives its estimate
        (possible with real, under-estimated traces).
        """
        rem = max(self.estimate - self.useful_done, 1.0)
        return rem + self.pending_overhead

    # ------------------------------------------------------------------
    # state transitions (driver-only API)
    # ------------------------------------------------------------------
    def mark_submitted(self, now: float) -> None:
        """PENDING -> QUEUED at arrival."""
        self._require_state(JobState.PENDING, "submit")
        self._advance_clocks(now)
        self.state = JobState.QUEUED

    def mark_started(self, now: float, procs: frozenset[int]) -> None:
        """QUEUED -> RUNNING with processor set *procs*."""
        self._require_state(JobState.QUEUED, "start")
        if len(procs) != self.procs:
            raise ValueError(
                f"job {self.job_id}: started on {len(procs)} processors, "
                f"requested {self.procs}"
            )
        if self.suspended_procs and procs != self.suspended_procs:
            raise ValueError(
                f"job {self.job_id}: resume on a different processor set "
                "(local preemption requires the original processors)"
            )
        self._advance_clocks(now)
        self.state = JobState.RUNNING
        self.allocated_procs = procs
        self.suspended_procs = frozenset()
        self.suspended_mask = 0
        if self.first_start_time is None:
            self.first_start_time = now

    def mark_suspended(self, now: float) -> None:
        """RUNNING -> QUEUED, remembering the processor set for resume."""
        self._require_state(JobState.RUNNING, "suspend")
        self._advance_clocks(now)
        self.state = JobState.QUEUED
        self.suspended_procs = self.allocated_procs
        self.suspended_mask = mask_from_ids(self.suspended_procs)
        self.allocated_procs = frozenset()
        self.suspension_count += 1
        self.epoch += 1

    def mark_killed(self, now: float) -> None:
        """RUNNING -> QUEUED with all progress discarded.

        Models *speculative* execution (Perkovic & Keleher): a job run
        in a hole shorter than its estimate is killed when the hole
        closes and must later restart **from scratch** -- no checkpoint
        is taken, so unlike :meth:`mark_suspended` nothing pins it to
        its processors and ``remaining_useful`` resets to the full run
        time.  The wasted occupancy stays in the run clock (the machine
        really was busy), so the xfactor still treats it as service.
        """
        self._require_state(JobState.RUNNING, "kill")
        self._advance_clocks(now)
        if self.last_dispatch_time >= 0:
            self.wasted_time += max(now - self.last_dispatch_time, 0.0)
        self.state = JobState.QUEUED
        self.allocated_procs = frozenset()
        self.suspended_procs = frozenset()
        self.suspended_mask = 0
        self.remaining_useful = self.run_time
        self.pending_overhead = 0.0
        self.kill_count += 1
        self.epoch += 1

    def mark_finished(self, now: float) -> None:
        """RUNNING -> FINISHED; terminal."""
        self._require_state(JobState.RUNNING, "finish")
        self._advance_clocks(now)
        self.state = JobState.FINISHED
        self.allocated_procs = frozenset()
        self.finish_time = now
        self.epoch += 1

    def _require_state(self, expected: JobState, action: str) -> None:
        if self.state is not expected:
            raise ValueError(
                f"job {self.job_id}: cannot {action} from state {self.state.value}"
            )

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def was_suspended(self) -> bool:
        """Whether the job has ever been suspended."""
        return self.suspension_count > 0

    @property
    def needs_specific_procs(self) -> bool:
        """True when the job may only (re)start on ``suspended_procs``."""
        return bool(self.suspended_procs)

    def turnaround(self) -> float:
        """Finish minus submit; only valid once finished."""
        if self.finish_time is None:
            raise ValueError(f"job {self.job_id} has not finished")
        return self.finish_time - self.submit_time

    def xfactor(self, now: float) -> float:
        """The paper's suspension priority (eq. 2).

        ``(wait time + estimated run time) / estimated run time`` -- grows
        while the job waits, constant while it runs, and >= 1 always.
        """
        return (self.waited(now) + self.estimate) / self.estimate

    def instantaneous_xfactor(self, now: float) -> float:
        """The IS scheme's priority (Chiang & Vernon).

        ``(wait + total accrued run) / total accrued run``.  Diverges for
        jobs that have not yet run; the IS scheduler treats never-run jobs
        as maximally entitled, so this returns ``inf`` when accrued is 0.
        """
        acc = self.accrued(now)
        if acc <= 0.0:
            return float("inf")
        return (self.waited(now) + acc) / acc

    def copy_static(self) -> "Job":
        """Fresh Job with the same static fields and pristine state.

        Simulations mutate jobs; replicating an experiment with a second
        scheduler requires a clean copy of the trace.
        """
        return Job(
            job_id=self.job_id,
            submit_time=self.submit_time,
            run_time=self.run_time,
            estimate=self.estimate,
            procs=self.procs,
            memory_mb=self.memory_mb,
            user=self.user,
        )


def fresh_copies(jobs: list[Job]) -> list[Job]:
    """Clean, unsimulated copies of *jobs* (see :meth:`Job.copy_static`)."""
    return [j.copy_static() for j in jobs]

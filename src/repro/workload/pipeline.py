"""Lazy workload-transformation pipeline over job streams.

The eager experiment path loads a whole trace, then applies load
scaling (:func:`repro.workload.load.scale_load`) and estimate models
(:mod:`repro.workload.estimates`) as list-to-list passes.  That is fine
for synthetic seeds; archive logs are months of submissions and should
not be materialised just to divide every submit time by 1.3.

This module re-expresses those transformations as **lazy stages** over
an iterator of jobs.  A stage consumes a job stream and yields a
transformed stream without retaining it; a :class:`WorkloadPipeline`
composes stages and carries a JSON-stable config whose SHA-256
fingerprint keys result caching (a cell simulated under one pipeline is
never confused with the same shard under another).

Determinism contract
--------------------

Stages are deterministic functions of (input stream, config).  The one
subtlety is :class:`EstimateStage`: estimate models draw random factors
per job, and a stream cannot make one whole-trace RNG draw.  The stage
therefore processes fixed-size chunks and seeds each chunk's generator
as ``default_rng((seed, chunk_index))`` -- job *i* gets the same
estimate no matter how the stream is batched upstream, because chunk
boundaries depend only on ``chunk_size`` (part of the config) and the
job's position.  Running the same pipeline twice, eagerly or streaming,
yields byte-identical jobs.  See docs/WORKLOADS.md for the worked
contract.
"""

from __future__ import annotations

import hashlib
import json
from abc import ABC, abstractmethod
from collections.abc import Collection
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.workload.categories import classify_sixteen_way
from repro.workload.estimates import (
    AccurateEstimates,
    EstimateModel,
    InaccurateEstimates,
    PerfectWithNoise,
)
from repro.workload.job import Job

PIPELINE_SCHEMA = "repro.pipeline/v1"


class PipelineStage(ABC):
    """One lazy transformation over a stream of jobs.

    A stage must be **pure** (input jobs are never mutated; transformed
    jobs are fresh :class:`Job` instances) and **streaming** (memory
    bounded by a constant or by its configured chunk size, never by the
    trace length).
    """

    @abstractmethod
    def apply(self, jobs: Iterator[Job]) -> Iterator[Job]:
        """Yield the transformed stream."""

    @abstractmethod
    def config(self) -> dict[str, object]:
        """JSON-stable description of the stage; feeds the fingerprint."""


class LoadScaleStage(PipelineStage):
    """Streaming twin of :func:`repro.workload.load.scale_load`.

    Divides every submit time by ``load_factor`` (the paper's section VI
    load-variation methodology), leaving run times, estimates, widths
    and memory untouched.
    """

    def __init__(self, load_factor: float) -> None:
        if load_factor <= 0:
            raise ValueError(f"load factor must be positive, got {load_factor}")
        self.load_factor = float(load_factor)

    def apply(self, jobs: Iterator[Job]) -> Iterator[Job]:
        for job in jobs:
            yield Job(
                job_id=job.job_id,
                submit_time=job.submit_time / self.load_factor,
                run_time=job.run_time,
                estimate=job.estimate,
                procs=job.procs,
                memory_mb=job.memory_mb,
                user=job.user,
            )

    def config(self) -> dict[str, object]:
        return {"stage": "load_scale", "load_factor": self.load_factor}


def _model_config(model: EstimateModel) -> dict[str, object]:
    """JSON-stable parameters of an estimate model.

    The known models expose their constructor arguments as attributes;
    anything unrecognised falls back to its :meth:`EstimateModel.name`
    label (still deterministic, but two differently-parameterised
    custom models with the same name would share a fingerprint -- give
    custom models distinguishing names).
    """
    if isinstance(model, AccurateEstimates):
        return {"model": "accurate"}
    if isinstance(model, PerfectWithNoise):
        return {"model": "noise", "noise": model.noise}
    if isinstance(model, InaccurateEstimates):
        return {
            "model": "inaccurate",
            "badly_fraction": model.badly_fraction,
            "max_factor": model.max_factor,
            "cap_seconds": model.cap_seconds,
        }
    return {"model": model.name()}


class EstimateStage(PipelineStage):
    """Apply an estimate model to the stream in deterministic chunks.

    Parameters
    ----------
    model:
        Any :class:`~repro.workload.estimates.EstimateModel`.
    seed:
        Base seed; chunk *k* draws from ``default_rng((seed, k))``, so
        every job's estimate depends only on its stream position and the
        config -- not on upstream batching.
    chunk_size:
        Jobs vectorised per model call.  Part of the config (changing it
        changes which RNG serves which job, hence the fingerprint).
    """

    DEFAULT_CHUNK = 4096

    def __init__(
        self, model: EstimateModel, seed: int, chunk_size: int = DEFAULT_CHUNK
    ) -> None:
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.model = model
        self.seed = int(seed)
        self.chunk_size = int(chunk_size)

    def _emit(self, chunk: list[Job], chunk_index: int) -> Iterator[Job]:
        rng = np.random.default_rng((self.seed, chunk_index))
        run_times = np.array([j.run_time for j in chunk], dtype=float)
        estimates = self.model.estimates(run_times, rng)
        for job, est in zip(chunk, estimates):
            yield Job(
                job_id=job.job_id,
                submit_time=job.submit_time,
                run_time=job.run_time,
                estimate=max(float(est), 1.0),
                procs=job.procs,
                memory_mb=job.memory_mb,
                user=job.user,
            )

    def apply(self, jobs: Iterator[Job]) -> Iterator[Job]:
        chunk: list[Job] = []
        chunk_index = 0
        for job in jobs:
            chunk.append(job)
            if len(chunk) >= self.chunk_size:
                yield from self._emit(chunk, chunk_index)
                chunk = []
                chunk_index += 1
        if chunk:
            yield from self._emit(chunk, chunk_index)

    def config(self) -> dict[str, object]:
        return {
            "stage": "estimates",
            "seed": self.seed,
            "chunk_size": self.chunk_size,
            **_model_config(self.model),
        }


class CategoryFilterStage(PipelineStage):
    """Keep only jobs in the given Table-I categories.

    Categories are the paper's 16-way ``(length, width)`` labels, e.g.
    ``("VS", "VW")`` -- see :mod:`repro.workload.categories`.  Jobs pass
    through untouched (no copy: filtering does not mutate).
    """

    def __init__(self, keep: Collection[tuple[str, str]]) -> None:
        if not keep:
            raise ValueError("CategoryFilterStage with an empty keep-set drops everything")
        self.keep = frozenset((str(a), str(b)) for a, b in keep)

    def apply(self, jobs: Iterator[Job]) -> Iterator[Job]:
        for job in jobs:
            if classify_sixteen_way(job) in self.keep:
                yield job

    def config(self) -> dict[str, object]:
        return {"stage": "category_filter", "keep": sorted(map(list, self.keep))}


class WorkloadPipeline:
    """An ordered composition of lazy stages with a stable fingerprint.

    >>> pipe = WorkloadPipeline([LoadScaleStage(1.3),
    ...                          EstimateStage(InaccurateEstimates(), seed=7)])
    >>> out = list(pipe.jobs(iter(base_jobs)))        # doctest: +SKIP

    ``jobs`` is streaming: it holds at most one estimate chunk in
    memory.  ``materialise`` is the eager convenience for small traces
    and tests; by the determinism contract both produce identical jobs.
    """

    def __init__(self, stages: Iterable[PipelineStage] = ()) -> None:
        self.stages: tuple[PipelineStage, ...] = tuple(stages)

    def jobs(self, source: Iterable[Job]) -> Iterator[Job]:
        """Stream *source* through every stage in order."""
        stream = iter(source)
        for stage in self.stages:
            stream = stage.apply(stream)
        return stream

    def materialise(self, source: Iterable[Job]) -> list[Job]:
        """Eager form of :meth:`jobs` (identical output, O(trace) memory)."""
        return list(self.jobs(source))

    def config(self) -> dict[str, object]:
        """JSON-stable pipeline description (schema + per-stage configs)."""
        return {
            "schema": PIPELINE_SCHEMA,
            "stages": [stage.config() for stage in self.stages],
        }

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON config; keys shard caching."""
        payload = json.dumps(self.config(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """One-line human-readable summary (CLI output)."""
        if not self.stages:
            return "identity pipeline (no stages)"
        return " -> ".join(
            str(stage.config().get("stage", type(stage).__name__))
            for stage in self.stages
        )


def _stage_from_config(cfg: dict[str, object]) -> PipelineStage:
    """Rebuild one stage from its :meth:`PipelineStage.config` dict."""
    kind = cfg.get("stage")
    if kind == "load_scale":
        return LoadScaleStage(float(cfg["load_factor"]))  # type: ignore[arg-type]
    if kind == "category_filter":
        keep = cfg["keep"]
        assert isinstance(keep, list)
        return CategoryFilterStage([(str(a), str(b)) for a, b in keep])
    if kind == "estimates":
        model_name = cfg.get("model")
        model: EstimateModel
        if model_name == "accurate":
            model = AccurateEstimates()
        elif model_name == "noise":
            model = PerfectWithNoise(noise=float(cfg["noise"]))  # type: ignore[arg-type]
        elif model_name == "inaccurate":
            cap = cfg["cap_seconds"]
            model = InaccurateEstimates(
                badly_fraction=float(cfg["badly_fraction"]),  # type: ignore[arg-type]
                max_factor=float(cfg["max_factor"]),  # type: ignore[arg-type]
                cap_seconds=None if cap is None else float(cap),  # type: ignore[arg-type]
            )
        else:
            raise ValueError(
                f"estimate model {model_name!r} cannot be rebuilt from config "
                "(custom models are not round-trippable; see _model_config)"
            )
        return EstimateStage(
            model,
            seed=int(cfg["seed"]),  # type: ignore[call-overload]
            chunk_size=int(cfg["chunk_size"]),  # type: ignore[call-overload]
        )
    raise ValueError(f"unknown pipeline stage config {cfg!r}")


def pipeline_from_config(config: dict[str, object]) -> WorkloadPipeline:
    """Rebuild a :class:`WorkloadPipeline` from its :meth:`~WorkloadPipeline.config`.

    The inverse of :meth:`WorkloadPipeline.config` for every in-repo
    stage, so a pipeline can travel across process boundaries as plain
    JSON-stable data (the shared-memory workload plane ships stage
    configs, not stage objects -- see :mod:`repro.experiments.shm`).
    The round trip preserves the fingerprint::

        pipeline_from_config(p.config()).fingerprint() == p.fingerprint()

    Raises :class:`ValueError` on an unknown schema, stage, or a custom
    estimate model that :func:`_model_config` could only describe by
    name.
    """
    schema = config.get("schema")
    if schema != PIPELINE_SCHEMA:
        raise ValueError(f"unknown pipeline schema {schema!r} (want {PIPELINE_SCHEMA!r})")
    stages_cfg = config.get("stages")
    assert isinstance(stages_cfg, list)
    return WorkloadPipeline(_stage_from_config(dict(c)) for c in stages_cfg)


def open_workload(
    path: str | Path,
    pipeline: WorkloadPipeline | None = None,
    max_procs: int | None = None,
    on_malformed: str = "raise",
    drop_interactive: bool = False,
    require_sorted: bool = True,
) -> Iterator[Job]:
    """Stream an SWF log through a pipeline: the one-call archive entry point.

    Composes :func:`repro.workload.swf.stream_swf` (constant-memory
    parse), :func:`repro.workload.swf.stream_jobs` (hygiene filters +
    rebase) and ``pipeline.jobs`` (lazy transformations).  ``max_procs``
    defaults to the log header's machine size when the header declares
    one.
    """
    from repro.workload.swf import MalformedPolicy, SWFReader, stream_jobs

    if on_malformed not in ("raise", "skip"):
        raise ValueError(f"on_malformed must be 'raise' or 'skip', got {on_malformed!r}")
    policy: MalformedPolicy = "raise" if on_malformed == "raise" else "skip"

    def _stream() -> Iterator[Job]:
        with SWFReader(path, on_malformed=policy) as reader:
            width_cap = max_procs
            if width_cap is None:
                width_cap = reader.header.machine_procs()
            yield from stream_jobs(
                iter(reader),
                max_procs=width_cap,
                drop_interactive=drop_interactive,
                require_sorted=require_sorted,
            )

    stream: Iterator[Job] = _stream()
    if pipeline is not None:
        stream = pipeline.jobs(stream)
    return stream

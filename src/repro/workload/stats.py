"""Workload characterisation statistics.

Summarises a job list the way section III characterises its traces:
population counts per category, run-time/width distributions, offered
load, arrival burstiness.  Used by the ``repro-sched inspect`` CLI
command and by the calibration tests that keep the synthetic generators
honest against the paper's published distributions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.workload.categories import classify_sixteen_way
from repro.workload.job import Job


@dataclass(frozen=True)
class Distribution:
    """Five-number-ish summary of one quantity."""

    count: int
    mean: float
    median: float
    p90: float
    maximum: float
    minimum: float

    @staticmethod
    def of(values: list[float]) -> "Distribution":
        if not values:
            return Distribution(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(values)
        n = len(ordered)
        return Distribution(
            count=n,
            mean=sum(ordered) / n,
            median=ordered[n // 2],
            p90=ordered[min(int(0.9 * n), n - 1)],
            maximum=ordered[-1],
            minimum=ordered[0],
        )


@dataclass(frozen=True)
class WorkloadStats:
    """Everything ``inspect`` prints about a trace."""

    n_jobs: int
    span_seconds: float
    run_time: Distribution
    width: Distribution
    estimate_factor: Distribution
    interarrival: Distribution
    #: coefficient of variation of interarrival times; 1.0 for Poisson,
    #: > 1 for bursty arrivals (real logs typically 2-6)
    arrival_cv: float
    #: total work / span -- processors' worth of offered demand
    offered_processors: float
    #: fraction of jobs whose estimate exceeds 2x the actual run time
    badly_estimated_fraction: float
    category_counts: dict[tuple[str, str], int]

    def offered_load(self, n_procs: int) -> float:
        """Offered demand as a fraction of an ``n_procs`` machine."""
        if n_procs <= 0:
            raise ValueError("n_procs must be positive")
        return self.offered_processors / n_procs


def workload_stats(jobs: Iterable[Job]) -> WorkloadStats:
    """Characterise *jobs* (static fields only; works on fresh traces)."""
    jobs = sorted(jobs, key=lambda j: j.submit_time)
    if not jobs:
        raise ValueError("empty workload")
    runs = [j.run_time for j in jobs]
    widths = [float(j.procs) for j in jobs]
    factors = [j.estimate / j.run_time for j in jobs]
    submits = [j.submit_time for j in jobs]
    gaps = [b - a for a, b in zip(submits, submits[1:], strict=False)]
    span = max(submits[-1] - submits[0], 1.0)

    if len(gaps) >= 2:
        mean_gap = sum(gaps) / len(gaps)
        var = sum((g - mean_gap) ** 2 for g in gaps) / (len(gaps) - 1)
        cv = math.sqrt(var) / mean_gap if mean_gap > 0 else 0.0
    else:
        cv = 0.0

    counts: dict[tuple[str, str], int] = {}
    for j in jobs:
        cat = classify_sixteen_way(j)
        counts[cat] = counts.get(cat, 0) + 1

    area = sum(j.run_time * j.procs for j in jobs)
    badly = sum(1 for j in jobs if j.estimate > 2.0 * j.run_time)

    return WorkloadStats(
        n_jobs=len(jobs),
        span_seconds=span,
        run_time=Distribution.of(runs),
        width=Distribution.of(widths),
        estimate_factor=Distribution.of(factors),
        interarrival=Distribution.of(gaps),
        arrival_cv=cv,
        offered_processors=area / span,
        badly_estimated_fraction=badly / len(jobs),
        category_counts=counts,
    )


def format_stats(stats: WorkloadStats, n_procs: int | None = None) -> str:
    """Human-readable report of :class:`WorkloadStats`."""
    from repro.analysis.tables import category_grid_table

    lines = [
        f"jobs: {stats.n_jobs}   span: {stats.span_seconds / 3600:.1f} h   "
        f"arrival CV: {stats.arrival_cv:.2f}",
        f"run time (s): mean {stats.run_time.mean:,.0f}  median "
        f"{stats.run_time.median:,.0f}  p90 {stats.run_time.p90:,.0f}  "
        f"max {stats.run_time.maximum:,.0f}",
        f"width (procs): mean {stats.width.mean:.1f}  median "
        f"{stats.width.median:.0f}  max {stats.width.maximum:.0f}",
        f"estimate/actual: mean {stats.estimate_factor.mean:.2f}  "
        f"badly estimated: {100 * stats.badly_estimated_fraction:.1f}%",
        f"offered demand: {stats.offered_processors:.1f} processors"
        + (
            f" = {100 * stats.offered_load(n_procs):.1f}% of {n_procs}"
            if n_procs
            else ""
        ),
        "",
        category_grid_table(
            {c: 100.0 * n / stats.n_jobs for c, n in stats.category_counts.items()},
            title="% of jobs per category (Table I grid)",
            precision=1,
        ),
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# one-pass streaming summary (archive-scale logs)
# ----------------------------------------------------------------------
@dataclass
class StreamingWorkloadSummary:
    """O(1)-memory workload summary built in one pass over a job stream.

    The streaming counterpart of :class:`WorkloadStats` for logs too
    long to materialise: exact count/mean/min/max, category population,
    offered demand and arrival burstiness (Welford's online variance
    over interarrival gaps), but no order statistics -- medians and
    percentiles need the whole sample, so ``repro-sched workload stats``
    prints means where ``inspect`` prints five-number summaries.
    """

    n_jobs: int = 0
    first_submit: float = 0.0
    last_submit: float = 0.0
    run_sum: float = 0.0
    run_min: float = float("inf")
    run_max: float = 0.0
    width_sum: float = 0.0
    width_max: float = 0.0
    factor_sum: float = 0.0
    badly_estimated: int = 0
    area: float = 0.0
    category_counts: dict[tuple[str, str], int] = field(default_factory=dict)
    # Welford state over interarrival gaps
    _gap_count: int = 0
    _gap_mean: float = 0.0
    _gap_m2: float = 0.0

    def observe(self, job: Job) -> None:
        """Fold one job in (jobs must arrive in submit order)."""
        if self.n_jobs == 0:
            self.first_submit = job.submit_time
        else:
            gap = job.submit_time - self.last_submit
            self._gap_count += 1
            delta = gap - self._gap_mean
            self._gap_mean += delta / self._gap_count
            self._gap_m2 += delta * (gap - self._gap_mean)
        self.last_submit = job.submit_time
        self.n_jobs += 1
        self.run_sum += job.run_time
        self.run_min = min(self.run_min, job.run_time)
        self.run_max = max(self.run_max, job.run_time)
        self.width_sum += job.procs
        self.width_max = max(self.width_max, float(job.procs))
        self.factor_sum += job.estimate / job.run_time
        if job.estimate > 2.0 * job.run_time:
            self.badly_estimated += 1
        self.area += job.run_time * job.procs
        cat = classify_sixteen_way(job)
        self.category_counts[cat] = self.category_counts.get(cat, 0) + 1

    @property
    def span_seconds(self) -> float:
        """Submit-time span (>= 1 s, matching :func:`workload_stats`)."""
        return max(self.last_submit - self.first_submit, 1.0)

    @property
    def arrival_cv(self) -> float:
        """Coefficient of variation of interarrival gaps (1.0 = Poisson)."""
        if self._gap_count < 2 or self._gap_mean <= 0:
            return 0.0
        var = self._gap_m2 / (self._gap_count - 1)
        return math.sqrt(var) / self._gap_mean

    @property
    def offered_processors(self) -> float:
        """Total work / span: processors' worth of offered demand."""
        return self.area / self.span_seconds

    def offered_load(self, n_procs: int) -> float:
        """Offered demand as a fraction of an ``n_procs`` machine."""
        if n_procs <= 0:
            raise ValueError("n_procs must be positive")
        return self.offered_processors / n_procs


def stream_workload_stats(jobs: Iterable[Job]) -> StreamingWorkloadSummary:
    """One-pass :class:`StreamingWorkloadSummary` over a (lazy) job stream."""
    summary = StreamingWorkloadSummary()
    for job in jobs:
        summary.observe(job)
    if summary.n_jobs == 0:
        raise ValueError("empty workload")
    return summary


def format_streaming_stats(
    summary: StreamingWorkloadSummary, n_procs: int | None = None
) -> str:
    """Human-readable report of a :class:`StreamingWorkloadSummary`."""
    from repro.analysis.tables import category_grid_table

    n = summary.n_jobs
    lines = [
        f"jobs: {n}   span: {summary.span_seconds / 3600:.1f} h   "
        f"arrival CV: {summary.arrival_cv:.2f}",
        f"run time (s): mean {summary.run_sum / n:,.0f}  "
        f"min {summary.run_min:,.0f}  max {summary.run_max:,.0f}",
        f"width (procs): mean {summary.width_sum / n:.1f}  "
        f"max {summary.width_max:.0f}",
        f"estimate/actual: mean {summary.factor_sum / n:.2f}  "
        f"badly estimated: {100 * summary.badly_estimated / n:.1f}%",
        f"offered demand: {summary.offered_processors:.1f} processors"
        + (
            f" = {100 * summary.offered_load(n_procs):.1f}% of {n_procs}"
            if n_procs
            else ""
        ),
        "",
        category_grid_table(
            {c: 100.0 * cnt / n for c, cnt in summary.category_counts.items()},
            title="% of jobs per category (Table I grid)",
            precision=1,
        ),
    ]
    return "\n".join(lines)

"""Workload characterisation statistics.

Summarises a job list the way section III characterises its traces:
population counts per category, run-time/width distributions, offered
load, arrival burstiness.  Used by the ``repro-sched inspect`` CLI
command and by the calibration tests that keep the synthetic generators
honest against the paper's published distributions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.workload.categories import classify_sixteen_way
from repro.workload.job import Job


@dataclass(frozen=True)
class Distribution:
    """Five-number-ish summary of one quantity."""

    count: int
    mean: float
    median: float
    p90: float
    maximum: float
    minimum: float

    @staticmethod
    def of(values: list[float]) -> "Distribution":
        if not values:
            return Distribution(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(values)
        n = len(ordered)
        return Distribution(
            count=n,
            mean=sum(ordered) / n,
            median=ordered[n // 2],
            p90=ordered[min(int(0.9 * n), n - 1)],
            maximum=ordered[-1],
            minimum=ordered[0],
        )


@dataclass(frozen=True)
class WorkloadStats:
    """Everything ``inspect`` prints about a trace."""

    n_jobs: int
    span_seconds: float
    run_time: Distribution
    width: Distribution
    estimate_factor: Distribution
    interarrival: Distribution
    #: coefficient of variation of interarrival times; 1.0 for Poisson,
    #: > 1 for bursty arrivals (real logs typically 2-6)
    arrival_cv: float
    #: total work / span -- processors' worth of offered demand
    offered_processors: float
    #: fraction of jobs whose estimate exceeds 2x the actual run time
    badly_estimated_fraction: float
    category_counts: dict[tuple[str, str], int]

    def offered_load(self, n_procs: int) -> float:
        """Offered demand as a fraction of an ``n_procs`` machine."""
        if n_procs <= 0:
            raise ValueError("n_procs must be positive")
        return self.offered_processors / n_procs


def workload_stats(jobs: Iterable[Job]) -> WorkloadStats:
    """Characterise *jobs* (static fields only; works on fresh traces)."""
    jobs = sorted(jobs, key=lambda j: j.submit_time)
    if not jobs:
        raise ValueError("empty workload")
    runs = [j.run_time for j in jobs]
    widths = [float(j.procs) for j in jobs]
    factors = [j.estimate / j.run_time for j in jobs]
    submits = [j.submit_time for j in jobs]
    gaps = [b - a for a, b in zip(submits, submits[1:], strict=False)]
    span = max(submits[-1] - submits[0], 1.0)

    if len(gaps) >= 2:
        mean_gap = sum(gaps) / len(gaps)
        var = sum((g - mean_gap) ** 2 for g in gaps) / (len(gaps) - 1)
        cv = math.sqrt(var) / mean_gap if mean_gap > 0 else 0.0
    else:
        cv = 0.0

    counts: dict[tuple[str, str], int] = {}
    for j in jobs:
        cat = classify_sixteen_way(j)
        counts[cat] = counts.get(cat, 0) + 1

    area = sum(j.run_time * j.procs for j in jobs)
    badly = sum(1 for j in jobs if j.estimate > 2.0 * j.run_time)

    return WorkloadStats(
        n_jobs=len(jobs),
        span_seconds=span,
        run_time=Distribution.of(runs),
        width=Distribution.of(widths),
        estimate_factor=Distribution.of(factors),
        interarrival=Distribution.of(gaps),
        arrival_cv=cv,
        offered_processors=area / span,
        badly_estimated_fraction=badly / len(jobs),
        category_counts=counts,
    )


def format_stats(stats: WorkloadStats, n_procs: int | None = None) -> str:
    """Human-readable report of :class:`WorkloadStats`."""
    from repro.analysis.tables import category_grid_table

    lines = [
        f"jobs: {stats.n_jobs}   span: {stats.span_seconds / 3600:.1f} h   "
        f"arrival CV: {stats.arrival_cv:.2f}",
        f"run time (s): mean {stats.run_time.mean:,.0f}  median "
        f"{stats.run_time.median:,.0f}  p90 {stats.run_time.p90:,.0f}  "
        f"max {stats.run_time.maximum:,.0f}",
        f"width (procs): mean {stats.width.mean:.1f}  median "
        f"{stats.width.median:.0f}  max {stats.width.maximum:.0f}",
        f"estimate/actual: mean {stats.estimate_factor.mean:.2f}  "
        f"badly estimated: {100 * stats.badly_estimated_fraction:.1f}%",
        f"offered demand: {stats.offered_processors:.1f} processors"
        + (
            f" = {100 * stats.offered_load(n_procs):.1f}% of {n_procs}"
            if n_procs
            else ""
        ),
        "",
        category_grid_table(
            {c: 100.0 * n / stats.n_jobs for c, n in stats.category_counts.items()},
            title="% of jobs per category (Table I grid)",
            precision=1,
        ),
    ]
    return "\n".join(lines)

"""ASCII charts: bar charts and line plots for terminal reports.

The paper communicates through grouped bar charts (per-category metric
comparisons) and line plots (load-variation curves).  These renderers
draw both with plain characters so benchmark logs read like the paper's
figures without any plotting dependency.

Scales: bar charts use linear or log10 scaling (the paper's figures
span 1 to 10^6 in places, where linear bars are useless); line plots
auto-scale to the data range.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

_BAR = "#"
_MARKS = "ox+*sdv^"


def _scale(value: float, vmax: float, width: int, log: bool) -> int:
    if value <= 0 or vmax <= 0:
        return 0
    if log:
        if vmax <= 1.0:
            return 0
        return max(int(round(width * math.log10(max(value, 1.0)) / math.log10(vmax))), 0)
    return int(round(width * value / vmax))


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 50,
    log: bool = False,
    precision: int = 2,
) -> str:
    """Horizontal bar chart of label -> value.

    Parameters
    ----------
    log:
        Use a log10 axis (bars proportional to the order of magnitude);
        right for slowdown comparisons spanning decades.
    """
    if not values:
        raise ValueError("bar_chart needs at least one value")
    vmax = max(values.values())
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = _BAR * _scale(value, vmax, width, log)
        lines.append(f"{label.ljust(label_w)} |{bar} {value:,.{precision}f}")
    if log:
        lines.append(f"{' ' * label_w} (log10 scale, max {vmax:,.{precision}f})")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    title: str = "",
    width: int = 40,
    log: bool = False,
    precision: int = 2,
) -> str:
    """The paper's figure shape: per category, one bar per scheme.

    ``groups`` maps group label (category) -> {series label -> value}.
    """
    if not groups:
        raise ValueError("grouped_bar_chart needs at least one group")
    vmax = max(
        (v for series in groups.values() for v in series.values()), default=0.0
    )
    series_w = max(
        (len(s) for series in groups.values() for s in series), default=1
    )
    lines = [title] if title else []
    for group, series in groups.items():
        lines.append(f"{group}:")
        for label, value in series.items():
            bar = _BAR * _scale(value, vmax, width, log)
            lines.append(f"  {label.ljust(series_w)} |{bar} {value:,.{precision}f}")
    if log:
        lines.append(f"(log10 scale, max {vmax:,.{precision}f})")
    return "\n".join(lines)


def line_plot(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    height: int = 12,
    width: int = 60,
    y_label: str = "",
) -> str:
    """Multi-series ASCII line plot (the load-variation figures).

    Each series gets a marker character; collisions show the later
    series' marker.  The x axis is sampled to *width* columns.
    """
    if not series:
        raise ValueError("line_plot needs at least one series")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r}: {len(ys)} points for {len(xs)} xs")
    if len(xs) < 2:
        raise ValueError("line_plot needs at least two x values")

    all_y = [y for ys in series.values() for y in ys]
    y_lo, y_hi = min(all_y), max(all_y)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(xs), max(xs)

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, ys) in enumerate(series.items()):
        mark = _MARKS[idx % len(_MARKS)]
        legend.append(f"{mark}={name}")
        for x, y in zip(xs, ys, strict=True):
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = mark

    lines = [title] if title else []
    lines.append(f"{y_hi:>10.2f} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_lo:>10.2f} +" + "-" * width)
    lines.append(" " * 12 + f"{x_lo:<10g}{' ' * max(width - 20, 0)}{x_hi:>10g}")
    lines.append(" " * 12 + "  ".join(legend) + (f"   [{y_label}]" if y_label else ""))
    return "\n".join(lines)

"""Report rendering: the paper's tables and figure data as ASCII.

* :mod:`repro.analysis.tables` -- fixed-width table rendering for 4x4
  category grids and scheme-comparison matrices.
* :mod:`repro.analysis.report` -- full experiment reports combining
  several tables with headers and paper-reference notes.
"""

from repro.analysis.tables import (
    category_grid_table,
    comparison_table,
    render_table,
    series_table,
)
from repro.analysis.report import experiment_report, scheme_comparison_report

__all__ = [
    "category_grid_table",
    "comparison_table",
    "experiment_report",
    "render_table",
    "scheme_comparison_report",
    "series_table",
]

"""Report rendering: the paper's tables and figure data as ASCII.

* :mod:`repro.analysis.tables` -- fixed-width table rendering for 4x4
  category grids and scheme-comparison matrices.
* :mod:`repro.analysis.report` -- full experiment reports combining
  several tables with headers and paper-reference notes.
* :mod:`repro.analysis.timeline` -- occupancy timelines rebuilt from
  decision traces (see ``docs/TRACING.md``): interval lists, CSV
  export, and ASCII Gantt charts.
"""

from repro.analysis.tables import (
    category_grid_table,
    comparison_table,
    render_table,
    series_table,
)
from repro.analysis.report import experiment_report, scheme_comparison_report
from repro.analysis.timeline import (
    OccupancyInterval,
    ascii_gantt,
    occupancy_intervals,
    timeline_csv,
)

__all__ = [
    "OccupancyInterval",
    "ascii_gantt",
    "category_grid_table",
    "comparison_table",
    "experiment_report",
    "occupancy_intervals",
    "render_table",
    "scheme_comparison_report",
    "series_table",
    "timeline_csv",
]

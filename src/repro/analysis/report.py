"""Experiment reports: tables with headers and paper references.

These helpers turn the plain data returned by
:mod:`repro.experiments.paper` into printable blocks; the benchmark
harness tees them to stdout so a bench run shows the same rows/series as
the corresponding paper table or figure.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.tables import category_grid_table, comparison_table
from repro.metrics.aggregate import overall_stats, per_category_stats
from repro.sim.driver import SimulationResult


def _banner(title: str) -> str:
    bar = "=" * max(len(title), 8)
    return f"{bar}\n{title}\n{bar}"


def experiment_report(
    title: str,
    result: SimulationResult,
    metric: str = "slowdown",
) -> str:
    """Single-run report: overall + per-category grid for one metric."""
    stats = per_category_stats(result.jobs)
    values = {
        c: getattr(s, metric).mean for c, s in stats.items()
    }
    overall = getattr(overall_stats(result.jobs), metric).mean
    lines = [
        _banner(title),
        f"scheduler: {result.scheduler}   jobs: {len(result.jobs)}   "
        f"utilization: {result.utilization:.3f}   suspensions: {result.total_suspensions}",
        f"overall mean {metric}: {overall:.2f}",
        category_grid_table(values, title=f"mean {metric} by category"),
    ]
    return "\n".join(lines)


def scheme_comparison_report(
    title: str,
    results: Mapping[str, SimulationResult],
    metric: str = "slowdown",
    statistic: str = "mean",
    quality: str | None = None,
) -> str:
    """Multi-scheme report: one column per scheme (a paper bar chart).

    Parameters
    ----------
    metric:
        ``"slowdown"``, ``"turnaround"`` or ``"wait"``.
    statistic:
        ``"mean"`` (Figs 7-10 style) or ``"worst"`` (Figs 11-18 style).
    quality:
        Optional ``"well"``/``"badly"`` estimate-quality restriction
        (Figs 20-21 / 23-24 style).
    """
    per_scheme: dict[str, dict[tuple[str, str], float]] = {}
    for label, result in results.items():
        stats = per_category_stats(result.jobs, quality=quality)
        per_scheme[label] = {
            c: getattr(getattr(s, metric), statistic) for c, s in stats.items()
        }
    subtitle = f"{statistic} {metric}" + (f" ({quality} estimated jobs)" if quality else "")
    lines = [
        _banner(title),
        comparison_table(per_scheme, title=subtitle),
        "",
        "overall: "
        + "  ".join(
            f"{label}={getattr(getattr(overall_stats(r.jobs), metric), statistic):.2f}"
            for label, r in results.items()
        ),
    ]
    return "\n".join(lines)

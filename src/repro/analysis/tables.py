"""Fixed-width ASCII table rendering.

The paper communicates everything through 4x4 category grids (length
rows x width columns) and grouped bar charts (one bar per scheme per
category).  This module renders both as plain text so benchmark runs
print the same rows/series the paper reports, with no plotting
dependency.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

#: Row/column orders matching the paper's tables.
LENGTH_ORDER = ("VS", "S", "L", "VL")
WIDTH_ORDER = ("Seq", "N", "W", "VW")
LENGTH_ORDER_4 = ("S", "L")
WIDTH_ORDER_4 = ("N", "W")


def _fmt(value: float | int | str | None, width: int, precision: int) -> str:
    if value is None:
        return "-".rjust(width)
    if isinstance(value, str):
        return value.rjust(width)
    if isinstance(value, int):
        return str(value).rjust(width)
    if value == 0:
        return "0".rjust(width)
    if abs(value) >= 10**6 or (0 < abs(value) < 10**-precision):
        return f"{value:.{precision}e}".rjust(width)
    return f"{value:,.{precision}f}".rjust(width)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 2,
    min_col_width: int = 8,
) -> str:
    """Generic fixed-width table with a header rule."""
    rows = [list(r) for r in rows]
    widths = [max(min_col_width, len(h)) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(_fmt(cell, 0, precision).strip()))
    head = "  ".join(h.rjust(w) for h, w in zip(headers, widths, strict=True))
    rule = "-" * len(head)
    body = [
        "  ".join(
            _fmt(cell, w, precision) if i else str(cell).ljust(w)
            for i, (cell, w) in enumerate(zip(row, widths, strict=True))
        )
        for row in rows
    ]
    return "\n".join([head, rule, *body])


def category_grid_table(
    values: Mapping[tuple[str, str], float],
    title: str = "",
    precision: int = 2,
    four_way: bool = False,
) -> str:
    """Render a category -> value map as the paper's 4x4 (or 2x2) grid.

    Missing categories render as ``-`` (a small trace may produce no
    VL-VW jobs, for instance).
    """
    lengths = LENGTH_ORDER_4 if four_way else LENGTH_ORDER
    widths = WIDTH_ORDER_4 if four_way else WIDTH_ORDER
    headers = ["", *widths]
    rows = [[lc, *[values.get((lc, wc)) for wc in widths]] for lc in lengths]
    table = render_table(headers, rows, precision=precision)
    return f"{title}\n{table}" if title else table


def comparison_table(
    per_scheme: Mapping[str, Mapping[tuple[str, str], float]],
    categories: Sequence[tuple[str, str]] | None = None,
    title: str = "",
    precision: int = 2,
) -> str:
    """Scheme x category matrix -- the shape of the paper's bar charts.

    Rows are categories (in table order), columns are schemes, exactly
    the data behind one of the paper's grouped-bar figures.
    """
    if categories is None:
        seen: dict[tuple[str, str], None] = {}
        for values in per_scheme.values():
            for c in values:
                seen[c] = None
        categories = sorted(
            seen,
            key=lambda c: (
                LENGTH_ORDER.index(c[0]) if c[0] in LENGTH_ORDER else 99,
                WIDTH_ORDER.index(c[1]) if c[1] in WIDTH_ORDER else 99,
            ),
        )
    headers = ["category", *per_scheme.keys()]
    rows = [
        [f"{c[0]} {c[1]}", *[per_scheme[s].get(c) for s in per_scheme]]
        for c in categories
    ]
    table = render_table(headers, rows, precision=precision)
    return f"{title}\n{table}" if title else table


def series_table(
    x_label: str,
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    precision: int = 2,
) -> str:
    """x vs several named series -- the load-variation line plots."""
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {len(xs)} x values"
            )
    headers = [x_label, *series.keys()]
    rows = [[f"{x:g}", *[series[name][i] for name in series]] for i, x in enumerate(xs)]
    table = render_table(headers, rows, precision=precision)
    return f"{title}\n{table}" if title else table

"""Timeline reconstruction and Gantt rendering from a trace.

Everything here consumes the flat event mappings a
:class:`~repro.obs.recorder.JsonlRecorder` wrote (or an
:class:`~repro.obs.recorder.InMemoryRecorder` holds) -- no driver, no
scheduler, no live simulation state.  A trace file therefore suffices
to reconstruct exactly *when every job held which processors and why
it stopped holding them*, which is the per-decision view the paper's
aggregate tables cannot provide.

Three exports:

* :func:`occupancy_intervals` -- the run as a list of
  :class:`OccupancyInterval` (one per contiguous dispatch..release
  period of a job), the machine-readable timeline;
* :func:`timeline_csv` -- the same as CSV text, one row per interval,
  for spreadsheets / pandas / gnuplot;
* :func:`ascii_gantt` -- a terminal Gantt chart, one row per job,
  time bucketed into a fixed number of columns.

The ASCII glyphs distinguish how each run period *ended*, because that
is the scheduling story: a ``#`` period ran to completion, a ``s``
period was cut short by a suspension (SS/TSS/IS), a ``x`` period was a
killed speculation (SPEC-BF), and ``.`` marks time spent waiting in
the queue between periods.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

#: Gantt glyph per interval outcome (also the chart legend).
GANTT_GLYPHS = {
    "finish": "#",
    "suspend": "s",
    "kill": "x",
    "waiting": ".",
}


@dataclass(frozen=True)
class OccupancyInterval:
    """One contiguous run period of one job.

    ``end_type`` is the release event that closed the interval:
    ``"finish"``, ``"suspend"`` or ``"kill"``.  ``via`` is the dispatch
    annotation of the period's start (``"backfill"``, ``"speculative"``
    or ``None``) and ``resumed`` whether it began as a resume.
    """

    job_id: int
    start: float
    end: float
    width: int
    end_type: str
    via: str | None = None
    resumed: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def area(self) -> float:
        """Processor-seconds of occupancy (width x duration)."""
        return self.width * self.duration


_DISPATCH_TYPES = ("start", "backfill_start", "resume")
_RELEASE_TYPES = ("suspend", "kill", "finish")


def occupancy_intervals(
    events: Iterable[Mapping[str, Any]],
) -> list[OccupancyInterval]:
    """Rebuild the run's occupancy timeline from its event stream.

    Returns intervals sorted by (start, job_id).  Raises ``ValueError``
    on structurally broken streams, same contract as
    :func:`repro.obs.summary.summarize_trace`.
    """
    open_periods: dict[int, tuple[float, int, str | None, bool]] = {}
    out: list[OccupancyInterval] = []
    for ev in events:
        etype = ev.get("type")
        jid = ev.get("job")
        t = float(ev.get("t", 0.0))
        if etype in _DISPATCH_TYPES:
            assert jid is not None
            if jid in open_periods:
                raise ValueError(f"job {jid} dispatched twice without release (t={t})")
            open_periods[jid] = (
                t,
                int(ev.get("width", 0)),
                ev.get("via"),
                etype == "resume",
            )
        elif etype in _RELEASE_TYPES:
            assert jid is not None
            if jid not in open_periods:
                raise ValueError(f"{etype} for job {jid} which is not running (t={t})")
            t0, width, via, resumed = open_periods.pop(jid)
            out.append(
                OccupancyInterval(
                    job_id=jid,
                    start=t0,
                    end=t,
                    width=width,
                    end_type=str(etype),
                    via=via,
                    resumed=resumed,
                )
            )
    if open_periods:
        raise ValueError(
            f"trace ended with {len(open_periods)} job(s) still on processors: "
            f"{sorted(open_periods)[:10]}"
        )
    out.sort(key=lambda i: (i.start, i.job_id))
    return out


def timeline_csv(intervals: Iterable[OccupancyInterval]) -> str:
    """Render intervals as CSV text (header + one row per interval).

    Columns: ``job,start,end,duration,width,area,end_type,via,resumed``.
    Floats use ``repr`` so the CSV round-trips exactly.
    """
    buf = io.StringIO()
    buf.write("job,start,end,duration,width,area,end_type,via,resumed\n")
    for iv in intervals:
        buf.write(
            f"{iv.job_id},{iv.start!r},{iv.end!r},{iv.duration!r},"
            f"{iv.width},{iv.area!r},{iv.end_type},"
            f"{iv.via if iv.via is not None else ''},"
            f"{1 if iv.resumed else 0}\n"
        )
    return buf.getvalue()


def ascii_gantt(
    intervals: list[OccupancyInterval],
    width: int = 72,
    max_jobs: int | None = None,
    arrivals: Mapping[int, float] | None = None,
) -> str:
    """Render a per-job Gantt chart as fixed-width ASCII.

    One row per job (ascending job id, truncated to *max_jobs* rows
    with a trailing note).  Time is bucketed into *width* columns; a
    bucket takes the glyph of the interval covering its midpoint:
    ``#`` ran to completion, ``s`` ended in a suspension, ``x`` was a
    killed speculation, ``.`` queued (between the job's arrival -- if
    *arrivals* maps job id to submit time -- or its first dispatch,
    and its last release), space for before/after the job's lifetime.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    if not intervals:
        return "(empty timeline)"
    t0 = min(iv.start for iv in intervals)
    t1 = max(iv.end for iv in intervals)
    if arrivals:
        t0 = min(t0, min(arrivals.values()))
    span = max(t1 - t0, 1e-12)

    by_job: dict[int, list[OccupancyInterval]] = {}
    for iv in intervals:
        by_job.setdefault(iv.job_id, []).append(iv)

    job_ids = sorted(by_job)
    shown = job_ids if max_jobs is None else job_ids[:max_jobs]
    label_w = max(len(str(j)) for j in shown)

    lines = [
        f"t = [{t0:g}, {t1:g}] s, {width} columns "
        f"({span / width:g} s/column)",
        "legend: # ran-to-finish   s suspended   x killed   . queued",
        "",
    ]
    for jid in shown:
        ivs = by_job[jid]
        first = arrivals.get(jid, ivs[0].start) if arrivals else ivs[0].start
        last = max(iv.end for iv in ivs)
        row = []
        for col in range(width):
            mid = t0 + (col + 0.5) * span / width
            ch = " "
            if first <= mid <= last:
                ch = GANTT_GLYPHS["waiting"]
                for iv in ivs:
                    if iv.start <= mid < iv.end:
                        ch = GANTT_GLYPHS.get(iv.end_type, "?")
                        break
            row.append(ch)
        lines.append(f"{jid:>{label_w}} |{''.join(row)}|")
    if len(shown) < len(job_ids):
        lines.append(f"... {len(job_ids) - len(shown)} more job(s) not shown")
    return "\n".join(lines)

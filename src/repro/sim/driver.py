"""The job-scheduling simulation driver.

:class:`SchedulingSimulation` binds together a cluster, a scheduler
policy and a workload, and owns every piece of *mechanism*:

* arrival / finish / timer event handling;
* job state transitions and the wait/run clock bookkeeping;
* processor allocation and release (through the cluster);
* suspension-overhead charging (pay-on-resume model, see below);
* utilisation accounting and the finished-job record.

Schedulers (policy) interact with the driver exclusively through
:meth:`start_job` and :meth:`suspend_job` -- see
:mod:`repro.schedulers.base` for the contract.

Overhead model
--------------

Suspension overhead (paper section V-A) is charged to the suspended job
as *pending overhead*: at suspension we add the cost of writing the
job's memory image to disk plus the cost of reading it back, and the job
pays that time at the start of its next run period, before any useful
progress.  Consequences, all intentional:

* turnaround and slowdown of suspended jobs inflate by the overhead;
* the preempting job starts immediately (we do not model the victim's
  write-back blocking its processors -- the paper's conclusion that
  overhead barely affects SS is insensitive to this, and we verify that
  with an ablation that doubles the charge);
* a job re-suspended while still paying overhead has made zero useful
  progress, so repeated thrashing is maximally punished, which is the
  conservative direction for evaluating a preemptive scheme.

Determinism
-----------

All event ordering is deterministic (see :mod:`repro.sim.events`); the
driver adds no randomness.  Two runs over the same workload and policy
produce identical schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

from repro.cluster.machine import Cluster
from repro.obs.events import Tracer
from repro.sim.engine import EventLoop, SimulationError
from repro.sim.events import Event, EventKind
from repro.workload.job import Job, JobState

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.counters import TraceCounters
    from repro.obs.recorder import TraceRecorder
    from repro.schedulers.base import Scheduler


class SuspensionOverheadModel(Protocol):
    """Anything that can price a suspend/resume cycle for a job."""

    def suspend_resume_cost(self, job: Job) -> float:
        """Total overhead seconds charged for one suspension of *job*."""
        ...


class StateProbeLike(Protocol):
    """Anything that can sample driver state (see metrics.timeseries)."""

    def maybe_sample(self, driver: "SchedulingSimulation") -> None: ...


@dataclass
class SimulationResult:
    """Outcome of one simulation run.

    All derived metrics (slowdowns, per-category tables, ...) are
    computed by :mod:`repro.metrics` from the finished jobs here.
    """

    #: all jobs, finished, in completion order
    jobs: list[Job]
    #: machine size
    n_procs: int
    #: scheduler policy name
    scheduler: str
    #: integral of busy processors over time (processor-seconds)
    busy_proc_seconds: float
    #: time of the last completion (trace starts at its first submit)
    makespan: float
    #: total suspension operations performed
    total_suspensions: int
    #: events dispatched (diagnostics)
    events_dispatched: int = 0
    #: speculative runs killed at their deadline (speculative backfilling)
    total_kills: int = 0
    #: time of the last job arrival
    last_arrival: float = 0.0
    #: busy processor-seconds accumulated up to the last arrival
    busy_in_arrival_window: float = 0.0
    #: whether the arrival window was actually recorded (the last arrival
    #: event was dispatched).  ``False`` for results built by hand or for
    #: runs aborted before the final arrival; distinguishes "no window"
    #: from "window closed at t = 0" (a burst trace), which
    #: ``last_arrival == 0`` alone cannot.
    arrival_window_closed: bool = False
    #: trace counters maintained by the :class:`~repro.obs.events.Tracer`
    #: during the run; ``None`` for untraced runs.  See
    #: :mod:`repro.obs.counters` and ``docs/TRACING.md``.
    counters: "TraceCounters | None" = None

    @property
    def utilization(self) -> float:
        """Overall system utilisation in [0, 1] (busy / capacity).

        Computed over the whole schedule, including the drain tail after
        the last arrival.  For load studies on finite traces prefer
        :attr:`steady_utilization` -- see its docstring.
        """
        if self.makespan <= 0:
            return 0.0
        return self.busy_proc_seconds / (self.n_procs * self.makespan)

    @property
    def steady_utilization(self) -> float:
        """Utilisation over the arrival window only.

        A finite trace ends with a drain: after the last submission the
        queue empties and the machine winds down, which depresses the
        whole-run ratio by an amount that scales with (drain length /
        trace length).  The paper's traces span months, so its "overall
        system utilization" is effectively the steady-state value; our
        shorter synthetic traces make the tail artefact significant --
        especially for preemptive schemes, whose suspended long jobs
        serialise during the drain.  This metric reproduces what the
        paper measured (see EXPERIMENTS.md, Figs 35/38).

        Falls back to whole-run :attr:`utilization` only when the window
        was never recorded (:attr:`arrival_window_closed` is false).  A
        window that *closed at t = 0* -- every arrival in one burst at
        trace start -- has zero length, so no steady-state utilisation
        exists and this returns 0.0 rather than silently substituting
        the drain-tail-depressed whole-run figure.
        """
        if not self.arrival_window_closed:
            return self.utilization
        if self.last_arrival <= 0:
            return 0.0
        return self.busy_in_arrival_window / (self.n_procs * self.last_arrival)


class SchedulingSimulation:
    """Drives one scheduler policy over one workload on one cluster.

    Parameters
    ----------
    cluster:
        The machine; must be fresh (all processors free).
    scheduler:
        The policy object; bound to this driver for the run.
    overhead_model:
        Optional suspension-overhead pricing; ``None`` means free
        suspension (the paper's sections III-IV assumption).
    recorder:
        Optional :class:`~repro.obs.recorder.TraceRecorder` receiving
        the run's event stream.  ``None`` (or a recorder whose
        ``enabled`` flag is false, e.g. the shared
        :data:`~repro.obs.recorder.NULL_RECORDER`) disables tracing
        entirely: :attr:`tracer` stays ``None`` and every emission site
        reduces to a single ``is not None`` check -- the
        zero-overhead-when-off contract pinned by
        ``benchmarks/bench_micro.py``.  Tracing never changes the
        schedule; traced and untraced runs are event-for-event
        identical.
    """

    def __init__(
        self,
        cluster: Cluster,
        scheduler: "Scheduler",
        overhead_model: SuspensionOverheadModel | None = None,
        migratable: bool = False,
        probe: "StateProbeLike | None" = None,
        recorder: "TraceRecorder | None" = None,
    ) -> None:
        if cluster.busy_count:
            raise ValueError("cluster must start empty")
        self.cluster = cluster
        self.scheduler = scheduler
        self.overhead_model = overhead_model
        #: optional time-series probe (see repro.metrics.timeseries)
        self.probe = probe
        #: the recorder handed in at construction (``None`` if untraced)
        self.recorder = recorder
        #: emission facade; ``None`` unless a recorder with
        #: ``enabled=True`` was supplied (the single guard every
        #: emission site checks)
        self.tracer: Tracer | None = (
            Tracer(recorder) if recorder is not None and recorder.enabled else None
        )
        #: Parsons & Sevcik's *migratable* model: a suspended job may
        #: restart on any processors.  The paper's machines do not
        #: support migration (local restart is the defining constraint);
        #: this switch exists to quantify that constraint's cost in the
        #: ablation benches.
        self.migratable = migratable
        self.loop = EventLoop()
        self.loop.on(EventKind.JOB_ARRIVAL, self._handle_arrival)
        self.loop.on(EventKind.JOB_FINISH, self._handle_finish)
        self.loop.on(EventKind.TIMER, self._handle_timer)
        self.loop.on(EventKind.JOB_KILL, self._handle_kill)

        self._queued: dict[int, Job] = {}
        # keyed by job_id, insertion-ordered by dispatch time: iteration
        # order is part of the schedule, so hash order must never be
        self._running: dict[int, Job] = {}
        self._finished: list[Job] = []
        self._finish_events: dict[int, Event] = {}
        self._arrivals_pending = 0
        self.total_suspensions = 0
        self.total_kills = 0

        # utilisation integral
        self._busy_seconds = 0.0
        self._busy_mark = 0.0
        self._window_busy = 0.0
        self._window_end = 0.0
        self._window_closed = False

    # ------------------------------------------------------------------
    # read-only views for schedulers & tests
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.loop.now

    def queued_jobs(self) -> list[Job]:
        """Queued jobs in queue-entry order (arrivals and re-queues)."""
        # repro-lint: disable=RPR001 -- int-keyed dict filled in event order; insertion order IS the queue discipline
        return list(self._queued.values())

    def running_jobs(self) -> list[Job]:
        """Currently running jobs in dispatch order (oldest first)."""
        # repro-lint: disable=RPR001 -- int-keyed dict filled at dispatch; insertion order is deterministic by construction
        return list(self._running.values())

    def running_job(self, job_id: int) -> Job | None:
        """The running job with *job_id*, or ``None`` -- O(1) lookup so
        schedulers can resolve processor owners without scanning."""
        return self._running.get(job_id)

    @property
    def queue_length(self) -> int:
        return len(self._queued)

    @property
    def running_count(self) -> int:
        return len(self._running)

    # ------------------------------------------------------------------
    # scheduler services
    # ------------------------------------------------------------------
    def can_start(self, job: Job) -> bool:
        """Whether *job* could start right now on free processors."""
        if job.needs_specific_procs:
            return self.cluster.can_allocate_specific(job.suspended_procs)
        return self.cluster.can_allocate(job.procs)

    def start_job(
        self,
        job: Job,
        procs: frozenset[int] | None = None,
        via: str | None = None,
    ) -> frozenset[int]:
        """(Re)start a queued job immediately; returns its processors.

        Resumed jobs receive exactly their original processor set (local
        preemption).  For fresh starts, *procs* lets the scheduler place
        the job explicitly (the SS pseudocode schedules a preemptor on
        its victims' processors so they unpin when it finishes);
        otherwise the cluster's allocation policy chooses.  Raises on any
        precondition violation -- a scheduler asking to start an
        unstartable job is a policy bug worth crashing on.

        *via* is a trace-only annotation of the dispatch path
        (``"backfill"``, ``"speculative"``, ``None`` for a plain start);
        it has no scheduling effect and is ignored when tracing is off.
        """
        if job.job_id not in self._queued:
            raise SimulationError(f"start_job: job {job.job_id} is not queued")
        resumed = job.needs_specific_procs or (self.migratable and job.was_suspended)
        self._account_busy()  # close the interval at the old busy level
        if job.needs_specific_procs:
            if procs is not None and frozenset(procs) != job.suspended_procs:
                raise SimulationError(
                    f"start_job: job {job.job_id} must resume on its "
                    "original processors"
                )
            procs = self.cluster.allocate_specific(job.suspended_procs, job.job_id)
        elif procs is not None:
            if len(procs) != job.procs:
                raise SimulationError(
                    f"start_job: job {job.job_id} given {len(procs)} "
                    f"processors, requests {job.procs}"
                )
            procs = self.cluster.allocate_specific(procs, job.job_id)
        else:
            procs = self.cluster.allocate(job.procs, job.job_id)
        job.mark_started(self.now, procs)
        job.last_dispatch_time = self.now
        job.expected_end = self.now + job.remaining_estimate()
        occupancy = max(job.remaining_useful + job.pending_overhead, 0.0)
        ev = self.loop.at(
            self.now + occupancy, EventKind.JOB_FINISH, job, epoch=job.epoch
        )
        self._finish_events[job.job_id] = ev
        del self._queued[job.job_id]
        self._running[job.job_id] = job
        if self.tracer is not None:
            self.tracer.dispatch(self.now, job, procs, resumed, via)
        return procs

    def suspend_job(self, job: Job, preemptor: int | None = None) -> None:
        """Suspend a running job; it re-enters the queue tail.

        Charges the overhead model's suspend+resume cost as pending
        overhead (paid at the next dispatch, before useful progress).

        *preemptor* is a trace-only annotation: the id of the idle job
        on whose behalf this victim is being suspended (``None`` when
        unknown).  It has no scheduling effect.
        """
        if job.job_id not in self._running:
            raise SimulationError(f"suspend_job: job {job.job_id} is not running")
        ran = self.now - job.last_dispatch_time
        if ran < -1e-9:
            raise SimulationError(f"job {job.job_id}: negative run period {ran}")
        paid = min(max(ran, 0.0), job.pending_overhead)
        useful = max(ran, 0.0) - paid
        job.total_overhead += paid
        job.pending_overhead -= paid
        job.remaining_useful = max(job.remaining_useful - useful, 0.0)
        overhead_added = 0.0
        if self.overhead_model is not None:
            overhead_added = self.overhead_model.suspend_resume_cost(job)
            job.pending_overhead += overhead_added

        ev = self._finish_events.pop(job.job_id, None)
        if ev is not None:
            self.loop.cancel(ev)
        self._account_busy()
        released = job.allocated_procs
        self.cluster.release(released, job.job_id)
        job.mark_suspended(self.now)
        if self.migratable:
            job.suspended_procs = frozenset()  # may restart anywhere
        del self._running[job.job_id]
        self._queued[job.job_id] = job
        self.total_suspensions += 1
        if self.tracer is not None:
            self.tracer.suspend(self.now, job, released, preemptor, overhead_added)

    def start_speculative(
        self, job: Job, deadline: float, procs: frozenset[int] | None = None
    ) -> frozenset[int]:
        """Start *job* now, to be killed-and-requeued at *deadline*.

        Speculative backfilling (Perkovic & Keleher): the job gets a
        hole shorter than its estimate; if it completes within the hole
        (finish fires before the deadline) the speculation won, else
        the kill event discards its progress and requeues it.  Only
        fresh (never-suspended) jobs may speculate -- killing a job
        that holds a checkpoint would silently drop the checkpoint.
        """
        if job.needs_specific_procs:
            raise SimulationError(
                f"start_speculative: job {job.job_id} holds a suspension "
                "checkpoint and cannot be run speculatively"
            )
        if deadline <= self.now:
            raise SimulationError("start_speculative: deadline not in the future")
        got = self.start_job(job, procs=procs, via="speculative")
        self.loop.at(deadline, EventKind.JOB_KILL, job, epoch=job.epoch)
        return got

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _handle_kill(self, event: Event) -> None:
        job: Job = event.payload
        if event.epoch != job.epoch or job.state is not JobState.RUNNING:
            return  # the speculation won (finished) or was re-dispatched
        ev = self._finish_events.pop(job.job_id, None)
        if ev is not None:
            self.loop.cancel(ev)
        self._account_busy()
        released = job.allocated_procs
        wasted = max(self.now - job.last_dispatch_time, 0.0)
        self.cluster.release(released, job.job_id)
        job.mark_killed(self.now)
        del self._running[job.job_id]
        self._queued[job.job_id] = job
        self.total_kills += 1
        if self.tracer is not None:
            self.tracer.kill(self.now, job, released, wasted)
        self.scheduler.on_kill(job)
        self._after_event()

    def _handle_arrival(self, event: Event) -> None:
        job: Job = event.payload
        self._arrivals_pending -= 1
        if self._arrivals_pending == 0:
            # snapshot the busy integral at the end of the arrival
            # window, before this arrival's scheduling side effects
            self._account_busy()
            self._window_busy = self._busy_seconds
            self._window_end = self.now
            self._window_closed = True
        job.mark_submitted(self.now)
        self._queued[job.job_id] = job
        if self.tracer is not None:
            self.tracer.arrival(self.now, job)
        self.scheduler.on_arrival(job)
        self._after_event()

    def _handle_finish(self, event: Event) -> None:
        job: Job = event.payload
        if event.epoch != job.epoch or job.state is not JobState.RUNNING:
            return  # stale: the job was suspended after this was scheduled
        self._finish_events.pop(job.job_id, None)
        job.total_overhead += job.pending_overhead
        job.pending_overhead = 0.0
        job.remaining_useful = 0.0
        self._account_busy()
        self.cluster.release(job.allocated_procs, job.job_id)
        job.mark_finished(self.now)
        del self._running[job.job_id]
        self._finished.append(job)
        if self.tracer is not None:
            self.tracer.finish(self.now, job)
        self.scheduler.on_finish(job)
        self._after_event()

    def _handle_timer(self, event: Event) -> None:
        if self._work_remains():
            self.scheduler.on_timer()
            interval = self.scheduler.timer_interval
            if interval and self._work_remains():
                self.loop.after(interval, EventKind.TIMER)
        self._after_event()

    def _work_remains(self) -> bool:
        return bool(self._queued or self._running or self._arrivals_pending > 0)

    def _account_busy(self) -> None:
        self._busy_seconds += self.cluster.busy_count * (self.now - self._busy_mark)
        self._busy_mark = self.now

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def _after_event(self) -> None:
        if self.probe is not None:
            self.probe.maybe_sample(self)

    def run(self, jobs: list[Job], require_drain: bool = True) -> SimulationResult:
        """Simulate *jobs* to completion and return the result record.

        Parameters
        ----------
        jobs:
            Fresh (unsimulated) jobs; scheduled as arrival events.
        require_drain:
            If true (default), raise :class:`SimulationError` when any
            job fails to finish -- starvation or a scheduler deadlock.
        """
        if not jobs:
            raise ValueError("empty workload")
        for job in jobs:
            if job.state is not JobState.PENDING:
                raise ValueError(
                    f"job {job.job_id} is {job.state.value}, need a fresh copy "
                    "(use repro.workload.job.fresh_copies)"
                )
        self.scheduler.bind(self)
        if self.tracer is not None:
            self.tracer.run_begin(
                self.now,
                self.scheduler.name,
                self.scheduler.config(),
                self.cluster.n_procs,
                len(jobs),
            )
        self.scheduler.on_begin()
        self._arrivals_pending = len(jobs)
        for job in jobs:
            self.loop.at(job.submit_time, EventKind.JOB_ARRIVAL, job)
        interval = self.scheduler.timer_interval
        if interval:
            self.loop.at(min(j.submit_time for j in jobs) + interval, EventKind.TIMER)

        self.loop.run()
        self.scheduler.on_end()
        self._account_busy()

        if require_drain and len(self._finished) != len(jobs):
            unfinished = sorted(
                {j.job_id for j in jobs} - {j.job_id for j in self._finished}
            )
            raise SimulationError(
                f"{len(unfinished)} job(s) never finished "
                f"(first few ids: {unfinished[:10]}) -- scheduler "
                f"{self.scheduler.name!r} starved or deadlocked them"
            )
        makespan = max((j.finish_time or 0.0) for j in self._finished) if self._finished else 0.0
        if self.tracer is not None:
            self.tracer.run_end(
                self.now,
                finished=len(self._finished),
                total_suspensions=self.total_suspensions,
                total_kills=self.total_kills,
                busy_proc_seconds=self._busy_seconds,
                makespan=makespan,
                events_dispatched=self.loop.dispatched,
            )
        return SimulationResult(
            jobs=list(self._finished),
            n_procs=self.cluster.n_procs,
            scheduler=self.scheduler.name,
            busy_proc_seconds=self._busy_seconds,
            makespan=makespan,
            total_suspensions=self.total_suspensions,
            events_dispatched=self.loop.dispatched,
            total_kills=self.total_kills,
            last_arrival=self._window_end,
            busy_in_arrival_window=self._window_busy,
            arrival_window_closed=self._window_closed,
            counters=self.tracer.counters if self.tracer is not None else None,
        )

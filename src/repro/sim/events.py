"""Typed simulation events and the event calendar.

Event ordering
--------------

Two events may carry the same timestamp (e.g. a job finishing at the exact
instant another arrives).  The simulation must process them in a fixed,
documented order or results become run-to-run nondeterministic.  The
calendar therefore orders events by the triple ``(time, priority, seq)``:

* ``time`` -- simulation time in seconds (float);
* ``priority`` -- the numeric value of the :class:`EventKind`; lower runs
  first.  Finishes precede arrivals, which precede timers, so processors
  freed at time *t* are visible to the scheduler when the arrival at *t*
  is handled, and a preemption sweep at *t* sees the post-arrival queue;
* ``seq`` -- a monotonically increasing insertion counter that breaks the
  remaining ties in FIFO insertion order.

Cancellation
------------

Suspending a job invalidates its scheduled finish event.  Deleting from
the middle of a binary heap is awkward, so the calendar uses *lazy
cancellation*: :meth:`EventQueue.cancel` marks the entry dead and
:meth:`EventQueue.pop` skips dead entries.  The driver additionally uses
per-job *epochs* (see :mod:`repro.sim.driver`) as a second guard so a
stale finish event can never act on a job that has been suspended and
resumed since the event was scheduled.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Iterator


class EventKind(IntEnum):
    """Kinds of simulation events, in dispatch-priority order.

    The integer value doubles as the tie-breaking priority for events that
    share a timestamp; smaller values dispatch first.
    """

    #: A running job completed its work (or its overhead-inflated work).
    JOB_FINISH = 0
    #: A job entered the system and joined the wait queue.
    JOB_ARRIVAL = 1
    #: Periodic scheduler timer (e.g. the 60 s preemption sweep).
    TIMER = 2
    #: Generic user event; dispatches after the built-in kinds.
    GENERIC = 3
    #: Deadline of a speculative run (kill-and-requeue); dispatches last
    #: so a finish at the same instant wins (the job made it).
    JOB_KILL = 4


@dataclass(order=False)
class Event:
    """A single calendar entry.

    Parameters
    ----------
    time:
        Absolute simulation time at which the event fires.
    kind:
        The :class:`EventKind` used for dispatch and tie-breaking.
    payload:
        Opaque data for the handler (typically a job object).
    epoch:
        Guard value for lazily invalidated events; interpreted by the
        driver, not by the calendar.
    """

    time: float
    kind: EventKind
    payload: Any = None
    epoch: int = 0
    cancelled: bool = field(default=False, compare=False)
    #: set by the calendar when the event is popped; a fired event is no
    #: longer queued, so cancelling it must not touch the live count
    fired: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event dead; the calendar will silently skip it."""
        self.cancelled = True


class EventQueue:
    """A cancellable priority calendar of :class:`Event` objects.

    The queue is a binary heap keyed on ``(time, kind, seq)``.  All
    operations are O(log n) except :meth:`peek_time`, which is amortised
    O(1) after dead-entry cleanup.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> Event:
        """Insert *event* and return it (handy for chaining)."""
        # repro-lint: disable=RPR003 -- x != x is the standard NaN probe, not an equality test
        if event.time != event.time:  # NaN guard
            raise ValueError("event time is NaN")
        heapq.heappush(
            self._heap, (event.time, int(event.kind), next(self._counter), event)
        )
        self._live += 1
        return event

    def schedule(
        self,
        time: float,
        kind: EventKind,
        payload: Any = None,
        epoch: int = 0,
    ) -> Event:
        """Create an :class:`Event` and insert it in one call."""
        return self.push(Event(time=time, kind=kind, payload=payload, epoch=epoch))

    def cancel(self, event: Event) -> None:
        """Lazily cancel *event*.

        Cancelling an event that already fired (was popped) or was already
        cancelled is a no-op: the live count only decrements for entries
        still queued.  Without the ``fired`` guard a late cancel would
        debit ``_live`` for an entry the heap no longer holds, silently
        undercounting the remaining live events and ending
        :meth:`~repro.sim.engine.EventLoop.run` early.
        """
        if event.fired or event.cancelled:
            return
        event.cancel()
        self._live -= 1

    def _drop_dead(self) -> None:
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises
        ------
        IndexError
            If the calendar holds no live events.
        """
        self._drop_dead()
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        event = heapq.heappop(self._heap)[3]
        event.fired = True
        self._live -= 1
        return event

    def peek_time(self) -> float | None:
        """Return the timestamp of the next live event, or ``None``."""
        self._drop_dead()
        if not self._heap:
            return None
        return self._heap[0][0]

    def drain(self) -> Iterator[Event]:
        """Yield live events in order until the calendar is empty."""
        while self:
            yield self.pop()

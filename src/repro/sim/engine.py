"""The single-threaded discrete-event loop.

:class:`EventLoop` owns the clock and the :class:`~repro.sim.events.EventQueue`
and repeatedly dispatches the earliest event to a registered handler.  It
knows nothing about jobs or processors; the scheduling semantics live in
:mod:`repro.sim.driver`.

Design notes
------------

* The clock never moves backwards: scheduling an event in the past raises
  immediately rather than silently reordering history.
* Handlers are registered per :class:`~repro.sim.events.EventKind`; an
  unhandled kind is an error, because a dropped event in a scheduling
  simulation silently corrupts every downstream metric.
* ``max_events``/``max_time`` guards turn runaway simulations (e.g. a
  scheduler that re-posts timers forever) into loud failures.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.events import Event, EventKind, EventQueue

Handler = Callable[[Event], None]


class SimulationError(RuntimeError):
    """Raised when the simulation violates one of its own invariants."""


class EventLoop:
    """Deterministic discrete-event executor.

    Parameters
    ----------
    start_time:
        Initial simulation clock value (seconds).
    max_events:
        Hard cap on dispatched events; exceeded means a logic error
        (e.g. a timer storm) and raises :class:`SimulationError`.
    """

    def __init__(self, start_time: float = 0.0, max_events: int = 50_000_000) -> None:
        self.queue = EventQueue()
        self._now = float(start_time)
        self._handlers: dict[EventKind, Handler] = {}
        self._dispatched = 0
        self._max_events = int(max_events)
        self._stopped = False

    # ------------------------------------------------------------------
    # clock & bookkeeping
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def dispatched(self) -> int:
        """Number of events dispatched so far."""
        return self._dispatched

    # ------------------------------------------------------------------
    # registration & scheduling
    # ------------------------------------------------------------------
    def on(self, kind: EventKind, handler: Handler) -> None:
        """Register *handler* for events of *kind* (one handler per kind)."""
        self._handlers[kind] = handler

    def at(
        self,
        time: float,
        kind: EventKind,
        payload: Any = None,
        epoch: int = 0,
    ) -> Event:
        """Schedule an event at absolute time *time*."""
        if time < self._now:
            raise SimulationError(
                f"attempt to schedule event at t={time} before now={self._now}"
            )
        return self.queue.schedule(time, kind, payload, epoch)

    def after(
        self,
        delay: float,
        kind: EventKind,
        payload: Any = None,
        epoch: int = 0,
    ) -> Event:
        """Schedule an event *delay* seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self._now + delay, kind, payload, epoch)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (lazy; safe to call twice)."""
        self.queue.cancel(event)

    def stop(self) -> None:
        """Request the loop to exit after the current event.

        Calling :meth:`stop` while idle (before or between :meth:`run`
        calls) leaves a *pending* stop: the next :meth:`run` returns
        immediately without dispatching anything.  The stop is consumed
        when a :meth:`run` call honours it, so a subsequent :meth:`run`
        resumes normally.
        """
        self._stopped = True

    @property
    def stop_pending(self) -> bool:
        """Whether a :meth:`stop` request has not yet been honoured."""
        return self._stopped

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> Event | None:
        """Dispatch exactly one event; return it, or ``None`` if idle."""
        if not self.queue:
            return None
        event = self.queue.pop()
        if event.time < self._now:
            raise SimulationError(
                f"event calendar yielded t={event.time} < now={self._now}"
            )
        self._now = event.time
        handler = self._handlers.get(event.kind)
        if handler is None:
            raise SimulationError(f"no handler registered for {event.kind!r}")
        self._dispatched += 1
        if self._dispatched > self._max_events:
            raise SimulationError(
                f"event budget exhausted ({self._max_events} events); "
                "likely a timer storm or a livelocked scheduler"
            )
        handler(event)
        return event

    def run(self, until: float | None = None) -> None:
        """Dispatch events until the calendar empties.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire after this time
            (the clock is left at the last dispatched event).

        A pending :meth:`stop` (issued before this call) is honoured:
        the loop dispatches nothing and the stop is consumed.  Resetting
        the flag here instead would silently discard stops issued
        between runs -- see :meth:`stop`.
        """
        while self.queue and not self._stopped:
            next_time = self.queue.peek_time()
            if until is not None and next_time is not None and next_time > until:
                break
            self.step()
        # consume the stop that ended (or pre-empted) this run so the
        # next run() starts fresh
        self._stopped = False

"""Discrete-event simulation substrate.

The paper evaluates its scheduling schemes with a "locally developed
simulator"; this subpackage is that substrate.  It provides:

* :mod:`repro.sim.events` -- typed simulation events and a cancellable,
  deterministically ordered event calendar.
* :mod:`repro.sim.engine` -- the single-threaded event loop
  (:class:`~repro.sim.engine.EventLoop`).
* :mod:`repro.sim.driver` -- the job-scheduling driver
  (:class:`~repro.sim.driver.SchedulingSimulation`) that binds a cluster,
  a scheduler and a workload together and records per-job outcomes.

The engine is deliberately independent of job scheduling: events are
opaque payloads with a dispatch key, so the same loop could drive other
models.  Determinism is a hard requirement for reproduction work, so
simultaneous events are totally ordered by ``(time, priority, sequence)``.
"""

from repro.sim.engine import EventLoop
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.driver import SchedulingSimulation, SimulationResult

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "EventLoop",
    "SchedulingSimulation",
    "SimulationResult",
]

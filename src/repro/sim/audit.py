"""Independent schedule auditing.

The driver enforces its invariants while simulating; this module
re-checks a *finished* simulation from the outside, using only the
per-job records (states, timestamps, counters) and the run's summary.
It shares no bookkeeping with the driver, so a bug that corrupts the
driver's internal state and its metrics *consistently* still gets
caught here.

Checks (each corresponds to an invariant in DESIGN.md §5):

* every job finished, exactly once, with sane timestamps
  (submit <= first start <= finish; turnaround >= run time + overhead);
* conservation: the busy-processor integral equals the sum of job
  areas (procs x (run time + paid overhead));
* utilisation within [0, 1]; makespan equals the last completion;
* suspension accounting: zero suspensions implies zero overhead and
  turnaround == wait + run time exactly; the run's total suspensions
  equals the sum of per-job counts;
* non-preemptive runs: no job was ever suspended;
* clock closure: no pending overhead or residual useful work remains.

:func:`audit_result` raises :class:`AuditError` with every violation
listed (not just the first), so a failing audit reads like a report.
"""

from __future__ import annotations

from repro.sim.driver import SimulationResult
from repro.workload.job import JobState

#: numeric slack for float comparisons (seconds / processor-seconds)
_EPS = 1e-6


class AuditError(AssertionError):
    """A finished simulation violated one or more schedule invariants."""

    def __init__(self, violations: list[str]) -> None:
        self.violations = violations
        preview = "\n  - ".join(violations[:20])
        more = f"\n  (+{len(violations) - 20} more)" if len(violations) > 20 else ""
        super().__init__(f"{len(violations)} audit violation(s):\n  - {preview}{more}")


def audit_result(
    result: SimulationResult,
    expect_preemption: bool | None = None,
) -> None:
    """Audit a finished run; raise :class:`AuditError` on any violation.

    Parameters
    ----------
    result:
        The run to check.
    expect_preemption:
        ``False`` asserts no job was ever suspended (for non-preemptive
        policies); ``True`` asserts the counters are consistent with at
        least the recorded suspensions; ``None`` skips the policy check.
    """
    v: list[str] = []
    area = 0.0
    last_finish = 0.0
    suspension_total = 0

    seen_ids: set[int] = set()
    for job in result.jobs:
        jid = job.job_id
        if jid in seen_ids:
            v.append(f"job {jid}: appears twice in the result")
            continue
        seen_ids.add(jid)

        if job.state is not JobState.FINISHED:
            v.append(f"job {jid}: state {job.state.value}, expected finished")
            continue
        if job.finish_time is None or job.first_start_time is None:
            v.append(f"job {jid}: missing timestamps")
            continue

        if job.first_start_time < job.submit_time - _EPS:
            v.append(f"job {jid}: started before submission")
        if job.finish_time < job.first_start_time - _EPS:
            v.append(f"job {jid}: finished before starting")

        turnaround = job.finish_time - job.submit_time
        floor = job.run_time + job.total_overhead + job.wasted_time
        if turnaround < floor - _EPS:
            v.append(
                f"job {jid}: turnaround {turnaround:.3f} below "
                f"run+overhead {floor:.3f}"
            )

        if job.pending_overhead > _EPS:
            v.append(f"job {jid}: unpaid overhead {job.pending_overhead:.3f}")
        if job.remaining_useful > _EPS:
            v.append(f"job {jid}: unfinished work {job.remaining_useful:.3f}")
        if job.suspension_count == 0 and job.kill_count == 0:
            if job.total_overhead > _EPS:
                v.append(f"job {jid}: overhead without suspension")
            slack = turnaround - (job.finish_time - job.first_start_time) - (
                job.first_start_time - job.submit_time
            )
            if abs(slack) > _EPS:  # pragma: no cover - arithmetic identity
                v.append(f"job {jid}: time accounting broken")
            run_span = job.finish_time - job.first_start_time
            if abs(run_span - job.run_time) > _EPS:
                v.append(
                    f"job {jid}: ran {run_span:.3f}s uninterrupted but "
                    f"run_time is {job.run_time:.3f}s"
                )
        if job.suspension_count < 0:
            v.append(f"job {jid}: negative suspension count")
        if job.allocated_procs:
            v.append(f"job {jid}: still holds processors after finishing")

        area += job.procs * (job.run_time + job.total_overhead + job.wasted_time)
        last_finish = max(last_finish, job.finish_time)
        suspension_total += job.suspension_count

    # run-level checks
    if abs(area - result.busy_proc_seconds) > max(_EPS, 1e-9 * area):
        v.append(
            f"conservation: job areas {area:.3f} != busy integral "
            f"{result.busy_proc_seconds:.3f}"
        )
    if abs(last_finish - result.makespan) > _EPS:
        v.append(
            f"makespan {result.makespan:.3f} != last completion {last_finish:.3f}"
        )
    if not (0.0 - _EPS <= result.utilization <= 1.0 + _EPS):
        v.append(f"utilization {result.utilization:.4f} out of [0, 1]")
    if suspension_total != result.total_suspensions:
        v.append(
            f"suspension totals disagree: jobs say {suspension_total}, "
            f"run says {result.total_suspensions}"
        )
    if expect_preemption is False and suspension_total:
        v.append(
            f"non-preemptive policy performed {suspension_total} suspensions"
        )
    if expect_preemption is True and result.total_suspensions < 0:
        v.append("negative run-level suspension count")  # pragma: no cover

    if v:
        raise AuditError(v)

"""Command-line interface: ``repro-sched`` (or ``python -m repro``).

Subcommands
-----------

``run``
    Simulate one scheduler over a synthetic or SWF trace and print the
    per-category report.
``compare``
    Run the paper's standard scheme set over one trace and print the
    comparison matrices.
``experiment``
    Regenerate a paper table/figure group by id (see ``--list``).
``trace``
    Decision traces (see ``docs/TRACING.md``): ``record`` a traced run
    to JSONL, ``summarize`` a trace by independent replay, ``filter``
    events by type/job, ``gantt`` an ASCII/CSV occupancy timeline.
``workload``
    Archive-log tooling over the streaming pipeline (see
    ``docs/WORKLOADS.md``): ``validate`` an SWF log with a one-pass
    anomaly report, ``stats`` for a constant-memory characterisation,
    ``replay`` a long log through the sharded grid executor.
``lint``
    repro-lint, the determinism & protocol-conformance static analyser
    (see ``docs/STATIC_ANALYSIS.md``); all arguments after ``lint`` are
    forwarded to :mod:`repro.lint.cli`.

Examples
--------

::

    repro-sched run --trace CTC --scheduler ss --sf 2 --jobs 2000
    repro-sched compare --trace SDSC --jobs 1500 --metric turnaround
    repro-sched experiment figs-7-10 --trace CTC
    repro-sched experiment --list
    repro-sched trace record --out run.jsonl --trace CTC --jobs 500 --scheduler ss
    repro-sched trace summarize run.jsonl
    repro-sched trace filter run.jsonl --type decision --job 42
    repro-sched trace gantt run.jsonl --max-jobs 30
    repro-sched workload validate CTC-SP2.swf
    repro-sched workload stats CTC-SP2.swf --load 1.3
    repro-sched workload replay CTC-SP2.swf --scheduler ss --sf 2 --window 24
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Callable

from repro.analysis.report import experiment_report, scheme_comparison_report
from repro.core.immediate_service import ImmediateServiceScheduler
from repro.core.overhead import DiskSwapOverheadModel
from repro.core.selective_suspension import SelectiveSuspensionScheduler
from repro.core.tss import TunableSelectiveSuspensionScheduler
from repro.experiments import paper
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import GridPolicy, compare_schemes_parallel
from repro.experiments.runner import simulate, standard_schemes
from repro.obs import GridCounters, format_grid_counters
from repro.schedulers.base import Scheduler
from repro.schedulers.conservative import ConservativeBackfillScheduler
from repro.schedulers.easy import EasyBackfillScheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.workload.archive import get_preset
from repro.workload.estimates import AccurateEstimates, InaccurateEstimates
from repro.workload.job import Job
from repro.workload.load import scale_load
from repro.workload.swf import jobs_from_swf_records, read_swf
from repro.workload.synthetic import generate_trace

#: experiment id -> (function, needs-trace)
EXPERIMENTS: dict[str, tuple[Callable[..., paper.ExperimentOutput], bool]] = {
    "distribution": (paper.job_distribution, True),
    "tables-4-5": (paper.ns_baseline_slowdowns, True),
    "figs-4-6": (paper.two_task_figures, False),
    "figs-7-10": (paper.ss_average_metrics, True),
    "figs-11-16": (paper.ss_worst_case, True),
    "figs-13-18": (paper.tss_worst_case, True),
    "figs-19-30": (paper.estimate_impact, True),
    "figs-31-34": (paper.overhead_impact, True),
    "figs-35-44": (paper.load_variation, True),
    "hybrids": (paper.hybrid_comparison, True),
}


def _build_scheduler(args: argparse.Namespace) -> Scheduler:
    kind = args.scheduler.lower()
    if kind == "fcfs":
        return FCFSScheduler()
    if kind in ("easy", "ns"):
        return EasyBackfillScheduler()
    if kind in ("conservative", "cons"):
        return ConservativeBackfillScheduler()
    if kind == "gang":
        from repro.schedulers.gang import GangScheduler

        return GangScheduler()
    if kind == "relaxed":
        from repro.schedulers.relaxed import RelaxedBackfillScheduler

        return RelaxedBackfillScheduler()
    if kind in ("spec", "speculative"):
        from repro.schedulers.speculative import SpeculativeBackfillScheduler

        return SpeculativeBackfillScheduler()
    if kind == "ss":
        return SelectiveSuspensionScheduler(suspension_factor=args.sf)
    if kind == "tss":
        return TunableSelectiveSuspensionScheduler(suspension_factor=args.sf)
    if kind == "ss-easy":
        from repro.schedulers.hybrids import SuspensionWithHeadGuarantee

        return SuspensionWithHeadGuarantee(suspension_factor=args.sf)
    if kind in ("tss-cons", "tss-conservative"):
        from repro.schedulers.hybrids import TunableSuspensionWithGuarantees

        return TunableSuspensionWithGuarantees(suspension_factor=args.sf)
    if kind == "is":
        return ImmediateServiceScheduler()
    raise SystemExit(f"unknown scheduler {args.scheduler!r}")


def _load_jobs(args: argparse.Namespace) -> tuple[list[Job], int]:
    """Returns (jobs, n_procs) from either --swf or the preset generator."""
    if getattr(args, "swf", None):
        preset = get_preset(args.trace)
        records = read_swf(args.swf)
        jobs = jobs_from_swf_records(records, max_procs=preset.n_procs)
        if args.jobs and args.jobs < len(jobs):
            jobs = jobs[: args.jobs]
        n_procs = preset.n_procs
    else:
        estimates = (
            InaccurateEstimates() if args.estimates == "inaccurate" else AccurateEstimates()
        )
        jobs = generate_trace(
            args.trace, n_jobs=args.jobs, seed=args.seed, estimate_model=estimates
        )
        n_procs = get_preset(args.trace).n_procs
    if args.load != 1.0:
        jobs = scale_load(jobs, args.load)
    return jobs, n_procs


def _add_trace_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", default="CTC", help="preset: CTC, SDSC or KTH")
    p.add_argument("--jobs", type=int, default=2000, help="number of jobs")
    p.add_argument("--seed", type=int, default=7, help="workload seed")
    p.add_argument("--load", type=float, default=1.0, help="load factor (section VI)")
    p.add_argument(
        "--estimates",
        choices=("accurate", "inaccurate"),
        default="accurate",
        help="user estimate model (section V)",
    )
    p.add_argument("--swf", help="path to a real SWF log (overrides the generator)")
    p.add_argument(
        "--overhead",
        action="store_true",
        help="enable the disk-swap suspension overhead model (section V-A)",
    )


def _add_parallel_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="fan independent simulations over N processes "
        "(0 = one per CPU; default: serial)",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed result cache directory; repeated runs "
        "with identical (trace, scheduler, overhead) cells skip simulation, "
        "and every finished cell is committed immediately (a killed run "
        "resumes where it stopped)",
    )
    p.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="declare a grid cell hung after this many seconds on a worker "
        "and retry it on a fresh pool (default: wait forever)",
    )
    p.add_argument(
        "--cell-retries",
        type=int,
        default=0,
        metavar="N",
        help="retry a crashed or hung cell up to N times with exponential "
        "backoff before giving up (default: 0)",
    )
    p.add_argument(
        "--shm",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="publish each distinct workload once to a shared-memory "
        "segment so grid cells pickle a ~200-byte reference instead of "
        "the whole job list (default: on whenever --workers uses a pool; "
        "--no-shm forces the inline path)",
    )


def _cache_from_args(args: argparse.Namespace) -> ResultCache | None:
    return ResultCache(args.cache_dir) if getattr(args, "cache_dir", None) else None


def _policy_from_args(args: argparse.Namespace) -> GridPolicy:
    return GridPolicy(
        cell_timeout=getattr(args, "cell_timeout", None),
        cell_retries=getattr(args, "cell_retries", 0),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sched",
        description="Selective preemption strategies for parallel job scheduling "
        "(reproduction of Kettimuthu et al., ICPP 2002)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "command families:\n"
            "  run / compare / experiment   simulate and reproduce the paper\n"
            "  inspect / workload           characterise synthetic or archive traces\n"
            "  trace                        record and replay decision traces\n"
            "  lint                         determinism static analysis\n"
            "docs: README.md, docs/WORKLOADS.md, docs/TRACING.md, "
            "docs/STATIC_ANALYSIS.md"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one scheduler over one trace")
    _add_trace_args(run)
    run.add_argument(
        "--scheduler",
        default="ss",
        help="fcfs | easy/ns | conservative | relaxed | speculative | gang | ss | tss | is | ss-easy | tss-conservative",
    )
    run.add_argument("--sf", type=float, default=2.0, help="suspension factor")
    run.add_argument(
        "--metric", choices=("slowdown", "turnaround", "wait"), default="slowdown"
    )

    cmp_ = sub.add_parser("compare", help="paper's standard scheme comparison")
    _add_trace_args(cmp_)
    cmp_.add_argument(
        "--metric", choices=("slowdown", "turnaround", "wait"), default="slowdown"
    )
    cmp_.add_argument(
        "--statistic", choices=("mean", "worst"), default="mean"
    )
    _add_parallel_args(cmp_)
    cmp_.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="also record one JSONL decision trace per scheme into DIR "
        "(see docs/TRACING.md); works with --workers",
    )

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure group")
    exp.add_argument("exp_id", nargs="?", help="experiment id (see --list)")
    exp.add_argument("--list", action="store_true", help="list experiment ids")
    exp.add_argument("--trace", default="CTC")
    exp.add_argument("--jobs", type=int, default=paper.DEFAULT_N_JOBS)
    exp.add_argument("--seed", type=int, default=paper.DEFAULT_SEED)
    _add_parallel_args(exp)

    ins = sub.add_parser("inspect", help="characterise a workload (section III style)")
    _add_trace_args(ins)

    lnt = sub.add_parser(
        "lint",
        help="repro-lint static analysis (determinism & protocol conformance)",
        add_help=False,
    )
    lnt.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to repro.lint.cli (try `lint --help`)",
    )

    trc = sub.add_parser("trace", help="record / replay decision traces")
    trc_sub = trc.add_subparsers(dest="trace_cmd", required=True)

    rec = trc_sub.add_parser("record", help="run one traced simulation to JSONL")
    _add_trace_args(rec)
    rec.add_argument(
        "--scheduler",
        default="ss",
        help="fcfs | easy/ns | conservative | relaxed | speculative | gang | ss | tss | is | ss-easy | tss-conservative",
    )
    rec.add_argument("--sf", type=float, default=2.0, help="suspension factor")
    rec.add_argument("--out", required=True, metavar="FILE", help="JSONL output path")

    summ = trc_sub.add_parser(
        "summarize", help="independently replay a trace and print its statistics"
    )
    summ.add_argument("file", help="JSONL trace file")

    filt = trc_sub.add_parser("filter", help="select events by type and/or job id")
    filt.add_argument("file", help="JSONL trace file")
    filt.add_argument(
        "--type",
        action="append",
        default=None,
        metavar="TYPE",
        help="keep only these event types (repeatable, comma-splittable)",
    )
    filt.add_argument(
        "--job",
        action="append",
        type=int,
        default=None,
        metavar="ID",
        help="keep only events about these job ids (repeatable)",
    )
    filt.add_argument("--out", default=None, metavar="FILE", help="write here instead of stdout")

    gnt = trc_sub.add_parser("gantt", help="ASCII Gantt chart / CSV timeline of a trace")
    gnt.add_argument("file", help="JSONL trace file")
    gnt.add_argument("--width", type=int, default=72, help="chart columns")
    gnt.add_argument(
        "--max-jobs", type=int, default=40, help="rows shown (ascending job id)"
    )
    gnt.add_argument(
        "--csv",
        action="store_true",
        help="emit the occupancy-interval CSV instead of the chart",
    )

    wl = sub.add_parser(
        "workload",
        help="archive-log tooling: validate / stats / replay over the streaming pipeline",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "All three subcommands stream the log (constant memory, any length).\n"
            "examples:\n"
            "  repro-sched workload validate CTC-SP2.swf\n"
            "  repro-sched workload stats CTC-SP2.swf --load 1.3\n"
            "  repro-sched workload replay CTC-SP2.swf --scheduler ss --sf 2 \\\n"
            "      --window 24 --workers 0 --cache-dir results\n"
            "guide: docs/WORKLOADS.md"
        ),
    )
    wl_sub = wl.add_subparsers(dest="workload_cmd", required=True)

    def _add_workload_pipeline_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--procs",
            type=int,
            default=None,
            metavar="N",
            help="machine size (default: the log header's MaxProcs/MaxNodes)",
        )
        p.add_argument(
            "--load", type=float, default=1.0, help="load-scaling factor (section VI)"
        )
        p.add_argument(
            "--estimates",
            choices=("keep", "accurate", "inaccurate"),
            default="keep",
            help="replace the log's estimates with a model (default: keep the log's)",
        )
        p.add_argument("--seed", type=int, default=7, help="estimate-model seed")
        p.add_argument(
            "--skip-malformed",
            action="store_true",
            help="drop unparseable data lines instead of aborting",
        )

    val = wl_sub.add_parser(
        "validate", help="one-pass anomaly report over an SWF log (exit 1 if anomalous)"
    )
    val.add_argument("swf_file", help="path to the SWF log")
    val.add_argument(
        "--procs",
        type=int,
        default=None,
        metavar="N",
        help="machine size for the width check (default: from the header)",
    )

    wst = wl_sub.add_parser(
        "stats", help="constant-memory workload characterisation of an SWF log"
    )
    wst.add_argument("swf_file", help="path to the SWF log")
    _add_workload_pipeline_args(wst)

    rpl = wl_sub.add_parser(
        "replay",
        help="replay a long SWF log through the sharded crash-safe grid executor",
    )
    rpl.add_argument("swf_file", help="path to the SWF log")
    _add_workload_pipeline_args(rpl)
    rpl.add_argument(
        "--scheduler",
        default="easy",
        help="fcfs | easy/ns | conservative | relaxed | speculative | gang | ss | tss | is | ss-easy | tss-conservative",
    )
    rpl.add_argument("--sf", type=float, default=2.0, help="suspension factor")
    rpl.add_argument(
        "--window",
        type=float,
        default=24.0,
        metavar="HOURS",
        help="shard window in hours; each window simulates independently (default: 24)",
    )
    rpl.add_argument(
        "--batch-size",
        type=int,
        default=32,
        metavar="N",
        help="shards in flight per executor batch (bounds memory; default: 32)",
    )
    rpl.add_argument(
        "--overhead",
        action="store_true",
        help="enable the disk-swap suspension overhead model (section V-A)",
    )
    rpl.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="record one JSONL decision trace per shard into DIR (see "
        "docs/TRACING.md); traced shards bypass the result cache",
    )
    _add_parallel_args(rpl)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args_list = list(sys.argv[1:] if argv is None else argv)
    if args_list and args_list[0] == "lint":
        # forwarded wholesale: the lint CLI owns its own argparse (its
        # option set must not be filtered through this parser; argparse
        # REMAINDER mangles leading options under subparsers)
        from repro.lint.cli import main as lint_main

        return lint_main(args_list[1:])
    try:
        return _dispatch(build_parser().parse_args(args_list))
    except BrokenPipeError:
        # output piped into a pager/head that closed early -- not an error
        try:
            sys.stdout.close()
        except (OSError, ValueError):
            # close() flushing into the dead pipe, or a double-close --
            # the only failures a torn-down stdout can produce
            pass
        return 0


def _dispatch(args: argparse.Namespace) -> int:

    if args.command == "run":
        jobs, n_procs = _load_jobs(args)
        overhead = DiskSwapOverheadModel() if args.overhead else None
        result = simulate(jobs, _build_scheduler(args), n_procs, overhead)
        print(
            experiment_report(
                f"{args.trace}: {result.scheduler}", result, metric=args.metric
            )
        )
        return 0

    if args.command == "lint":
        from repro.lint.cli import main as lint_main

        return lint_main(args.lint_args)

    if args.command == "trace":
        return _dispatch_trace(args)

    if args.command == "workload":
        return _dispatch_workload(args)

    if args.command == "compare":
        jobs, n_procs = _load_jobs(args)
        overhead = DiskSwapOverheadModel() if args.overhead else None
        counters = GridCounters()
        results = compare_schemes_parallel(
            jobs,
            n_procs,
            standard_schemes(),
            overhead,
            workers=args.workers,
            cache=_cache_from_args(args),
            trace_dir=args.trace_dir,
            policy=_policy_from_args(args),
            counters=counters,
            shm=args.shm,
        )
        if counters:
            print(format_grid_counters(counters), file=sys.stderr)
        print(
            scheme_comparison_report(
                f"{args.trace}: scheme comparison",
                results,
                metric=args.metric,
                statistic=args.statistic,
            )
        )
        return 0

    if args.command == "inspect":
        from repro.workload.stats import format_stats, workload_stats

        jobs, n_procs = _load_jobs(args)
        print(format_stats(workload_stats(jobs), n_procs=n_procs))
        return 0

    if args.command == "experiment":
        if args.list or not args.exp_id:
            print("available experiments:")
            for key in EXPERIMENTS:
                print(f"  {key}")
            return 0 if args.list else 2
        if args.exp_id not in EXPERIMENTS:
            print(f"unknown experiment {args.exp_id!r}; try --list", file=sys.stderr)
            return 2
        fn, needs_trace = EXPERIMENTS[args.exp_id]
        if needs_trace:
            kwargs: dict[str, object] = {
                "trace": args.trace,
                "n_jobs": args.jobs,
                "seed": args.seed,
            }
            # grid-shaped experiments accept workers/cache; table-only
            # ones (single simulation) do not -- pass only what fits
            params = inspect.signature(fn).parameters
            if "workers" in params:
                kwargs["workers"] = args.workers
            if "cache" in params:
                kwargs["cache"] = _cache_from_args(args)
            if "policy" in params:
                kwargs["policy"] = _policy_from_args(args)
            if "shm" in params:
                kwargs["shm"] = args.shm
            out = fn(**kwargs)
        else:
            out = fn()
        print(out.report)
        return 0

    raise AssertionError("unreachable")  # pragma: no cover


def _dispatch_workload(args: argparse.Namespace) -> int:
    """The ``workload`` subcommand family (validate / stats / replay).

    Everything here streams: the log is parsed one record at a time
    (:mod:`repro.workload.swf`), transformed lazily
    (:mod:`repro.workload.pipeline`) and, for ``replay``, simulated in
    time-windowed shards through the crash-safe grid executor
    (:func:`repro.experiments.parallel.replay_sharded`) -- a months-long
    archive log never has to fit in memory.  See docs/WORKLOADS.md.
    """
    from repro.workload.pipeline import (
        EstimateStage,
        LoadScaleStage,
        WorkloadPipeline,
        open_workload,
    )
    from repro.workload.swf import format_scan_report, scan_swf

    if args.workload_cmd == "validate":
        header, report = scan_swf(args.swf_file, machine_procs=args.procs)
        if header.computer:
            print(f"log: {args.swf_file}   computer: {header.computer}")
        print(format_scan_report(report))
        return 0 if report.clean else 1

    # stats / replay share the pipeline construction
    def _pipeline() -> WorkloadPipeline:
        stages: list[LoadScaleStage | EstimateStage] = []
        if args.load != 1.0:
            stages.append(LoadScaleStage(args.load))
        if args.estimates != "keep":
            model = (
                InaccurateEstimates()
                if args.estimates == "inaccurate"
                else AccurateEstimates()
            )
            stages.append(EstimateStage(model, seed=args.seed))
        return WorkloadPipeline(stages)

    def _machine_procs() -> int:
        if args.procs is not None:
            return int(args.procs)
        header, _ = scan_swf(args.swf_file)
        procs = header.machine_procs()
        if procs is None:
            raise SystemExit(
                f"{args.swf_file}: no MaxProcs/MaxNodes in the header; pass --procs"
            )
        return procs

    on_malformed = "skip" if args.skip_malformed else "raise"
    pipeline = _pipeline()

    if args.workload_cmd == "stats":
        from repro.workload.stats import format_streaming_stats, stream_workload_stats

        n_procs = _machine_procs()
        stream = open_workload(
            args.swf_file, pipeline, max_procs=n_procs, on_malformed=on_malformed
        )
        summary = stream_workload_stats(stream)
        if pipeline.stages:
            print(f"pipeline: {pipeline.describe()}")
        print(format_streaming_stats(summary, n_procs=n_procs))
        return 0

    if args.workload_cmd == "replay":
        from repro.analysis.tables import category_grid_table
        from repro.experiments.parallel import replay_sharded
        from repro.metrics.aggregate import overall_stats, per_category_stats

        n_procs = _machine_procs()
        scheduler_config = _build_scheduler(args).config()
        overhead = DiskSwapOverheadModel() if args.overhead else None
        counters = GridCounters()
        stream = open_workload(
            args.swf_file, pipeline, max_procs=n_procs, on_malformed=on_malformed
        )
        outcome = replay_sharded(
            stream,
            n_procs,
            scheduler_config,
            window=args.window * 3600.0,
            overhead_model=overhead,
            batch_size=args.batch_size,
            workers=args.workers,
            cache=_cache_from_args(args),
            policy=_policy_from_args(args),
            counters=counters,
            provenance={"pipeline": pipeline.fingerprint(), "source": "swf"},
            trace_dir=args.trace_dir,
            shm=args.shm,
        )
        if counters:
            print(format_grid_counters(counters), file=sys.stderr)
        stats = overall_stats(outcome.jobs)
        print(
            f"shards: {outcome.shards} ({args.window:g} h windows)   "
            f"simulated: {outcome.executed}   cache hits: {outcome.cache_hits}"
        )
        print(
            f"jobs: {len(outcome.jobs)}   mean slowdown: {stats.slowdown.mean:.2f}   "
            f"mean turnaround: {stats.turnaround.mean:,.0f} s"
        )
        print(f"outcome fingerprint: {outcome.fingerprint()}")
        print()
        print(
            category_grid_table(
                {
                    cat: s.slowdown.mean
                    for cat, s in per_category_stats(outcome.jobs).items()
                },
                title="mean slowdown per category (Table I grid)",
                precision=2,
            )
        )
        return 0

    raise AssertionError("unreachable")  # pragma: no cover


def _dispatch_trace(args: argparse.Namespace) -> int:
    """The ``trace`` subcommand family (record / summarize / filter / gantt)."""
    import json

    from repro.analysis.timeline import ascii_gantt, occupancy_intervals, timeline_csv
    from repro.obs import JsonlRecorder, format_summary, read_trace, summarize_trace

    if args.trace_cmd == "record":
        jobs, n_procs = _load_jobs(args)
        overhead = DiskSwapOverheadModel() if args.overhead else None
        with JsonlRecorder(args.out) as rec:
            simulate(jobs, _build_scheduler(args), n_procs, overhead, recorder=rec)
        # Print the *replayed* summary of the file just written: this is
        # the same block `trace summarize` prints, so the record/summarize
        # round-trip check is literal output equality.
        print(format_summary(summarize_trace(read_trace(args.out))))
        return 0

    if args.trace_cmd == "summarize":
        print(format_summary(summarize_trace(read_trace(args.file))))
        return 0

    if args.trace_cmd == "filter":
        types: set[str] | None = None
        if args.type:
            types = {t.strip() for spec in args.type for t in spec.split(",") if t.strip()}
        job_ids = set(args.job) if args.job else None
        out_fh = open(args.out, "w", encoding="utf-8") if args.out else sys.stdout
        kept = 0
        try:
            for ev in read_trace(args.file):
                if types is not None and ev.get("type") not in types:
                    continue
                if job_ids is not None and ev.get("job") not in job_ids:
                    continue
                out_fh.write(json.dumps(ev, separators=(",", ":")))
                out_fh.write("\n")
                kept += 1
        finally:
            if args.out:
                out_fh.close()
        if args.out:
            print(f"{kept} event(s) -> {args.out}")
        return 0

    if args.trace_cmd == "gantt":
        events = list(read_trace(args.file))
        intervals = occupancy_intervals(events)
        if args.csv:
            sys.stdout.write(timeline_csv(intervals))
        else:
            arrivals = {
                ev["job"]: float(ev["t"])
                for ev in events
                if ev.get("type") == "arrival" and ev.get("job") is not None
            }
            print(
                ascii_gantt(
                    intervals,
                    width=args.width,
                    max_jobs=args.max_jobs,
                    arrivals=arrivals,
                )
            )
        return 0

    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Zero-copy workload plane: shared-memory job segments for grid dispatch.

The grid executor (:mod:`repro.experiments.parallel`) ships every cell
to its worker as a pickle.  A scheme x load x seed grid over one trace
serialises the *same* job list dozens of times -- for a 120k-job
workload that is hundreds of megabytes of redundant pickle bytes per
``run_grid`` call, re-paid on every retry.  This module removes the
workload from the dispatch payload entirely:

* :func:`encode_jobs` packs the **static** fields of a job list into a
  struct-of-arrays binary blob (stdlib :mod:`array`/:mod:`struct`, no
  new dependencies) -- seven contiguous arrays behind a self-describing
  header that carries :func:`~repro.experiments.cache.fingerprint_jobs`
  for integrity checking;
* :class:`WorkloadPlane` publishes such blobs once per distinct
  workload via :class:`multiprocessing.shared_memory.SharedMemory`,
  memoised by jobs fingerprint, and unlinks them deterministically on
  :meth:`~WorkloadPlane.close` (``run_grid`` wraps its internal plane
  in ``try/finally``);
* :class:`JobsRef` is the picklable hand-off -- fingerprint + segment
  name + optional :class:`~repro.workload.pipeline.WorkloadPipeline`
  stage *config* (plain data, rebuilt worker-side by
  :func:`~repro.workload.pipeline.pipeline_from_config`), so derived
  workloads (load-scaled sweeps) share one base segment;
* :func:`resolve_jobs` is the worker-side decode: attach, verify the
  fingerprint, decode, apply the pipeline, and memoise per process by
  ``(segment, pipeline fingerprint)`` -- N cells over one workload
  decode once per worker, not once per cell.

Lifetime and crash-safety
-------------------------

The *creating* process owns a segment: only :meth:`WorkloadPlane.close`
unlinks it.  Creation registers the segment with the multiprocessing
``resource_tracker``, so if the coordinator is SIGKILLed mid-grid the
tracker process (which outlives it and ignores SIGTERM) unlinks every
published segment the moment the last holder of its pipe exits --
``/dev/shm`` is left clean even on the path where no ``finally`` ever
runs.  Attaching processes **unregister** immediately (CPython < 3.13
registers attachments too, which would let a dying worker's tracker
record double-count the segment) and close their handle as soon as the
decode copies the data out.

Degradation matrix (see DESIGN.md section 11): publish failure -> the
cell keeps its inline jobs; attach/integrity failure in the creating
process -> decode falls back to the locally registered source list;
attach failure in a worker -> the cell attempt fails and the executor's
ordinary retry/degrade machinery takes over (degraded cells resolve
in-process, where the fallback registry is available).
"""

from __future__ import annotations

import hashlib
import os
import struct
from array import array
from dataclasses import dataclass, field, replace
from multiprocessing import resource_tracker, shared_memory
from typing import Iterable, Mapping, Sequence

from repro.experiments.cache import fingerprint_jobs
from repro.workload.job import Job
from repro.workload.pipeline import WorkloadPipeline, pipeline_from_config

#: header magic; bump the trailing digit on any layout change
_MAGIC = b"RPRJOBS1"
#: header: magic + little-endian job count + 64 hex chars of jobs fingerprint
_HEADER = struct.Struct("<8sQ64s")
#: (field name, array typecode) in segment order; 'q'/'d' are 8 bytes each,
#: so every int field must fit in a signed 64-bit -- true for SWF ids,
#: widths and user ids by format definition
_LAYOUT: tuple[tuple[str, str], ...] = (
    ("job_id", "q"),
    ("submit_time", "d"),
    ("run_time", "d"),
    ("estimate", "d"),
    ("procs", "q"),
    ("memory_mb", "d"),
    ("user", "q"),
)

#: default segment-name prefix; names are ``<prefix>-<fp12>-<pid>-<seq>``
#: so a leaked segment is attributable to its creating process (tests and
#: the CI orphan guard grep ``/dev/shm`` for the prefix)
SEGMENT_PREFIX = "rprs"


class SegmentIntegrityError(RuntimeError):
    """The attached segment does not contain what the ref promised."""


def encode_jobs(jobs: Sequence[Job], jobs_fp: str | None = None) -> bytes:
    """Struct-of-arrays encoding of the static fields of *jobs*.

    Only static (trace) fields travel -- dynamic state is reset by
    ``fresh_copies`` before every simulation, so it cannot influence a
    cell's outcome.  Floats are IEEE doubles (exact round-trip), ints
    are signed 64-bit (an out-of-range id raises ``OverflowError``
    rather than truncating).  *jobs_fp* skips re-hashing when the
    caller already fingerprinted the list.
    """
    fp = jobs_fp if jobs_fp is not None else fingerprint_jobs(list(jobs))
    parts = [_HEADER.pack(_MAGIC, len(jobs), fp.encode("ascii"))]
    for field_name, typecode in _LAYOUT:
        values = array(typecode, (getattr(j, field_name) for j in jobs))
        parts.append(values.tobytes())
    return b"".join(parts)


def decode_jobs(buf: bytes | memoryview) -> tuple[str, list[Job]]:
    """Decode an :func:`encode_jobs` blob into ``(jobs_fp, fresh jobs)``.

    The returned fingerprint is the one *recorded in the header*;
    callers holding a :class:`JobsRef` compare it against the promised
    one (:func:`resolve_jobs` does, and raises
    :class:`SegmentIntegrityError` on mismatch).
    """
    view = memoryview(buf)
    if len(view) < _HEADER.size:
        raise SegmentIntegrityError(
            f"segment truncated: {len(view)} bytes < {_HEADER.size}-byte header"
        )
    magic, count, fp_bytes = _HEADER.unpack_from(view, 0)
    if magic != _MAGIC:
        raise SegmentIntegrityError(f"bad segment magic {magic!r} (want {_MAGIC!r})")
    columns: dict[str, array[int] | array[float]] = {}
    offset = _HEADER.size
    for field_name, typecode in _LAYOUT:
        col: array[int] | array[float] = array(typecode)
        end = offset + 8 * count
        if end > len(view):
            raise SegmentIntegrityError(
                f"segment truncated inside column {field_name!r}: "
                f"need {end} bytes, have {len(view)}"
            )
        col.frombytes(view[offset:end])
        columns[field_name] = col
        offset = end
    jobs = [
        Job(
            job_id=int(columns["job_id"][i]),
            submit_time=columns["submit_time"][i],
            run_time=columns["run_time"][i],
            estimate=columns["estimate"][i],
            procs=int(columns["procs"][i]),
            memory_mb=columns["memory_mb"][i],
            user=int(columns["user"][i]),
        )
        for i in range(count)
    ]
    return fp_bytes.decode("ascii"), jobs


@dataclass(frozen=True)
class JobsRef:
    """Picklable reference to a published workload segment.

    A :class:`~repro.experiments.parallel.GridCell` carries this
    *instead of* an inline job list: ~200 bytes of pickle regardless of
    trace length.  ``pipeline_config`` (a
    :meth:`~repro.workload.pipeline.WorkloadPipeline.config` dict) is
    applied worker-side **after** decode, so derived workloads -- the
    load-variation sweep's per-load scalings -- all point at one base
    segment.
    """

    #: fingerprint of the *encoded* (base) jobs, pre-pipeline
    jobs_fp: str
    #: shared-memory segment name (``SharedMemory(name=...)`` attaches)
    segment: str
    #: job count in the segment (decode sanity check)
    n_jobs: int
    #: optional pipeline stage config applied after decode (plain data;
    #: rebuilt via :func:`repro.workload.pipeline.pipeline_from_config`)
    pipeline_config: Mapping[str, object] | None = None
    #: fingerprint of that pipeline (``None`` iff no pipeline)
    pipeline_fp: str | None = None

    def __post_init__(self) -> None:
        if (self.pipeline_config is None) != (self.pipeline_fp is None):
            raise ValueError(
                "pipeline_config and pipeline_fp must be set together"
            )

    def cache_jobs_fp(self) -> str:
        """The workload fingerprint this ref contributes to a cell's cache key.

        Without a pipeline this is the base fingerprint, so a ref cell
        and its inline twin share cache entries byte-for-byte.  With a
        pipeline the derived workload is never materialised coordinator-
        side, so the key is a composite over (base, pipeline) -- sound
        because stages are deterministic functions of their config (the
        pipeline determinism contract, docs/WORKLOADS.md).
        """
        if self.pipeline_fp is None:
            return self.jobs_fp
        blob = f"ref-v1|{self.jobs_fp}|{self.pipeline_fp}".encode()
        return hashlib.sha256(blob).hexdigest()

    def with_pipeline(self, pipeline: WorkloadPipeline) -> "JobsRef":
        """A derived ref over the same segment, transformed by *pipeline*."""
        return replace(
            self,
            pipeline_config=pipeline.config(),
            pipeline_fp=pipeline.fingerprint(),
        )


@dataclass
class DecodeStats:
    """Process-local tallies of the worker-side decode path.

    Every process (coordinator or pool worker) counts its *own*
    activity; :func:`repro.experiments.parallel.run_grid` folds the
    coordinator's delta into :class:`~repro.obs.counters.GridCounters`
    (the serial, degraded and fallback paths), and pool workers report
    a per-cell delta alongside each result (see
    :func:`repro.experiments.parallel.simulate_cell_with_stats`), which
    the coordinator folds into the ``shm_worker_*`` counters -- four
    integers riding the existing result pickle, not a side channel.
    """

    #: successful segment attaches in this process
    attaches: int = 0
    #: full blob decodes (memo misses) in this process
    decodes: int = 0
    #: refs served from the per-process memo
    memo_hits: int = 0
    #: refs resolved from the local fallback registry because the
    #: segment could not be attached or failed its integrity check
    fallbacks: int = 0

    def snapshot(self) -> tuple[int, int, int, int]:
        return (self.attaches, self.decodes, self.memo_hits, self.fallbacks)


#: the current process's decode tallies (see :class:`DecodeStats`)
DECODE_STATS = DecodeStats()

#: per-process decode memo: (segment, pipeline_fp) -> decoded job list.
#: Entries for a plane's segments are evicted when the plane closes (in
#: the owning process); pool workers are per-``run_grid`` so their memos
#: die with them.
_DECODE_MEMO: dict[tuple[str, str | None], list[Job]] = {}

#: segments *created* by this process -- their resource-tracker
#: registration is the SIGKILL safety net and must not be unregistered
#: by a self-attach (the tracker's cache is a set; one unregister would
#: erase the creation record too)
_OWNED_SEGMENTS: set[str] = set()

#: segment name -> (jobs fingerprint, source job list), registered by
#: the creating process so in-process (serial/degraded) execution can
#: resolve a ref even if the segment itself cannot be attached; the
#: fingerprint guards the fallback the same way decode guards a segment
_LOCAL_JOBS: dict[str, tuple[str, list[Job]]] = {}


def decode_stats_snapshot() -> tuple[int, int, int, int]:
    """Copy of this process's :data:`DECODE_STATS` (for delta folding)."""
    return DECODE_STATS.snapshot()


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to *name* without disturbing the creator's tracker record.

    CPython < 3.13 registers every attach with the resource tracker;
    a worker exiting would then count as a "leak" and -- worse -- an
    explicit unregister from the creating process would erase its own
    creation record.  Attachers that do not own the segment unregister
    immediately; owners leave the record alone (3.13+ offers
    ``track=False``, used when available).
    """
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # Python < 3.13: no track kwarg
        shm = shared_memory.SharedMemory(name=name)
        if name not in _OWNED_SEGMENTS:
            try:
                # _name carries the platform-specific leading-slash form
                # that SharedMemory.__init__ registered
                resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
            except (OSError, ValueError, KeyError):
                pass  # tracker already gone; tracking is best-effort
    return shm


def _decode_segment(ref: JobsRef) -> list[Job]:
    """Attach, verify, decode and detach *ref*'s base segment."""
    shm = _attach(ref.segment)
    try:
        DECODE_STATS.attaches += 1
        fp, jobs = decode_jobs(shm.buf)
        DECODE_STATS.decodes += 1
    finally:
        shm.close()
    if fp != ref.jobs_fp:
        raise SegmentIntegrityError(
            f"segment {ref.segment} holds workload {fp[:12]}..., "
            f"ref promised {ref.jobs_fp[:12]}..."
        )
    if len(jobs) != ref.n_jobs:
        raise SegmentIntegrityError(
            f"segment {ref.segment} holds {len(jobs)} jobs, ref promised {ref.n_jobs}"
        )
    return jobs


def _base_jobs(ref: JobsRef) -> list[Job]:
    """The decoded base (pre-pipeline) jobs of *ref*, memoised."""
    key = (ref.segment, None)
    hit = _DECODE_MEMO.get(key)
    if hit is not None:
        DECODE_STATS.memo_hits += 1
        return hit
    try:
        jobs = _decode_segment(ref)
    except SegmentIntegrityError:
        raise  # the ref is wrong, not the transport; never paper over it
    except OSError:
        local = _LOCAL_JOBS.get(ref.segment)
        if local is None or local[0] != ref.jobs_fp:
            raise
        DECODE_STATS.fallbacks += 1
        jobs = local[1]
    _DECODE_MEMO[key] = jobs
    return jobs


def resolve_jobs(ref: JobsRef) -> list[Job]:
    """The job list *ref* stands for, decoded at most once per process.

    Callers must not mutate the returned list or its jobs -- it is
    shared across every cell that references the same (segment,
    pipeline) pair.  The simulation path is safe by construction:
    :func:`~repro.experiments.runner.simulate` takes fresh copies
    before running (``copy_jobs=True``).
    """
    key = (ref.segment, ref.pipeline_fp)
    hit = _DECODE_MEMO.get(key)
    if hit is not None:
        DECODE_STATS.memo_hits += 1
        return hit
    jobs = _base_jobs(ref)
    if ref.pipeline_config is not None:
        pipeline = pipeline_from_config(dict(ref.pipeline_config))
        jobs = pipeline.materialise(jobs)
        _DECODE_MEMO[key] = jobs
    return jobs


@dataclass
class _Segment:
    """One published segment plus what this process knows about it."""

    shm: shared_memory.SharedMemory
    ref: JobsRef


class WorkloadPlane:
    """Coordinator-side publisher of shared-memory workload segments.

    One plane per ``run_grid`` call (or per caller-managed scope, e.g.
    the load-variation sweep's shared base trace).  ``publish`` is
    memoised by jobs fingerprint, so a grid with 24 cells over one
    workload creates exactly one segment.  :meth:`close` unlinks every
    segment this plane created and evicts this process's decode memo
    for them; it is idempotent and safe under partial failure.  Usable
    as a context manager.
    """

    def __init__(self, prefix: str = SEGMENT_PREFIX) -> None:
        self._prefix = prefix
        self._by_fp: dict[str, _Segment] = {}
        #: pins the source lists published so far: identity-keyed memo
        #: entries stay valid only while the keyed object is alive
        self._pins: dict[int, tuple[list[Job], str]] = {}
        self._seq = 0

    # ------------------------------------------------------------------
    @property
    def segments(self) -> int:
        """Number of distinct segments this plane has published."""
        return len(self._by_fp)

    def _fingerprint(self, jobs: list[Job], jobs_fp: str | None) -> str:
        if jobs_fp is not None:
            return jobs_fp
        pinned = self._pins.get(id(jobs))
        if pinned is not None and pinned[0] is jobs:
            return pinned[1]
        fp = fingerprint_jobs(jobs)
        self._pins[id(jobs)] = (jobs, fp)
        return fp

    def publish(
        self,
        jobs: list[Job],
        jobs_fp: str | None = None,
        pipeline: WorkloadPipeline | None = None,
    ) -> JobsRef | None:
        """Publish *jobs* (once per fingerprint) and return a ref.

        Returns ``None`` when shared memory is unavailable (``/dev/shm``
        full or missing) -- the caller keeps its inline jobs and the
        grid still runs, just without the payload savings.  *pipeline*
        derives a ref over the same base segment; the segment content is
        always the **pre-pipeline** jobs.
        """
        fp = self._fingerprint(jobs, jobs_fp)
        seg = self._by_fp.get(fp)
        if seg is None:
            blob = encode_jobs(jobs, jobs_fp=fp)
            name = f"{self._prefix}-{fp[:12]}-{os.getpid()}-{self._seq}"
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=len(blob)
                )
            except OSError:
                return None
            self._seq += 1
            shm.buf[: len(blob)] = blob
            ref = JobsRef(jobs_fp=fp, segment=shm.name, n_jobs=len(jobs))
            seg = _Segment(shm=shm, ref=ref)
            self._by_fp[fp] = seg
            _OWNED_SEGMENTS.add(shm.name)
            _LOCAL_JOBS[shm.name] = (fp, jobs)
        if pipeline is not None:
            return seg.ref.with_pipeline(pipeline)
        return seg.ref

    def close(self) -> None:
        """Unlink every published segment; idempotent, never raises."""
        segments, self._by_fp = self._by_fp, {}
        self._pins.clear()
        for seg in segments.values():
            name = seg.shm.name
            _OWNED_SEGMENTS.discard(name)
            _LOCAL_JOBS.pop(name, None)
            for key in [k for k in _DECODE_MEMO if k[0] == name]:
                del _DECODE_MEMO[key]
            try:
                seg.shm.close()
            except (OSError, BufferError):
                pass
            try:
                seg.shm.unlink()
            except (FileNotFoundError, OSError):
                pass  # already unlinked (e.g. by the resource tracker)

    def __enter__(self) -> "WorkloadPlane":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        self.close()


def publish_jobs(
    plane: WorkloadPlane,
    groups: Iterable[list[Job]],
) -> dict[int, JobsRef]:
    """Publish every distinct list in *groups*; identity -> ref map.

    Convenience for callers converting many cells at once: lists are
    deduplicated by identity first (the common grid shape -- one list
    shared by all cells -- publishes once), then by fingerprint inside
    :meth:`WorkloadPlane.publish`.  Lists whose publish failed are
    absent from the result.
    """
    refs: dict[int, JobsRef] = {}
    pinned: list[list[Job]] = []
    for jobs in groups:
        if id(jobs) in refs:
            continue
        ref = plane.publish(jobs)
        if ref is not None:
            pinned.append(jobs)
            refs[id(jobs)] = ref
    return refs

"""Experiment harness: run schemes over traces, regenerate paper results.

* :mod:`repro.experiments.runner` -- :func:`simulate` (one policy, one
  trace) and :func:`compare_schemes` (the paper's standard scheme set
  over one trace), both serial.
* :mod:`repro.experiments.parallel` -- :func:`run_grid` and
  :func:`compare_schemes_parallel`: the same cells fanned out over a
  process pool with deterministic merging, incremental cache commits
  and crash/hang/broken-pool recovery governed by :class:`GridPolicy`;
  plus :func:`replay_sharded`, which cuts a long (possibly streaming)
  workload into time-windowed shards and replays them through the same
  executor (docs/WORKLOADS.md).
* :mod:`repro.experiments.cache` -- :class:`ResultCache`, the
  content-addressed on-disk result store keyed by (workload, machine,
  scheduler config, overhead model, migratable flag) fingerprints.
* :mod:`repro.experiments.shm` -- the zero-copy workload plane:
  :class:`WorkloadPlane` publishes each distinct job list once as a
  shared-memory struct-of-arrays segment and grid cells carry a
  :class:`JobsRef` instead of the list, so dispatch pickles stay tiny
  and workers decode each workload once per process.
* :mod:`repro.experiments.paper` -- one entry per paper table/figure;
  each returns the rows/series the paper plots, as plain data.
"""

from repro.experiments.cache import (
    ResultCache,
    cell_fingerprint,
    fingerprint_jobs,
)
from repro.experiments.parallel import (
    CellFailure,
    GridCell,
    GridExecutionError,
    GridOutcome,
    GridPolicy,
    ShardedReplayOutcome,
    WorkloadShard,
    compare_schemes_parallel,
    iter_time_shards,
    outcome_fingerprint,
    replay_sharded,
    run_grid,
    shard_cell,
    simulate_cell,
    trace_files_for_keys,
)
from repro.experiments.runner import (
    SchemeSpec,
    SuspensionOverheadModel,
    compare_schemes,
    simulate,
    standard_schemes,
    tuned_schemes,
)
from repro.experiments.shm import (
    JobsRef,
    WorkloadPlane,
    decode_jobs,
    encode_jobs,
    resolve_jobs,
)

__all__ = [
    "CellFailure",
    "GridCell",
    "GridExecutionError",
    "GridOutcome",
    "GridPolicy",
    "JobsRef",
    "ResultCache",
    "SchemeSpec",
    "ShardedReplayOutcome",
    "SuspensionOverheadModel",
    "WorkloadPlane",
    "WorkloadShard",
    "cell_fingerprint",
    "compare_schemes",
    "compare_schemes_parallel",
    "decode_jobs",
    "encode_jobs",
    "fingerprint_jobs",
    "iter_time_shards",
    "outcome_fingerprint",
    "replay_sharded",
    "resolve_jobs",
    "run_grid",
    "shard_cell",
    "simulate",
    "simulate_cell",
    "standard_schemes",
    "trace_files_for_keys",
    "tuned_schemes",
]

"""Experiment harness: run schemes over traces, regenerate paper results.

* :mod:`repro.experiments.runner` -- :func:`simulate` (one policy, one
  trace) and :func:`compare_schemes` (the paper's standard scheme set
  over one trace).
* :mod:`repro.experiments.paper` -- one entry per paper table/figure;
  each returns the rows/series the paper plots, as plain data.
"""

from repro.experiments.runner import (
    SchemeSpec,
    compare_schemes,
    simulate,
    standard_schemes,
)

__all__ = ["SchemeSpec", "compare_schemes", "simulate", "standard_schemes"]

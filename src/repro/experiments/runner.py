"""Running policies over workloads.

:func:`simulate` is the one-call public entry point: fresh cluster,
fresh job copies, one scheduler, one result.  :func:`compare_schemes`
reproduces the paper's standard comparison -- NS (EASY backfilling), IS,
and SS at several suspension factors, or TSS variants -- over a single
trace, reusing a calibration run where TSS needs one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.cluster.machine import Cluster
from repro.core.immediate_service import ImmediateServiceScheduler
from repro.core.selective_suspension import SelectiveSuspensionScheduler
from repro.core.tss import (
    TunableSelectiveSuspensionScheduler,
    limits_from_result,
)
from repro.schedulers.base import Scheduler
from repro.schedulers.easy import EasyBackfillScheduler
from repro.sim.driver import (
    SchedulingSimulation,
    SimulationResult,
    SuspensionOverheadModel,
)
from repro.workload.job import Job, fresh_copies

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.recorder import TraceRecorder

__all__ = [
    "SchemeSpec",
    "SuspensionOverheadModel",
    "compare_schemes",
    "hybrid_schemes",
    "simulate",
    "standard_schemes",
    "tuned_schemes",
]


def simulate(
    jobs: list[Job],
    scheduler: Scheduler,
    n_procs: int,
    overhead_model: SuspensionOverheadModel | None = None,
    copy_jobs: bool = True,
    migratable: bool = False,
    recorder: "TraceRecorder | None" = None,
) -> SimulationResult:
    """Run *scheduler* over *jobs* on an ``n_procs`` machine.

    Parameters
    ----------
    jobs:
        The workload.  Copied by default so the list stays reusable.
    scheduler:
        Any :class:`~repro.schedulers.base.Scheduler`; a given scheduler
        instance must not be reused across runs (it carries bindings).
    n_procs:
        Machine size; every job must fit (``procs <= n_procs``).
    overhead_model:
        Optional suspension-overhead pricing (e.g.
        :class:`~repro.core.overhead.DiskSwapOverheadModel`).
    copy_jobs:
        Set false to simulate the given objects in place (saves a copy
        when the caller already made one).
    migratable:
        Allow suspended jobs to restart on any processors (Parsons &
        Sevcik's migratable model; off in every paper experiment --
        local restart is the paper's defining constraint).
    recorder:
        Optional :class:`~repro.obs.recorder.TraceRecorder` receiving
        the run's decision-trace event stream (see ``docs/TRACING.md``).
        ``None`` (the default) keeps the run untraced at zero cost.
        The caller owns the recorder's lifecycle -- close a
        :class:`~repro.obs.recorder.JsonlRecorder` after the run (or
        use it as a context manager).
    """
    too_wide = [j.job_id for j in jobs if j.procs > n_procs]
    if too_wide:
        raise ValueError(
            f"jobs {too_wide[:5]} request more than {n_procs} processors "
            "and could never run; filter the trace first"
        )
    work = fresh_copies(jobs) if copy_jobs else jobs
    driver = SchedulingSimulation(
        cluster=Cluster(n_procs),
        scheduler=scheduler,
        overhead_model=overhead_model,
        migratable=migratable,
        recorder=recorder,
    )
    return driver.run(work)


@dataclass(frozen=True)
class SchemeSpec:
    """A named scheduler factory for comparison runs.

    Factories (not instances) because scheduler objects are single-use.
    """

    label: str
    factory: Callable[[], Scheduler]
    #: set true for TSS specs that want calibrated limits from the NS run
    needs_baseline: bool = False
    #: factory variant receiving the NS baseline result
    factory_with_baseline: Callable[[SimulationResult], Scheduler] | None = field(
        default=None
    )


def standard_schemes(suspension_factors: tuple[float, ...] = (1.5, 2.0, 5.0)) -> list[SchemeSpec]:
    """The paper's section IV comparison set: SS at each SF, NS, IS."""
    specs = [
        SchemeSpec(
            label=f"SF = {sf:g}",
            factory=(lambda sf=sf: SelectiveSuspensionScheduler(suspension_factor=sf)),
        )
        for sf in suspension_factors
    ]
    specs.append(SchemeSpec(label="No Suspension", factory=EasyBackfillScheduler))
    specs.append(SchemeSpec(label="IS", factory=ImmediateServiceScheduler))
    return specs


def tuned_schemes(
    suspension_factors: tuple[float, ...] = (1.5, 2.0, 5.0),
) -> list[SchemeSpec]:
    """The section V comparison set: TSS (calibrated) at each SF, NS, IS."""
    specs = [
        SchemeSpec(
            label=f"SF = {sf:g} Tuned",
            factory=(lambda sf=sf: TunableSelectiveSuspensionScheduler(suspension_factor=sf)),
            needs_baseline=True,
            factory_with_baseline=(
                lambda baseline, sf=sf: TunableSelectiveSuspensionScheduler(
                    suspension_factor=sf, limits=limits_from_result(baseline)
                )
            ),
        )
        for sf in suspension_factors
    ]
    specs.append(SchemeSpec(label="No Suspension", factory=EasyBackfillScheduler))
    specs.append(SchemeSpec(label="IS", factory=ImmediateServiceScheduler))
    return specs


def hybrid_schemes(suspension_factor: float = 2.0) -> list[SchemeSpec]:
    """The policy-kernel cross products next to their parents.

    Pairs each hybrid (``ss-easy``, ``tss-conservative``) with the pure
    schemes it composes, so one comparison run shows what the guarantee
    layer costs and what the preemption layer buys (see DESIGN.md
    section 12).
    """
    from repro.schedulers.hybrids import (
        SuspensionWithHeadGuarantee,
        TunableSuspensionWithGuarantees,
    )

    sf = suspension_factor
    return [
        SchemeSpec(
            label=f"SS (SF = {sf:g})",
            factory=(lambda: SelectiveSuspensionScheduler(suspension_factor=sf)),
        ),
        SchemeSpec(
            label=f"SS+EASY (SF = {sf:g})",
            factory=(lambda: SuspensionWithHeadGuarantee(suspension_factor=sf)),
        ),
        SchemeSpec(
            label=f"TSS+CONS (SF = {sf:g})",
            factory=(lambda: TunableSuspensionWithGuarantees(suspension_factor=sf)),
        ),
        SchemeSpec(label="No Suspension", factory=EasyBackfillScheduler),
    ]


def compare_schemes(
    jobs: list[Job],
    n_procs: int,
    schemes: list[SchemeSpec],
    overhead_model: SuspensionOverheadModel | None = None,
) -> dict[str, SimulationResult]:
    """Run every scheme over (fresh copies of) the same workload.

    TSS specs flagged ``needs_baseline`` receive calibrated limits from
    an NS (EASY) run over the same trace, executed once and shared.

    For multi-core fan-out and an on-disk result cache see
    :func:`repro.experiments.parallel.compare_schemes_parallel`, a
    drop-in replacement verified byte-identical to this path.
    """
    baseline: SimulationResult | None = None
    if any(s.needs_baseline for s in schemes):
        baseline = simulate(jobs, EasyBackfillScheduler(), n_procs, overhead_model)
    out: dict[str, SimulationResult] = {}
    for spec in schemes:
        if spec.needs_baseline:
            assert baseline is not None and spec.factory_with_baseline is not None
            scheduler = spec.factory_with_baseline(baseline)
        else:
            scheduler = spec.factory()
        out[spec.label] = simulate(jobs, scheduler, n_procs, overhead_model)
    return out

"""Content-addressed on-disk cache of simulation results.

The paper's evaluation grid is hundreds of deterministic simulations,
and most bench / CLI invocations re-run cells an earlier invocation
already computed (every figure shares its NS baseline, every load sweep
shares the load-1.0 points, ...).  Because the simulator is
deterministic, a cell's outcome is a pure function of

* the **workload** (static job fields only -- dynamic state is reset by
  ``fresh_copies`` before every run),
* the **machine size**,
* the **scheduler configuration** (:meth:`Scheduler.config`, which by
  contract fully determines policy behaviour),
* the **overhead model** (its dataclass fields), and
* the **migratable** flag.

:func:`cell_fingerprint` hashes exactly those inputs into a SHA-256 key;
:class:`ResultCache` maps keys to pickled
:class:`~repro.sim.driver.SimulationResult` files under a directory.
Anything that changes behaviour changes the key, so a cache directory
never needs manual invalidation for *input* changes -- only for
*simulator code* changes, which is why the cache is opt-in
(``--cache-dir`` / ``cache=`` arguments) and trivially busted by
pointing at a fresh directory.  See README.md "Running the full grid in
parallel" for the caveats.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Mapping

from repro.sim.driver import SimulationResult, SuspensionOverheadModel
from repro.workload.job import Job

#: bump when the simulator's observable behaviour changes in a way the
#: fingerprint inputs cannot see (e.g. an event-ordering fix); stale
#: cache directories then miss instead of serving pre-fix results
CACHE_SCHEMA_VERSION = 1


def fingerprint_jobs(jobs: list[Job]) -> str:
    """SHA-256 over the static fields of *jobs*, order-sensitive.

    Only static (trace) fields participate: runs always start from
    fresh copies, so dynamic state cannot influence the outcome.  Order
    matters because arrival ties break by insertion order.
    """
    h = hashlib.sha256()
    h.update(b"jobs-v1")
    for j in jobs:
        h.update(
            (
                f"{j.job_id}|{j.submit_time!r}|{j.run_time!r}|{j.estimate!r}"
                f"|{j.procs}|{j.memory_mb!r}|{j.user}\n"
            ).encode()
        )
    return h.hexdigest()


def overhead_config(model: SuspensionOverheadModel | None) -> object:
    """A JSON-stable description of an overhead model, for fingerprints.

    ``None`` stays ``None``; dataclass models (all in-repo models)
    serialise as class name + field dict; anything else falls back to
    ``repr`` -- adequate as long as the repr reflects the parameters.
    """
    if model is None:
        return None
    if dataclasses.is_dataclass(model) and not isinstance(model, type):
        return {"model": type(model).__name__, **dataclasses.asdict(model)}
    return {"model": type(model).__name__, "repr": repr(model)}


def cell_fingerprint(
    jobs_fp: str,
    n_procs: int,
    scheduler_config: Mapping[str, object],
    overhead_model: SuspensionOverheadModel | None = None,
    migratable: bool = False,
    provenance: Mapping[str, object] | None = None,
) -> str:
    """The content address of one (workload, machine, policy) cell.

    *provenance* is optional extra keying context -- the sharded-replay
    path records ``{pipeline fingerprint, shard window}`` so a shard
    simulated under one pipeline config can never be served for another
    (the job hash alone already separates them; provenance makes the
    separation structural and self-describing).  ``None`` keeps the
    payload exactly as before, so every pre-existing cache entry remains
    addressable.
    """
    body: dict[str, object] = {
        "schema": CACHE_SCHEMA_VERSION,
        "jobs": jobs_fp,
        "n_procs": int(n_procs),
        "scheduler": dict(scheduler_config),
        "overhead": overhead_config(overhead_model),
        "migratable": bool(migratable),
    }
    if provenance is not None:
        body["provenance"] = dict(provenance)
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Directory-backed map from cell fingerprints to simulation results.

    Layout: ``<dir>/<fp[:2]>/<fp>.pkl`` (two-level fan-out keeps
    directories small for production-sized grids).  Writes are atomic
    (tempfile + rename), so concurrent runs sharing a cache directory
    at worst duplicate work, never corrupt entries.

    Unreadable entries are **quarantined**, not deleted: a garbage
    pickle is renamed to ``<fp>.pkl.corrupt`` so the next :meth:`put`
    repairs the slot while the evidence survives for diagnosis (a
    corrupt entry usually means a torn disk write or an unsanctioned
    mutation of the cache directory -- worth keeping).

    Counters (``hits`` / ``misses`` / ``stores`` / ``corrupt``) are
    per-instance diagnostics; tests use them to assert that a warm
    re-run executes zero simulations.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    def _path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.pkl"

    def __contains__(self, fingerprint: str) -> bool:
        return self._path(fingerprint).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def get(self, fingerprint: str) -> SimulationResult | None:
        """The cached result for *fingerprint*, or ``None`` (counted).

        An entry that exists but cannot be loaded is quarantined (see
        :meth:`_quarantine`) and counted as a miss.  The guard is
        ``Exception``-wide on purpose: unpickling attacker-free but
        *garbage* bytes can raise nearly anything -- ``AttributeError``
        and ``ImportError`` for stale class paths, ``MemoryError`` for a
        corrupted length prefix -- and none of those may escape a cache
        *probe*.
        """
        path = self._path(fingerprint)
        try:
            with path.open("rb") as fh:
                result = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _quarantine(self, path: Path) -> None:
        """Move an unreadable entry aside as ``<name>.pkl.corrupt``.

        The rename frees the slot (``put`` then writes a fresh entry at
        the canonical path) while preserving the poisoned bytes next to
        it; ``__len__``/``clear`` ignore ``*.corrupt`` files.  This is
        the one sanctioned mutation on the cache *read* path -- see
        repro-lint rule RPR005.
        """
        try:
            path.rename(path.with_name(path.name + ".corrupt"))
        except OSError:  # raced away, or the path is not renameable
            return
        self.corrupt += 1

    def put(self, fingerprint: str, result: SimulationResult) -> None:
        """Store *result* under *fingerprint* atomically."""
        path = self._path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for p in self.root.glob("*/*.pkl"):
            p.unlink(missing_ok=True)
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResultCache {self.root} entries={len(self)} "
            f"hits={self.hits} misses={self.misses} stores={self.stores} "
            f"corrupt={self.corrupt}>"
        )

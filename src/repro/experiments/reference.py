"""Published numbers from the paper, for side-by-side comparison.

Only values printed in the paper's tables or stated in its text are
recorded here; figure bar heights that can only be eyeballed are
captured as qualitative *claims* (see :data:`PAPER_CLAIMS`) that the
shape-checking tests assert against simulated output.
"""

from __future__ import annotations

#: Table II -- CTC job distribution by category (fraction of jobs).
PAPER_TABLE_2_CTC_SHARES: dict[tuple[str, str], float] = {
    ("VS", "Seq"): 0.14, ("VS", "N"): 0.08, ("VS", "W"): 0.13, ("VS", "VW"): 0.09,
    ("S", "Seq"): 0.18, ("S", "N"): 0.04, ("S", "W"): 0.06, ("S", "VW"): 0.02,
    ("L", "Seq"): 0.06, ("L", "N"): 0.03, ("L", "W"): 0.09, ("L", "VW"): 0.02,
    ("VL", "Seq"): 0.02, ("VL", "N"): 0.02, ("VL", "W"): 0.01, ("VL", "VW"): 0.01,
}

#: Table III -- SDSC job distribution by category.
PAPER_TABLE_3_SDSC_SHARES: dict[tuple[str, str], float] = {
    ("VS", "Seq"): 0.08, ("VS", "N"): 0.29, ("VS", "W"): 0.09, ("VS", "VW"): 0.04,
    ("S", "Seq"): 0.02, ("S", "N"): 0.08, ("S", "W"): 0.05, ("S", "VW"): 0.03,
    ("L", "Seq"): 0.08, ("L", "N"): 0.05, ("L", "W"): 0.06, ("L", "VW"): 0.01,
    ("VL", "Seq"): 0.03, ("VL", "N"): 0.05, ("VL", "W"): 0.03, ("VL", "VW"): 0.01,
}

#: Table IV -- average bounded slowdown per category, NS scheme, CTC.
PAPER_TABLE_4_CTC_NS_SLOWDOWN: dict[tuple[str, str], float] = {
    ("VS", "Seq"): 2.6, ("VS", "N"): 4.76, ("VS", "W"): 13.01, ("VS", "VW"): 34.07,
    ("S", "Seq"): 1.26, ("S", "N"): 1.76, ("S", "W"): 3.04, ("S", "VW"): 7.14,
    ("L", "Seq"): 1.13, ("L", "N"): 1.43, ("L", "W"): 1.88, ("L", "VW"): 1.63,
    ("VL", "Seq"): 1.03, ("VL", "N"): 1.05, ("VL", "W"): 1.09, ("VL", "VW"): 1.15,
}

#: Table V -- average bounded slowdown per category, NS scheme, SDSC.
PAPER_TABLE_5_SDSC_NS_SLOWDOWN: dict[tuple[str, str], float] = {
    ("VS", "Seq"): 2.53, ("VS", "N"): 14.41, ("VS", "W"): 37.78, ("VS", "VW"): 113.31,
    ("S", "Seq"): 1.15, ("S", "N"): 2.43, ("S", "W"): 4.83, ("S", "VW"): 15.56,
    ("L", "Seq"): 1.19, ("L", "N"): 1.24, ("L", "W"): 1.96, ("L", "VW"): 2.79,
    ("VL", "Seq"): 1.03, ("VL", "N"): 1.09, ("VL", "W"): 1.18, ("VL", "VW"): 1.43,
}

#: Overall NS bounded slowdowns stated in section III.
PAPER_OVERALL_NS_SLOWDOWN = {"CTC": 3.58, "SDSC": 14.13}

#: Saturation load factors from Figs 35/38.
PAPER_SATURATION_LOAD = {"CTC": 1.6, "SDSC": 1.3}

#: Stated VS-VW improvements (section IV-D): NS -> SS(SF=2).
PAPER_VSVW_IMPROVEMENT = {
    "CTC": {"ns": 34.0, "ss_sf2_max": 3.0},
    "SDSC": {"ns": 113.0, "ss_sf2_max": 7.0},
}

#: Qualitative claims the shape tests assert (section -> claim).
PAPER_CLAIMS: dict[str, str] = {
    "IV-D-1": "SS gives significant benefit over NS for VS and S categories",
    "IV-D-2": "SS slightly degrades the VL categories relative to NS",
    "IV-D-3": "lower SF lowers slowdown for VS/S; the opposite for VL",
    "IV-D-4": "IS beats SS only on VS categories; SS wins everywhere else",
    "IV-E-1": "TSS improves worst-case turnaround for many categories "
    "without hurting the others",
    "V-1": "with inaccurate estimates, badly estimated short jobs are the "
    "ones SS penalises",
    "V-A-1": "suspension overhead barely affects SS performance",
    "VI-1": "SS's advantage over NS grows with load",
    "VI-2": "IS achieves markedly lower utilisation than SS/NS",
}

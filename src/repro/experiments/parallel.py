"""Process-pool experiment execution with deterministic merging.

The paper's evaluation is an embarrassingly parallel grid -- scheme x
trace x seed x load x overhead cells that share nothing at run time --
yet :func:`~repro.experiments.runner.compare_schemes` walks it serially.
This module fans cells out over ``multiprocessing`` workers and merges
the results deterministically:

* every cell is a :class:`GridCell` -- pristine jobs plus a
  **JSON-stable scheduler config** (:meth:`Scheduler.config`), because
  scheduler *instances* are stateful, single-use and unpicklable
  (factories close over arbitrary state); the worker rebuilds a fresh
  instance via :func:`repro.schedulers.registry.scheduler_from_config`;
* results are keyed by the cell's caller-chosen ``key`` and returned in
  **input order**, never completion order, so a parallel run is
  indistinguishable from a serial one (the simulator itself is
  deterministic -- see :mod:`repro.sim.events`);
* an optional :class:`~repro.experiments.cache.ResultCache` short-cuts
  cells whose fingerprint was computed by any earlier run.

:func:`compare_schemes_parallel` is a drop-in replacement for
:func:`~repro.experiments.runner.compare_schemes` (same signature plus
``workers`` / ``cache``) whose output is verified byte-identical to the
serial path by ``tests/test_parallel.py``.
"""

from __future__ import annotations

import os
import re
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.experiments.cache import ResultCache, cell_fingerprint, fingerprint_jobs
from repro.experiments.runner import SchemeSpec, simulate
from repro.schedulers.easy import EasyBackfillScheduler
from repro.schedulers.registry import scheduler_from_config
from repro.sim.driver import SimulationResult, SuspensionOverheadModel
from repro.workload.job import Job

#: key used for the shared NS baseline cell of calibrated-TSS specs
BASELINE_KEY = "__ns_baseline__"


@dataclass(frozen=True)
class GridCell:
    """One independent simulation of the experiment grid.

    ``key`` is the caller's name for the cell (scheme label, "(scheme,
    load)" string, ...) and must be unique within one :func:`run_grid`
    call -- it keys the merged result dict.
    """

    key: str
    jobs: list[Job]
    n_procs: int
    scheduler_config: Mapping[str, object]
    overhead_model: SuspensionOverheadModel | None = None
    migratable: bool = False
    #: optional JSONL decision-trace destination (see docs/TRACING.md).
    #: A path -- not a recorder -- so the cell stays picklable; the
    #: worker process opens its own :class:`~repro.obs.recorder.JsonlRecorder`
    #: and streams events as the cell simulates.  Traced cells bypass
    #: the result cache entirely (both read and write): a trace is the
    #: record of an *actual* run, and cache-served results would leave
    #: the file unwritten.
    trace_path: str | None = None

    def fingerprint(self, jobs_fp: str | None = None) -> str:
        """Content address for the cache; *jobs_fp* skips re-hashing."""
        return cell_fingerprint(
            jobs_fp if jobs_fp is not None else fingerprint_jobs(self.jobs),
            self.n_procs,
            self.scheduler_config,
            self.overhead_model,
            self.migratable,
        )


@dataclass
class GridOutcome:
    """What :func:`run_grid` hands back.

    ``results`` preserves cell input order.  ``executed`` counts cells
    actually simulated (this process or its workers); ``cache_hits``
    counts cells served from the cache.  ``executed == 0`` on a fully
    warm cache -- the property bench and tests assert on.
    """

    results: dict[str, SimulationResult] = field(default_factory=dict)
    executed: int = 0
    cache_hits: int = 0
    #: cell key -> written JSONL trace file, for cells with a
    #: ``trace_path`` (empty when nothing was traced)
    trace_paths: dict[str, str] = field(default_factory=dict)


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker-count argument.

    ``None`` / ``1`` -> 1 (in-process, no pool); ``0`` -> one per CPU;
    anything else is taken literally (minimum 1).
    """
    if workers is None:
        return 1
    if workers == 0:
        return os.cpu_count() or 1
    return max(int(workers), 1)


def _simulate_cell(cell: GridCell) -> SimulationResult:
    """Run one cell; module-level so worker processes can unpickle it.

    When the cell carries a ``trace_path`` the recorder is constructed
    *here*, inside the (possibly worker) process, so events stream
    straight to the per-cell file without crossing process boundaries.
    """
    scheduler = scheduler_from_config(cell.scheduler_config)
    if cell.trace_path is not None:
        from repro.obs.recorder import JsonlRecorder

        with JsonlRecorder(cell.trace_path) as recorder:
            return simulate(
                list(cell.jobs),
                scheduler,
                cell.n_procs,
                cell.overhead_model,
                migratable=cell.migratable,
                recorder=recorder,
            )
    return simulate(
        list(cell.jobs),
        scheduler,
        cell.n_procs,
        cell.overhead_model,
        migratable=cell.migratable,
    )


def run_grid(
    cells: Sequence[GridCell],
    workers: int | None = None,
    cache: ResultCache | None = None,
) -> GridOutcome:
    """Execute *cells*, in parallel and/or from cache, merging deterministically.

    Parameters
    ----------
    cells:
        The grid; keys must be unique.
    workers:
        See :func:`resolve_workers`.  With one worker everything runs
        in-process (no pool, no pickling), which is also the fallback
        when only one cell needs simulating.
    cache:
        Optional result cache; hits skip simulation entirely and fresh
        results are stored back.

    The result dict iterates in cell input order regardless of worker
    completion order, and each value is bit-for-bit the result a serial
    run would produce (the simulation itself is deterministic and
    workers share nothing).
    """
    keys = [c.key for c in cells]
    if len(set(keys)) != len(keys):
        dupes = sorted({k for k in keys if keys.count(k) > 1})
        raise ValueError(f"duplicate grid cell keys: {dupes}")

    slots: list[SimulationResult | None] = [None] * len(cells)
    outcome = GridOutcome()

    # cache probe -- fingerprint each cell, memoising the workload hash
    # by identity (grids typically reuse one jobs list across schemes).
    # Traced cells never consult the cache: the trace is the record of
    # an actual run (see GridCell.trace_path).
    pending: list[int] = []
    fingerprints: list[str | None] = [None] * len(cells)
    if cache is not None:
        jobs_fp_memo: dict[int, str] = {}
        for i, cell in enumerate(cells):
            if cell.trace_path is not None:
                pending.append(i)
                continue
            memo_key = id(cell.jobs)
            if memo_key not in jobs_fp_memo:
                jobs_fp_memo[memo_key] = fingerprint_jobs(cell.jobs)
            fp = cell.fingerprint(jobs_fp_memo[memo_key])
            fingerprints[i] = fp
            hit = cache.get(fp)
            if hit is not None:
                slots[i] = hit
                outcome.cache_hits += 1
            else:
                pending.append(i)
    else:
        pending = list(range(len(cells)))

    n_workers = min(resolve_workers(workers), max(len(pending), 1))
    if pending:
        if n_workers > 1 and len(pending) > 1:
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                futures = [(i, pool.submit(_simulate_cell, cells[i])) for i in pending]
                # collect in submission order: merging never depends on
                # completion order
                for i, fut in futures:
                    slots[i] = fut.result()
        else:
            for i in pending:
                slots[i] = _simulate_cell(cells[i])
        outcome.executed = len(pending)
        if cache is not None:
            for i in pending:
                if cells[i].trace_path is not None:
                    continue  # traced runs are never cached (see above)
                fp = fingerprints[i]
                result = slots[i]
                assert fp is not None and result is not None
                cache.put(fp, result)

    for cell, result in zip(cells, slots, strict=True):
        assert result is not None
        outcome.results[cell.key] = result
        if cell.trace_path is not None:
            outcome.trace_paths[cell.key] = cell.trace_path
    return outcome


def trace_file_for_key(trace_dir: str | Path, key: str) -> str:
    """Per-cell JSONL path under *trace_dir*, with a filesystem-safe name.

    Cell keys are free-form labels (``"SF = 1.5"``, ``"(SS, load 1.2)"``);
    every run of characters outside ``[A-Za-z0-9._-]`` collapses to one
    underscore.  Distinct keys that sanitise identically would collide,
    so callers with adversarial key sets should pick their own paths via
    :attr:`GridCell.trace_path`.
    """
    safe = re.sub(r"[^A-Za-z0-9._-]+", "_", key).strip("_") or "cell"
    return str(Path(trace_dir) / f"{safe}.jsonl")


def compare_schemes_parallel(
    jobs: list[Job],
    n_procs: int,
    schemes: list[SchemeSpec],
    overhead_model: SuspensionOverheadModel | None = None,
    *,
    workers: int | None = None,
    cache: ResultCache | None = None,
    trace_dir: str | Path | None = None,
) -> dict[str, SimulationResult]:
    """Parallel, cache-aware drop-in for :func:`compare_schemes`.

    Semantics match the serial function exactly: TSS specs flagged
    ``needs_baseline`` receive limits calibrated from one shared NS
    (EASY) run over the same trace.  The baseline runs first (it is a
    dependency, and itself cacheable); the scheme cells then fan out
    over *workers* processes.

    Output is keyed by scheme label in scheme order, byte-identical to
    ``compare_schemes(jobs, n_procs, schemes, overhead_model)``.

    With *trace_dir*, every scheme cell additionally streams its JSONL
    decision trace to ``trace_dir/<sanitised-label>.jsonl`` (written by
    the worker that simulates the cell -- see
    :func:`trace_file_for_key`).  Tracing never changes schedules, so
    the returned results are identical either way; traced cells do
    bypass the result cache (a cache hit would leave no trace file).
    """
    baseline: SimulationResult | None = None
    if any(s.needs_baseline for s in schemes):
        baseline_cell = GridCell(
            key=BASELINE_KEY,
            jobs=jobs,
            n_procs=n_procs,
            scheduler_config=EasyBackfillScheduler().config(),
            overhead_model=overhead_model,
        )
        baseline = run_grid([baseline_cell], workers=None, cache=cache).results[
            BASELINE_KEY
        ]

    cells: list[GridCell] = []
    for spec in schemes:
        if spec.needs_baseline:
            assert baseline is not None and spec.factory_with_baseline is not None
            scheduler = spec.factory_with_baseline(baseline)
        else:
            scheduler = spec.factory()
        cells.append(
            GridCell(
                key=spec.label,
                jobs=jobs,
                n_procs=n_procs,
                scheduler_config=scheduler.config(),
                overhead_model=overhead_model,
                trace_path=(
                    trace_file_for_key(trace_dir, spec.label)
                    if trace_dir is not None
                    else None
                ),
            )
        )
    return run_grid(cells, workers=workers, cache=cache).results

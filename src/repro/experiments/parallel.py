"""Fault-tolerant process-pool experiment execution with deterministic merging.

The paper's evaluation is an embarrassingly parallel grid -- scheme x
trace x seed x load x overhead cells that share nothing at run time --
yet :func:`~repro.experiments.runner.compare_schemes` walks it serially.
This module fans cells out over ``multiprocessing`` workers, survives
worker crashes / hangs / killed pools, and merges the results
deterministically:

* every cell is a :class:`GridCell` -- pristine jobs plus a
  **JSON-stable scheduler config** (:meth:`Scheduler.config`), because
  scheduler *instances* are stateful, single-use and unpicklable
  (factories close over arbitrary state); the worker rebuilds a fresh
  instance via :func:`repro.schedulers.registry.scheduler_from_config`;
* results are collected in **completion order** (so every fresh result
  is committed to the :class:`~repro.experiments.cache.ResultCache` the
  moment it exists -- a killed run loses zero finished cells) but merged
  in **input order**, so a parallel run is indistinguishable from a
  serial one (the simulator itself is deterministic -- see
  :mod:`repro.sim.events`);
* a :class:`GridPolicy` bounds each cell with a timeout and a retry
  budget (exponential backoff), respawns a broken pool, and degrades to
  in-process execution when the pool cannot be trusted; what happened is
  reported structurally via :attr:`GridOutcome.failures`
  (:class:`CellFailure` per disturbed cell) and
  :class:`~repro.obs.counters.GridCounters`;
* an optional :class:`~repro.experiments.cache.ResultCache` short-cuts
  cells whose fingerprint was computed by any earlier run -- including a
  run that crashed partway through, because commits are incremental.

:func:`compare_schemes_parallel` is a drop-in replacement for
:func:`~repro.experiments.runner.compare_schemes` (same signature plus
``workers`` / ``cache`` / ``policy``) whose output is verified
byte-identical to the serial path by ``tests/test_parallel.py``; the
recovery paths are proven by ``tests/test_fault_tolerance.py`` against
the deterministic fault-injection harness in ``tests/fault_injection.py``.
"""

from __future__ import annotations

import hashlib
import os
import re
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.experiments.cache import ResultCache, cell_fingerprint, fingerprint_jobs
from repro.experiments.runner import SchemeSpec, simulate
from repro.experiments.shm import (
    JobsRef,
    WorkloadPlane,
    decode_stats_snapshot,
    resolve_jobs,
)
from repro.obs.counters import GridCounters
from repro.schedulers.easy import EasyBackfillScheduler
from repro.schedulers.registry import scheduler_from_config
from repro.sim.driver import SimulationResult, SuspensionOverheadModel
from repro.workload.job import Job

#: key used for the shared NS baseline cell of calibrated-TSS specs
BASELINE_KEY = "__ns_baseline__"


@dataclass(frozen=True)
class GridCell:
    """One independent simulation of the experiment grid.

    ``key`` is the caller's name for the cell (scheme label, "(scheme,
    load)" string, ...) and must be unique within one :func:`run_grid`
    call -- it keys the merged result dict.

    The workload travels one of two ways: inline ``jobs`` (the classic
    path -- the whole list rides inside the cell's pickle) or a
    ``jobs_ref`` into the shared-memory workload plane
    (:mod:`repro.experiments.shm` -- the pickle carries ~200 bytes and
    the worker attaches/decodes once per process).  Exactly one of the
    two must be set; :func:`run_grid` converts inline cells to refs
    automatically in pool mode (``shm`` parameter).
    """

    key: str
    jobs: list[Job] | None = None
    n_procs: int = 0
    scheduler_config: Mapping[str, object] = field(default_factory=dict)
    overhead_model: SuspensionOverheadModel | None = None
    migratable: bool = False
    #: optional JSONL decision-trace destination (see docs/TRACING.md).
    #: A path -- not a recorder -- so the cell stays picklable; the
    #: worker process opens its own :class:`~repro.obs.recorder.JsonlRecorder`
    #: and streams events as the cell simulates.  Traced cells bypass
    #: the result cache entirely (both read and write): a trace is the
    #: record of an *actual* run, and cache-served results would leave
    #: the file unwritten.
    trace_path: str | None = None
    #: optional extra cache-keying context (JSON-stable).  The sharded
    #: replay path stores the workload-pipeline fingerprint and shard
    #: window here; ``None`` leaves fingerprints exactly as before.
    provenance: Mapping[str, object] | None = None
    #: shared-memory alternative to ``jobs`` (see
    #: :class:`repro.experiments.shm.JobsRef`); mutually exclusive with it
    jobs_ref: JobsRef | None = None

    def __post_init__(self) -> None:
        if (self.jobs is None) == (self.jobs_ref is None):
            raise ValueError(
                f"cell {self.key!r}: exactly one of jobs / jobs_ref must be set"
            )
        if self.n_procs < 1:
            raise ValueError(f"cell {self.key!r}: n_procs must be >= 1")
        if not self.scheduler_config:
            raise ValueError(f"cell {self.key!r}: scheduler_config is required")

    def workload_source(self) -> object:
        """The object that *is* this cell's workload (for identity memos)."""
        return self.jobs if self.jobs is not None else self.jobs_ref

    def jobs_fingerprint(self) -> str:
        """Workload hash feeding the cache key (ref cells never decode)."""
        if self.jobs_ref is not None:
            return self.jobs_ref.cache_jobs_fp()
        assert self.jobs is not None
        return fingerprint_jobs(self.jobs)

    def resolve(self) -> list[Job]:
        """The cell's job list, decoding a ref via the workload plane.

        Do not mutate the result of a ref cell -- it is the per-process
        memoised decode, shared by every cell over the same workload
        (the simulation path copies before running).
        """
        if self.jobs is not None:
            return self.jobs
        assert self.jobs_ref is not None
        return resolve_jobs(self.jobs_ref)

    def fingerprint(self, jobs_fp: str | None = None) -> str:
        """Content address for the cache; *jobs_fp* skips re-hashing."""
        return cell_fingerprint(
            jobs_fp if jobs_fp is not None else self.jobs_fingerprint(),
            self.n_procs,
            self.scheduler_config,
            self.overhead_model,
            self.migratable,
            provenance=self.provenance,
        )


@dataclass(frozen=True)
class GridPolicy:
    """Fault-tolerance knobs for one grid execution.

    The defaults are deliberately conservative -- no timeout, no
    retries, one pool respawn -- so an undisturbed grid behaves exactly
    as before.  Timeouts only bind in pool mode: an in-process cell
    cannot be preempted from within, so serial/degraded execution
    honours the retry budget but not ``cell_timeout``.
    """

    #: seconds a cell may run on a worker before it is declared hung and
    #: its worker culled (``None`` = wait forever).  The clock starts
    #: when the cell is handed to the pool; submission is throttled to
    #: the worker count, so queue wait does not eat into the budget.
    cell_timeout: float | None = None
    #: failed attempts a cell may retry beyond its first try
    cell_retries: int = 0
    #: base of the exponential backoff slept before a retry
    #: (``backoff_base * 2**(failed_attempts - 1)`` seconds, 0 = none)
    backoff_base: float = 0.5
    #: ceiling on any single backoff sleep
    backoff_max: float = 30.0
    #: times a ``BrokenProcessPool`` may be answered by building a fresh
    #: pool before the executor degrades to in-process execution
    pool_respawns: int = 1

    @classmethod
    def from_env(
        cls, env: Mapping[str, str] | None = None, prefix: str = "REPRO_BENCH_"
    ) -> GridPolicy:
        """Policy from ``<prefix>CELL_TIMEOUT`` / ``<prefix>CELL_RETRIES``.

        Unset/empty variables keep the defaults; the benches use this so
        ``REPRO_BENCH_CELL_TIMEOUT=120 REPRO_BENCH_CELL_RETRIES=2``
        hardens a long overnight sweep without touching code.
        """
        if env is None:
            env = os.environ
        timeout = env.get(prefix + "CELL_TIMEOUT", "")
        retries = env.get(prefix + "CELL_RETRIES", "")
        return cls(
            cell_timeout=float(timeout) if timeout else cls.cell_timeout,
            cell_retries=int(retries) if retries else cls.cell_retries,
        )


@dataclass
class CellFailure:
    """What went wrong (and how it ended) for one disturbed cell.

    Recorded in :attr:`GridOutcome.failures` for every cell that lost at
    least one attempt, *including* cells that subsequently recovered --
    the report is the forensic record the ROADMAP's production framing
    requires, not just the error message of the final state.
    """

    key: str
    #: exception type name of the most recent failure (``"TimeoutError"``
    #: for hangs, ``"BrokenProcessPool"`` for cells lost with the pool)
    exc_type: str
    #: message of the most recent failure
    message: str
    #: failed attempts so far (pool losses are recorded but not charged)
    attempts: int
    #: what happened to the worker: ``"crashed"`` (raised), ``"hung"``
    #: (exceeded the cell timeout, worker culled) or ``"lost"`` (the
    #: pool died under it -- fault not attributable to this cell)
    worker_fate: str
    #: whether the cell eventually produced a result
    resolved: bool = False
    #: how it resolved: ``"retry"`` (same pool), ``"pool-respawn"``
    #: (after a rebuild), ``"in-process"`` (degraded mode) or
    #: ``"gave-up"`` (retry budget exhausted -- the grid raised)
    resolution: str | None = None


class GridExecutionError(RuntimeError):
    """A cell exhausted its retry budget; the grid cannot complete.

    Everything that *did* finish before the raise was already committed
    to the cache (commits are incremental), so a re-run after fixing the
    fault resumes with those cells as hits.  ``failures`` carries the
    full :class:`CellFailure` report, ``key`` the fatal cell.
    """

    def __init__(self, key: str, failures: dict[str, CellFailure]) -> None:
        fatal = failures[key]
        super().__init__(
            f"grid cell {key!r} failed permanently after {fatal.attempts} "
            f"attempt(s): {fatal.exc_type}: {fatal.message}"
        )
        self.key = key
        self.failures = failures


@dataclass
class GridOutcome:
    """What :func:`run_grid` hands back.

    ``results`` preserves cell input order.  ``executed`` counts cells
    actually simulated (this process or its workers); ``cache_hits``
    counts cells served from the cache.  ``executed == 0`` on a fully
    warm cache -- the property bench and tests assert on.
    """

    results: dict[str, SimulationResult] = field(default_factory=dict)
    executed: int = 0
    cache_hits: int = 0
    #: cell key -> written JSONL trace file, for cells with a
    #: ``trace_path`` (empty when nothing was traced)
    trace_paths: dict[str, str] = field(default_factory=dict)
    #: cell key -> failure report, for every cell that lost at least one
    #: attempt (empty on an undisturbed run; recovered cells appear here
    #: with ``resolved=True``)
    failures: dict[str, CellFailure] = field(default_factory=dict)
    #: executor-level recovery tallies (all zeros when nothing happened)
    counters: GridCounters = field(default_factory=GridCounters)


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker-count argument.

    ``None`` / ``1`` -> 1 (in-process, no pool); ``0`` -> one per CPU;
    anything else is taken literally (minimum 1).
    """
    if workers is None:
        return 1
    if workers == 0:
        return os.cpu_count() or 1
    return max(int(workers), 1)


def simulate_cell(cell: GridCell) -> SimulationResult:
    """Run one cell; module-level so worker processes can unpickle it.

    When the cell carries a ``trace_path`` the recorder is constructed
    *here*, inside the (possibly worker) process, so events stream
    straight to the per-cell file without crossing process boundaries.

    This is also the executor's injection seam: :func:`run_grid` accepts
    any picklable drop-in via ``simulate_fn`` -- the fault-injection
    harness wraps this function to crash/hang/kill deterministically.
    """
    scheduler = scheduler_from_config(cell.scheduler_config)
    jobs = cell.resolve()
    if cell.trace_path is not None:
        from repro.obs.recorder import JsonlRecorder

        with JsonlRecorder(cell.trace_path) as recorder:
            return simulate(
                list(jobs),
                scheduler,
                cell.n_procs,
                cell.overhead_model,
                migratable=cell.migratable,
                recorder=recorder,
            )
    return simulate(
        list(jobs),
        scheduler,
        cell.n_procs,
        cell.overhead_model,
        migratable=cell.migratable,
    )


def simulate_cell_with_stats(
    simulate_fn: Callable[[GridCell], SimulationResult], cell: GridCell
) -> tuple[SimulationResult, tuple[int, int, int, int]]:
    """Run *cell* via *simulate_fn* and report the decode-stats delta.

    The pool submission wrapper: executed inside the worker process, it
    brackets the cell with :func:`~repro.experiments.shm.decode_stats_snapshot`
    so the worker's shared-memory activity (attaches, decodes, memo
    hits, fallbacks) rides back to the coordinator alongside the result
    -- four integers, not a side channel.  The coordinator folds the
    deltas into :class:`~repro.obs.counters.GridCounters`
    ``shm_worker_*`` fields.
    """
    before = decode_stats_snapshot()
    result = simulate_fn(cell)
    after = decode_stats_snapshot()
    return result, (
        after[0] - before[0],
        after[1] - before[1],
        after[2] - before[2],
        after[3] - before[3],
    )


class _GridExecution:
    """One fault-tolerant pass over the pending cells of a grid.

    State machine per cell::

        queued -> running -> committed
                    |-- raised ----------> retry (backoff) or gave-up
                    |-- past deadline ---> worker culled, retry or gave-up
                    '-- pool died -------> resubmitted uncharged
                                           (respawn budget, else degrade)

    ``gave-up`` raises :class:`GridExecutionError`; every other edge
    keeps the grid running.  Results are committed (slot + cache) in
    completion order the moment they exist.
    """

    def __init__(
        self,
        cells: Sequence[GridCell],
        slots: list[SimulationResult | None],
        fingerprints: list[str | None],
        cache: ResultCache | None,
        policy: GridPolicy,
        outcome: GridOutcome,
        simulate_fn: Callable[[GridCell], SimulationResult],
    ) -> None:
        self.cells = cells
        self.slots = slots
        self.fingerprints = fingerprints
        self.cache = cache
        self.policy = policy
        self.outcome = outcome
        self.simulate_fn = simulate_fn
        self.queue: deque[int] = deque()
        self.attempts: dict[int, int] = {}
        self.respawns_left = policy.pool_respawns
        self.pool_generation = 0
        self.degraded = False

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _commit(self, i: int, result: SimulationResult) -> None:
        """A fresh result exists: fill the slot and persist it *now*."""
        self.slots[i] = result
        self.outcome.executed += 1
        cell = self.cells[i]
        if self.cache is not None and cell.trace_path is None:
            fp = self.fingerprints[i]
            assert fp is not None
            self.cache.put(fp, result)
        failure = self.outcome.failures.get(cell.key)
        if failure is not None and not failure.resolved:
            failure.resolved = True
            if self.degraded:
                failure.resolution = "in-process"
            elif self.pool_generation > 0:
                failure.resolution = "pool-respawn"
            else:
                failure.resolution = "retry"

    def _record_failure(
        self, i: int, exc: BaseException, fate: str, charged: bool
    ) -> CellFailure:
        key = self.cells[i].key
        if charged:
            self.attempts[i] = self.attempts.get(i, 0) + 1
        failure = CellFailure(
            key=key,
            exc_type=type(exc).__name__,
            message=str(exc),
            attempts=self.attempts.get(i, 0),
            worker_fate=fate,
        )
        self.outcome.failures[key] = failure
        return failure

    def _charge_failed_attempt(self, i: int, exc: BaseException, fate: str) -> None:
        """Charge a failed attempt: give up (raise) or sleep the backoff."""
        failure = self._record_failure(i, exc, fate, charged=True)
        if self.attempts[i] > self.policy.cell_retries:
            failure.resolution = "gave-up"
            raise GridExecutionError(failure.key, self.outcome.failures) from exc
        self.outcome.counters.retries += 1
        delay = min(
            self.policy.backoff_max,
            self.policy.backoff_base * 2 ** (self.attempts[i] - 1),
        )
        if delay > 0:
            time.sleep(delay)

    # ------------------------------------------------------------------
    # in-process execution (serial mode, or degraded after pool loss)
    # ------------------------------------------------------------------
    def run_serial(self) -> None:
        while self.queue:
            i = self.queue.popleft()
            if self.degraded:
                self.outcome.counters.degraded_cells += 1
            while True:
                try:
                    result = self.simulate_fn(self.cells[i])
                except Exception as exc:
                    self._charge_failed_attempt(i, exc, "crashed")
                    continue  # retry in place, preserving cell order
                self._commit(i, result)
                break

    # ------------------------------------------------------------------
    # pool execution
    # ------------------------------------------------------------------
    def run_pool(self, n_workers: int) -> None:
        while self.queue and not self.degraded:
            pool = ProcessPoolExecutor(max_workers=n_workers)
            try:
                drained = self._drain_with_pool(pool, n_workers)
            except BaseException:
                _kill_pool(pool)
                raise
            if drained:
                pool.shutdown(wait=True)
                return
            self.pool_generation += 1
        if self.queue:  # pool given up on: finish in-process
            self.run_serial()

    def _drain_with_pool(self, pool: ProcessPoolExecutor, n_workers: int) -> bool:
        """Pump the queue through *pool*.

        Returns ``True`` once every cell committed; ``False`` when the
        pool had to be abandoned (broken or hosting a hung worker) --
        the in-flight cells are already back on the queue and the
        respawn/degrade decision is taken.
        """
        inflight: dict[
            Future[tuple[SimulationResult, tuple[int, int, int, int]]], int
        ] = {}
        deadlines: dict[int, float] = {}
        timeout = self.policy.cell_timeout
        while self.queue or inflight:
            while self.queue and len(inflight) < n_workers:
                i = self.queue.popleft()
                inflight[
                    pool.submit(simulate_cell_with_stats, self.simulate_fn, self.cells[i])
                ] = i
                if timeout is not None:
                    # repro-lint: disable=RPR002 -- executor deadline clock, not simulation state
                    deadlines[i] = time.monotonic() + timeout
            wait_for: float | None = None
            if deadlines:
                # repro-lint: disable=RPR002 -- executor deadline clock, not simulation state
                wait_for = max(0.0, min(deadlines.values()) - time.monotonic())
            done, _ = wait(set(inflight), timeout=wait_for, return_when=FIRST_COMPLETED)
            if not done:
                if self._cull_overdue(pool, inflight, deadlines):
                    return False
                continue
            pool_lost = False
            for fut in done:
                i = inflight.pop(fut)
                deadlines.pop(i, None)
                exc = fut.exception()
                if exc is None:
                    result, stats = fut.result()
                    counters = self.outcome.counters
                    counters.shm_worker_attaches += stats[0]
                    counters.shm_worker_decodes += stats[1]
                    counters.shm_worker_fallbacks += stats[3]
                    self._commit(i, result)
                elif isinstance(exc, BrokenProcessPool):
                    # the pool died under this cell; fault not attributable
                    self._record_failure(i, exc, "lost", charged=False)
                    self.queue.appendleft(i)
                    pool_lost = True
                else:
                    self._charge_failed_attempt(i, exc, "crashed")
                    self.queue.append(i)
            if pool_lost:
                for i in inflight.values():
                    self._record_failure(
                        i,
                        BrokenProcessPool("pool died with cell in flight"),
                        "lost",
                        charged=False,
                    )
                    self.queue.appendleft(i)
                self._abandon_pool(pool)
                if self.respawns_left > 0:
                    self.respawns_left -= 1
                    self.outcome.counters.pool_respawns += 1
                else:
                    self.degraded = True
                return False
        return True

    def _cull_overdue(
        self,
        pool: ProcessPoolExecutor,
        inflight: dict[
            Future[tuple[SimulationResult, tuple[int, int, int, int]]], int
        ],
        deadlines: dict[int, float],
    ) -> bool:
        """Handle a wait() that expired: kill the pool if a cell is hung.

        A hung worker cannot be reclaimed individually (process-pool
        futures are uncancellable once running), so the whole pool is
        culled and rebuilt; innocents go back on the queue uncharged.
        Returns ``True`` when the pool was culled.
        """
        # repro-lint: disable=RPR002 -- executor deadline clock, not simulation state
        now = time.monotonic()
        overdue = {i for i in inflight.values() if deadlines.get(i, now + 1) <= now}
        if not overdue:
            return False  # spurious wakeup: no deadline actually passed
        for i in inflight.values():
            if i in overdue:
                self.outcome.counters.timeouts += 1
                self._charge_failed_attempt(
                    i,
                    TimeoutError(
                        f"cell exceeded cell_timeout={self.policy.cell_timeout}s"
                    ),
                    "hung",
                )
                self.queue.append(i)
            else:
                self.queue.appendleft(i)
        self._abandon_pool(pool)
        self.outcome.counters.pool_respawns += 1
        return True

    def _abandon_pool(self, pool: ProcessPoolExecutor) -> None:
        _kill_pool(pool)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on its (possibly hung) workers."""
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.kill()
        except (OSError, ValueError):  # already dead / never started
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def run_grid(
    cells: Sequence[GridCell],
    workers: int | None = None,
    cache: ResultCache | None = None,
    policy: GridPolicy | None = None,
    counters: GridCounters | None = None,
    simulate_fn: Callable[[GridCell], SimulationResult] | None = None,
    shm: bool | None = None,
    plane: WorkloadPlane | None = None,
) -> GridOutcome:
    """Execute *cells*, in parallel and/or from cache, merging deterministically.

    Parameters
    ----------
    cells:
        The grid; keys must be unique (and so must any trace paths).
    workers:
        See :func:`resolve_workers`.  With one worker everything runs
        in-process (no pool, no pickling), which is also the fallback
        when only one cell needs simulating.
    cache:
        Optional result cache; hits skip simulation entirely and every
        fresh result is stored back **the moment it completes**, so an
        interrupted run resumes from its last finished cell.
    policy:
        Fault-tolerance knobs (:class:`GridPolicy`); ``None`` means the
        conservative defaults (no timeout, no retries, one respawn).
    counters:
        Optional caller-owned :class:`~repro.obs.counters.GridCounters`
        accumulator; when given it becomes ``outcome.counters``, letting
        callers that only see the merged dict (the CLI) still report
        recovery activity.
    simulate_fn:
        Drop-in for :func:`simulate_cell`; must be a picklable callable
        (module-level function or :func:`functools.partial` of one) in
        pool mode.  This is the fault-injection seam -- production code
        never passes it.
    shm:
        Shared-memory workload plane.  ``None`` (default) enables it
        automatically whenever a pool will be used -- inline cells are
        converted to :class:`~repro.experiments.shm.JobsRef` cells so
        each distinct workload is published once and every worker
        decodes it once, instead of every cell pickling the whole job
        list.  ``True``/``False`` force it on/off.  Conversion never
        changes a cell's cache fingerprint (a pipeline-less ref hashes
        to the inline workload hash), results stay byte-identical, and
        the segments are unlinked before this function returns (or, if
        the coordinator is killed first, by the multiprocessing
        resource tracker).
    plane:
        Optional caller-owned :class:`~repro.experiments.shm.WorkloadPlane`
        to publish into instead of a per-call one.  Publishing is
        memoised by workload fingerprint on the plane, so a caller
        running several grids over the same workload (a sharded replay's
        batches, a sweep's shared base trace) pays one segment total
        instead of one per call.  The caller keeps lifecycle ownership:
        ``run_grid`` never closes a passed plane, and
        ``counters.shm_segments`` counts only the segments *this* call
        published into it.

    The result dict iterates in cell input order regardless of worker
    completion order, and each value is bit-for-bit the result a serial
    run would produce (the simulation itself is deterministic and
    workers share nothing).  A cell that exhausts its retry budget
    raises :class:`GridExecutionError` -- with everything already
    finished safely committed to the cache.
    """
    keys = [c.key for c in cells]
    if len(set(keys)) != len(keys):
        dupes = sorted({k for k in keys if keys.count(k) > 1})
        raise ValueError(f"duplicate grid cell keys: {dupes}")
    traced = [c.trace_path for c in cells if c.trace_path is not None]
    if len(set(traced)) != len(traced):
        dupes = sorted({p for p in traced if traced.count(p) > 1})
        raise ValueError(
            f"distinct cells share trace paths (their events would interleave): {dupes}"
        )

    if policy is None:
        policy = GridPolicy()
    if simulate_fn is None:
        simulate_fn = simulate_cell
    slots: list[SimulationResult | None] = [None] * len(cells)
    outcome = GridOutcome(counters=counters if counters is not None else GridCounters())

    # cache probe -- fingerprint each cell, memoising the workload hash
    # by identity (grids typically reuse one jobs list across schemes).
    # The memo value PINS the keyed object: an id() key alone would go
    # stale if the list were collected and its id recycled by a
    # different workload, silently aliasing it to the old fingerprint.
    # Traced cells never consult the cache: the trace is the record of
    # an actual run (see GridCell.trace_path).
    pending: list[int] = []
    fingerprints: list[str | None] = [None] * len(cells)
    jobs_fp_memo: dict[int, tuple[object, str]] = {}

    def _jobs_fp(cell: GridCell) -> str:
        source = cell.workload_source()
        pinned = jobs_fp_memo.get(id(source))
        if pinned is None or pinned[0] is not source:
            pinned = (source, cell.jobs_fingerprint())
            jobs_fp_memo[id(source)] = pinned
        return pinned[1]

    if cache is not None:
        quarantined_before = cache.corrupt
        for i, cell in enumerate(cells):
            if cell.trace_path is not None:
                pending.append(i)
                continue
            fp = cell.fingerprint(_jobs_fp(cell))
            fingerprints[i] = fp
            hit = cache.get(fp)
            if hit is not None:
                slots[i] = hit
                outcome.cache_hits += 1
            else:
                pending.append(i)
        outcome.counters.cache_quarantines += cache.corrupt - quarantined_before
    else:
        pending = list(range(len(cells)))

    n_workers = min(resolve_workers(workers), max(len(pending), 1))
    pooled = n_workers > 1 and len(pending) > 1
    use_shm = shm if shm is not None else pooled

    # shared-memory conversion -- publish each distinct pending inline
    # workload once, swap the cells over to refs.  Fingerprints are
    # unchanged (a pipeline-less ref hashes to the inline jobs hash), so
    # the cache entries probed above stay valid, as do warm caches
    # written by inline or serial runs.  publish() returning None means
    # shared memory is unavailable: that cell simply stays inline.
    owned_plane: WorkloadPlane | None = None
    exec_cells: Sequence[GridCell] = cells
    stats_before = decode_stats_snapshot()
    try:
        if use_shm and pending:
            if plane is None:
                plane = owned_plane = WorkloadPlane()
            segments_before = plane.segments
            converted = list(cells)
            for i in pending:
                cell = converted[i]
                if cell.jobs is None:
                    continue  # already a ref
                ref = plane.publish(cell.jobs, jobs_fp=_jobs_fp(cell))
                if ref is not None:
                    converted[i] = replace(cell, jobs=None, jobs_ref=ref)
            exec_cells = converted
            outcome.counters.shm_segments += plane.segments - segments_before

        if pending:
            execution = _GridExecution(
                exec_cells, slots, fingerprints, cache, policy, outcome, simulate_fn
            )
            execution.queue.extend(pending)
            if pooled:
                execution.run_pool(n_workers)
            else:
                execution.run_serial()
    finally:
        if owned_plane is not None:
            owned_plane.close()
        attaches, decodes, _hits, fallbacks = decode_stats_snapshot()
        outcome.counters.shm_attaches += attaches - stats_before[0]
        outcome.counters.shm_decodes += decodes - stats_before[1]
        outcome.counters.shm_fallbacks += fallbacks - stats_before[3]

    for cell, result in zip(cells, slots, strict=True):
        assert result is not None
        outcome.results[cell.key] = result
        if cell.trace_path is not None:
            outcome.trace_paths[cell.key] = cell.trace_path
    return outcome


def _sanitise_key(key: str) -> str:
    """Filesystem-safe stem for a free-form cell key."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", key).strip("_") or "cell"


def trace_file_for_key(trace_dir: str | Path, key: str) -> str:
    """Per-cell JSONL path under *trace_dir*, with a filesystem-safe name.

    Cell keys are free-form labels (``"SF = 1.5"``, ``"(SS, load 1.2)"``);
    every run of characters outside ``[A-Za-z0-9._-]`` collapses to one
    underscore.  Distinct keys that sanitise identically would collide --
    :func:`trace_files_for_keys` detects that across a whole key set and
    disambiguates with a key-hash suffix; prefer it whenever more than
    one cell is traced into the same directory.
    """
    return str(Path(trace_dir) / f"{_sanitise_key(key)}.jsonl")


def trace_files_for_keys(
    trace_dir: str | Path, keys: Sequence[str]
) -> dict[str, str]:
    """Collision-free per-cell JSONL paths for *keys* under *trace_dir*.

    Keys whose sanitised stems are unique get the plain
    :func:`trace_file_for_key` name; keys that collide (``"SS load=1.2"``
    vs ``"SS load 1.2"`` both sanitise to ``SS_load_1.2``) each get a
    short hash of the *original* key appended, so no two cells can ever
    silently interleave their events in one file.
    """
    stems: dict[str, list[str]] = {}
    for key in keys:
        stems.setdefault(_sanitise_key(key), []).append(key)
    paths: dict[str, str] = {}
    for stem, group in stems.items():
        if len(group) == 1:
            paths[group[0]] = str(Path(trace_dir) / f"{stem}.jsonl")
        else:
            for key in group:
                suffix = hashlib.sha256(key.encode()).hexdigest()[:8]
                paths[key] = str(Path(trace_dir) / f"{stem}-{suffix}.jsonl")
    if len(set(paths.values())) != len(paths):  # pragma: no cover - hash clash
        raise ValueError(f"could not disambiguate trace paths for keys: {sorted(keys)}")
    return paths


def compare_schemes_parallel(
    jobs: list[Job],
    n_procs: int,
    schemes: list[SchemeSpec],
    overhead_model: SuspensionOverheadModel | None = None,
    *,
    workers: int | None = None,
    cache: ResultCache | None = None,
    trace_dir: str | Path | None = None,
    policy: GridPolicy | None = None,
    counters: GridCounters | None = None,
    shm: bool | None = None,
) -> dict[str, SimulationResult]:
    """Parallel, cache-aware, fault-tolerant drop-in for :func:`compare_schemes`.

    Semantics match the serial function exactly: TSS specs flagged
    ``needs_baseline`` receive limits calibrated from one shared NS
    (EASY) run over the same trace.  The baseline runs first (it is a
    dependency, and itself cacheable); the scheme cells then fan out
    over *workers* processes under *policy*'s timeout/retry rules.

    Output is keyed by scheme label in scheme order, byte-identical to
    ``compare_schemes(jobs, n_procs, schemes, overhead_model)``.

    With *trace_dir*, every scheme cell additionally streams its JSONL
    decision trace to a per-label file under that directory (written by
    the worker that simulates the cell); labels whose sanitised names
    would collide are disambiguated with a key-hash suffix -- see
    :func:`trace_files_for_keys`.  Tracing never changes schedules, so
    the returned results are identical either way; traced cells do
    bypass the result cache (a cache hit would leave no trace file).

    *shm* is forwarded to the scheme grid (see :func:`run_grid`): by
    default the shared workload is published to the shared-memory plane
    whenever the schemes fan out over a pool, so the trace is pickled
    zero times instead of once per scheme.  The baseline cell always
    runs in-process and is never converted.
    """
    baseline: SimulationResult | None = None
    if any(s.needs_baseline for s in schemes):
        baseline_cell = GridCell(
            key=BASELINE_KEY,
            jobs=jobs,
            n_procs=n_procs,
            scheduler_config=EasyBackfillScheduler().config(),
            overhead_model=overhead_model,
        )
        baseline = run_grid(
            [baseline_cell],
            workers=None,
            cache=cache,
            policy=policy,
            counters=counters,
        ).results[BASELINE_KEY]

    trace_paths: dict[str, str] = (
        trace_files_for_keys(trace_dir, [s.label for s in schemes])
        if trace_dir is not None
        else {}
    )
    cells: list[GridCell] = []
    for spec in schemes:
        if spec.needs_baseline:
            assert baseline is not None and spec.factory_with_baseline is not None
            scheduler = spec.factory_with_baseline(baseline)
        else:
            scheduler = spec.factory()
        cells.append(
            GridCell(
                key=spec.label,
                jobs=jobs,
                n_procs=n_procs,
                scheduler_config=scheduler.config(),
                overhead_model=overhead_model,
                trace_path=trace_paths.get(spec.label),
            )
        )
    return run_grid(
        cells, workers=workers, cache=cache, policy=policy, counters=counters, shm=shm
    ).results


# ----------------------------------------------------------------------
# workload sharding: one long log -> time-windowed grid cells
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadShard:
    """One time window of a long workload, ready to become a grid cell.

    ``start``/``end`` bound the submit-time window ``[start, end)``
    (``end`` is ``inf`` for an explicit tail shard); ``index`` is the
    shard's position in the stream (0-based, counting only non-empty
    windows).  Jobs keep their absolute submit times -- each shard is
    simulated independently on an empty machine, so the driver simply
    idles until the window's first arrival.
    """

    index: int
    start: float
    end: float
    jobs: tuple[Job, ...]

    @property
    def key(self) -> str:
        """Stable cell key: shard index + window bounds."""
        return f"shard{self.index:05d}@[{self.start:g},{self.end:g})"


def iter_time_shards(
    jobs: Iterable[Job], window: float, min_jobs: int = 1
) -> Iterator[WorkloadShard]:
    """Split a submit-sorted job stream into ``window``-second shards.

    Streaming: holds one shard's jobs at a time, so a months-long log
    costs one window of memory.  Window boundaries are absolute
    multiples of *window* from t=0 (where the SWF loaders rebase the
    trace), so the split depends only on (jobs, window) -- never on
    batching or worker count.  Empty windows produce no shard.

    Raises :class:`ValueError` on an out-of-order submit: sharding an
    unsorted stream would silently scatter jobs across wrong windows.
    ``min_jobs`` merges trailing dribbles: a window with fewer jobs is
    folded into the *next* shard (its ``start`` stretches back), so no
    simulation cell is ever near-empty.
    """
    if window <= 0:
        raise ValueError(f"shard window must be positive, got {window}")
    if min_jobs < 1:
        raise ValueError(f"min_jobs must be >= 1, got {min_jobs}")
    index = 0
    bucket: list[Job] = []
    bucket_start: float | None = None
    window_end: float | None = None
    prev_submit: float | None = None
    for job in jobs:
        if prev_submit is not None and job.submit_time < prev_submit:
            raise ValueError(
                f"job {job.job_id}: submit time {job.submit_time} is before the "
                f"previous job's {prev_submit}; sharding needs a submit-sorted "
                "stream (see docs/WORKLOADS.md)"
            )
        prev_submit = job.submit_time
        if window_end is None:
            k = int(job.submit_time // window)
            bucket_start = k * window
            window_end = (k + 1) * window
        while job.submit_time >= window_end:
            if len(bucket) >= min_jobs:
                assert bucket_start is not None
                yield WorkloadShard(index, bucket_start, window_end, tuple(bucket))
                index += 1
                bucket = []
                bucket_start = window_end
            elif not bucket:
                # empty window: no shard, and the next shard must not
                # stretch back over it -- its window starts here
                bucket_start = window_end
            # else: keep the dribble, stretch this shard into the next window
            window_end += window
        bucket.append(job)
    if bucket:
        assert bucket_start is not None and window_end is not None
        yield WorkloadShard(index, bucket_start, window_end, tuple(bucket))


def shard_cell(
    shard: WorkloadShard,
    n_procs: int,
    scheduler_config: Mapping[str, object],
    overhead_model: SuspensionOverheadModel | None = None,
    migratable: bool = False,
    provenance: Mapping[str, object] | None = None,
    trace_dir: str | Path | None = None,
) -> GridCell:
    """Wrap one shard as a :class:`GridCell` with self-describing provenance.

    The cell's cache key covers the shard's jobs (hash), the machine and
    policy, *and* a provenance record naming the shard window plus any
    caller context (typically the workload-pipeline fingerprint) -- so a
    cached shard is only ever served back to an identical replay.
    """
    prov: dict[str, object] = {
        "shard": {"index": shard.index, "start": shard.start, "end": shard.end},
    }
    if provenance:
        prov.update(provenance)
    return GridCell(
        key=shard.key,
        jobs=list(shard.jobs),
        n_procs=n_procs,
        scheduler_config=scheduler_config,
        overhead_model=overhead_model,
        migratable=migratable,
        trace_path=(
            trace_file_for_key(trace_dir, shard.key) if trace_dir is not None else None
        ),
        provenance=prov,
    )


def outcome_fingerprint(jobs: Sequence[Job]) -> str:
    """SHA-256 over per-job outcome tuples -- the replay-equivalence witness.

    Hashes ``(job_id, first_start_time, finish_time, suspension_count,
    kill_count)`` in job order; two replays are byte-identical iff their
    fingerprints match.  Used by the sharded-vs-eager equivalence test
    and by ``repro-sched workload replay`` output.
    """
    h = hashlib.sha256()
    h.update(b"outcome-v1")
    for j in jobs:
        h.update(
            (
                f"{j.job_id}|{j.first_start_time!r}|{j.finish_time!r}"
                f"|{j.suspension_count}|{j.kill_count}\n"
            ).encode()
        )
    return h.hexdigest()


@dataclass
class ShardedReplayOutcome:
    """What :func:`replay_sharded` hands back.

    ``jobs`` holds every simulated job in shard order (equal to submit
    order), ready for :func:`repro.metrics.aggregate.per_category_stats`;
    ``shards`` counts non-empty shards; ``executed``/``cache_hits``
    aggregate the underlying grid batches.  :meth:`fingerprint` is the
    byte-identity witness used by the equivalence tests.
    """

    jobs: list[Job] = field(default_factory=list)
    shards: int = 0
    executed: int = 0
    cache_hits: int = 0
    trace_paths: dict[str, str] = field(default_factory=dict)
    failures: dict[str, CellFailure] = field(default_factory=dict)
    counters: GridCounters = field(default_factory=GridCounters)

    def fingerprint(self) -> str:
        """Outcome hash over all jobs in shard order (see :func:`outcome_fingerprint`)."""
        return outcome_fingerprint(self.jobs)


def replay_sharded(
    jobs: Iterable[Job],
    n_procs: int,
    scheduler_config: Mapping[str, object],
    *,
    window: float,
    overhead_model: SuspensionOverheadModel | None = None,
    migratable: bool = False,
    min_jobs: int = 1,
    batch_size: int = 32,
    workers: int | None = None,
    cache: ResultCache | None = None,
    policy: GridPolicy | None = None,
    counters: GridCounters | None = None,
    provenance: Mapping[str, object] | None = None,
    trace_dir: str | Path | None = None,
    shm: bool | None = None,
) -> ShardedReplayOutcome:
    """Replay one long (possibly streaming) workload through the grid executor.

    The input stream is cut into ``window``-second shards
    (:func:`iter_time_shards`), each shard becomes a provenance-tagged
    :class:`GridCell`, and batches of ``batch_size`` cells flow through
    :func:`run_grid` -- inheriting the whole crash-safety story: every
    finished shard commits to *cache* the moment it exists, retries and
    timeouts follow *policy*, and an interrupted replay resumes from its
    last finished shard.

    Memory is bounded by one batch of shards (plus their results), never
    by the log: pair this with
    :func:`repro.workload.pipeline.open_workload` to replay an archive
    log end to end without materialising it.

    Determinism: shard boundaries depend only on (jobs, window,
    min_jobs); each shard simulates independently on an empty machine;
    results merge in shard order.  The outcome is therefore identical
    for any ``batch_size``/``workers``/``cache`` combination -- the
    equivalence test in ``tests/test_workload_shards.py`` asserts
    byte-identical per-category metrics and outcome fingerprints against
    an eager in-memory replay of the same shards.

    *provenance* (typically ``{"pipeline": pipe.fingerprint(), "source":
    log_name}``) is folded into every shard cell's cache key.  *shm* is
    forwarded to each batch's :func:`run_grid`, so a retried shard
    re-pickles a ~200-byte ref instead of its whole window of jobs; all
    batches share one replay-owned
    :class:`~repro.experiments.shm.WorkloadPlane`, flushed (segments
    unlinked) after each batch so ``/dev/shm`` holds at most one batch
    of segments at a time -- shards are distinct workloads, so cross-
    batch segment reuse would buy nothing and cost the boundedness.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    outcome = ShardedReplayOutcome(
        counters=counters if counters is not None else GridCounters()
    )
    plane = WorkloadPlane()

    def _flush(batch: list[GridCell]) -> None:
        try:
            grid = run_grid(
                batch,
                workers=workers,
                cache=cache,
                policy=policy,
                counters=outcome.counters,
                shm=shm,
                plane=plane,
            )
        finally:
            # every shard is a distinct workload, so nothing published
            # for this batch is reusable by the next one: unlink now to
            # keep shared memory bounded by one batch, not the log
            plane.close()
        for result in grid.results.values():  # input order == shard order
            outcome.jobs.extend(result.jobs)
        outcome.executed += grid.executed
        outcome.cache_hits += grid.cache_hits
        outcome.trace_paths.update(grid.trace_paths)
        outcome.failures.update(grid.failures)

    batch: list[GridCell] = []
    for shard in iter_time_shards(jobs, window, min_jobs=min_jobs):
        outcome.shards += 1
        batch.append(
            shard_cell(
                shard,
                n_procs,
                scheduler_config,
                overhead_model=overhead_model,
                migratable=migratable,
                provenance=provenance,
                trace_dir=trace_dir,
            )
        )
        if len(batch) >= batch_size:
            _flush(batch)
            batch = []
    if batch:
        _flush(batch)
    return outcome

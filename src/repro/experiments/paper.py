"""One function per paper experiment.

Each function simulates what the corresponding table/figure needs and
returns an :class:`ExperimentOutput`: plain data (dicts keyed by scheme
and category) plus a rendered ASCII report.  The benchmark harness calls
these and prints the report, so regenerating any paper artefact is::

    from repro.experiments import paper
    print(paper.ss_average_metrics("CTC").report)

Experiment ids follow DESIGN.md section 4.  Default sizes (2500 jobs)
keep a full figure regeneration in seconds-to-minutes on a laptop while
leaving category populations large enough for stable averages; pass
``n_jobs`` to scale up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.analysis.report import scheme_comparison_report
from repro.analysis.tables import category_grid_table, series_table
from repro.core.overhead import DiskSwapOverheadModel
from repro.core.theory import two_task_timeline
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import (
    GridCell,
    GridPolicy,
    compare_schemes_parallel,
    run_grid,
)
from repro.experiments.runner import (
    hybrid_schemes,
    simulate,
    standard_schemes,
    tuned_schemes,
)
from repro.experiments.shm import JobsRef, WorkloadPlane
from repro.metrics.aggregate import (
    category_shares,
    overall_stats,
    per_category_stats,
)
from repro.schedulers.easy import EasyBackfillScheduler
from repro.sim.driver import SimulationResult
from repro.workload.archive import get_preset
from repro.workload.categories import classify_four_way
from repro.workload.estimates import EstimateModel, InaccurateEstimates
from repro.workload.job import Job
from repro.workload.load import scale_load
from repro.workload.pipeline import LoadScaleStage, WorkloadPipeline
from repro.workload.synthetic import generate_trace

#: Default trace size for experiment regeneration.
DEFAULT_N_JOBS = 2500
#: Default workload seed (any fixed value; 7 matches EXPERIMENTS.md).
DEFAULT_SEED = 7


@dataclass
class ExperimentOutput:
    """The regenerated artefact for one paper table/figure group."""

    exp_id: str
    title: str
    trace: str
    #: experiment-specific payload; see each function's docstring
    data: dict[str, Any]
    report: str
    #: the raw simulation results, for further slicing
    results: dict[str, SimulationResult] = field(default_factory=dict)


def _trace(
    trace: str, n_jobs: int, seed: int, estimates: EstimateModel | None = None
) -> list[Job]:
    return generate_trace(trace, n_jobs=n_jobs, seed=seed, estimate_model=estimates)


def _mean_grids(
    results: dict[str, SimulationResult],
    metric: str,
    statistic: str = "mean",
    quality: str | None = None,
) -> dict[str, dict[tuple[str, str], float]]:
    out: dict[str, dict[tuple[str, str], float]] = {}
    for label, r in results.items():
        stats = per_category_stats(r.jobs, quality=quality)
        out[label] = {c: getattr(getattr(s, metric), statistic) for c, s in stats.items()}
    return out


# ----------------------------------------------------------------------
# Tables II / III / VII / VIII -- job distribution
# ----------------------------------------------------------------------
def job_distribution(
    trace: str = "CTC", n_jobs: int = DEFAULT_N_JOBS, seed: int = DEFAULT_SEED
) -> ExperimentOutput:
    """Tables II/III (16-way) and VII/VIII (4-way) category shares.

    ``data`` keys: ``"shares16"``, ``"shares4"`` (category -> fraction).
    """
    jobs = _trace(trace, n_jobs, seed)
    shares16 = category_shares(jobs_finished_ok(jobs))
    shares4 = category_shares(jobs_finished_ok(jobs), classify_four_way)
    report = "\n\n".join(
        [
            category_grid_table(
                {c: 100 * v for c, v in shares16.items()},
                title=f"{trace}: % of jobs per 16-way category (Tables II/III)",
                precision=1,
            ),
            category_grid_table(
                {c: 100 * v for c, v in shares4.items()},
                title=f"{trace}: % of jobs per 4-way category (Tables VII/VIII)",
                precision=1,
                four_way=True,
            ),
        ]
    )
    return ExperimentOutput(
        exp_id="tables-2-3-7-8",
        title="Job distribution by category",
        trace=trace,
        data={"shares16": shares16, "shares4": shares4},
        report=report,
    )


def jobs_finished_ok(jobs: list[Job]) -> list[Job]:
    """Classification helpers need finished-or-fresh jobs; shares only
    use static fields, so fresh jobs pass straight through."""
    return jobs


# ----------------------------------------------------------------------
# Tables IV / V -- NS per-category slowdowns
# ----------------------------------------------------------------------
def ns_baseline_slowdowns(
    trace: str = "CTC", n_jobs: int = DEFAULT_N_JOBS, seed: int = DEFAULT_SEED
) -> ExperimentOutput:
    """Tables IV/V: average slowdown per category under NS backfilling.

    ``data`` keys: ``"grid"`` (category -> mean slowdown), ``"overall"``.
    """
    preset = get_preset(trace)
    jobs = _trace(trace, n_jobs, seed)
    result = simulate(jobs, EasyBackfillScheduler(), preset.n_procs)
    stats = per_category_stats(result.jobs)
    grid = {c: s.slowdown.mean for c, s in stats.items()}
    overall = overall_stats(result.jobs).slowdown.mean
    report = "\n".join(
        [
            category_grid_table(
                grid,
                title=(
                    f"{trace}: mean bounded slowdown, NS scheme "
                    f"(Table {'IV' if trace == 'CTC' else 'V'})"
                ),
            ),
            f"overall: {overall:.2f}   utilization: {result.utilization:.3f}",
        ]
    )
    return ExperimentOutput(
        exp_id="tables-4-5",
        title="NS per-category average slowdown",
        trace=trace,
        data={"grid": grid, "overall": overall},
        report=report,
        results={"No Suspension": result},
    )


# ----------------------------------------------------------------------
# Figs 4-6 -- two-task alternation
# ----------------------------------------------------------------------
def two_task_figures(
    suspension_factors: tuple[float, ...] = (1.0, 1.5, 2.0),
) -> ExperimentOutput:
    """Figs 4-6: execution pattern of two equal tasks vs SF.

    ``data``: SF -> {semantics -> (suspension count, segment list)}.
    """
    data: dict[str, Any] = {}
    lines: list[str] = ["Two equal whole-machine tasks, L = 1 (Figs 4-6)"]
    for sf in suspension_factors:
        per_sem = {}
        for sem in ("frozen", "age"):
            # Fig 4's SF=1 pattern alternates at the sweep granularity;
            # L/10 makes that legible in the printed timeline.
            outcome = two_task_timeline(
                sf, semantics=sem, max_suspensions=40, min_interval=0.1
            )
            per_sem[sem] = outcome
            pattern = " ".join(
                f"T{seg.task}[{seg.start:.3f},{seg.end:.3f})"
                for seg in outcome.segments[:12]
            )
            more = " ..." if len(outcome.segments) > 12 else ""
            lines.append(
                f"SF={sf:<4g} {sem:<6s} suspensions={outcome.suspensions:<3d} {pattern}{more}"
            )
        data[f"SF={sf:g}"] = per_sem
    return ExperimentOutput(
        exp_id="figs-4-6",
        title="Two-task alternation vs suspension factor",
        trace="-",
        data=data,
        report="\n".join(lines),
    )


# ----------------------------------------------------------------------
# Figs 7-10 -- SS average slowdown / turnaround
# ----------------------------------------------------------------------
def ss_average_metrics(
    trace: str = "CTC",
    n_jobs: int = DEFAULT_N_JOBS,
    seed: int = DEFAULT_SEED,
    workers: int | None = None,
    cache: ResultCache | None = None,
    policy: GridPolicy | None = None,
    shm: bool | None = None,
) -> ExperimentOutput:
    """Figs 7-10: mean slowdown & turnaround per category, SS vs NS vs IS.

    ``data``: ``"slowdown"``/``"turnaround"`` -> scheme -> category -> mean.
    ``workers``/``cache`` fan the scheme cells out over a process pool
    and/or an on-disk result cache (see :mod:`repro.experiments.parallel`);
    ``shm`` controls the shared-memory workload plane (default: on in
    pool mode).
    """
    preset = get_preset(trace)
    jobs = _trace(trace, n_jobs, seed)
    results = compare_schemes_parallel(
        jobs,
        preset.n_procs,
        standard_schemes(),
        workers=workers,
        cache=cache,
        policy=policy,
        shm=shm,
    )
    data = {
        "slowdown": _mean_grids(results, "slowdown"),
        "turnaround": _mean_grids(results, "turnaround"),
    }
    fig_sd = "7" if trace == "CTC" else "9"
    fig_tat = "8" if trace == "CTC" else "10"
    report = "\n\n".join(
        [
            scheme_comparison_report(
                f"{trace}: average slowdown, SS scheme (Fig {fig_sd})",
                results,
                metric="slowdown",
            ),
            scheme_comparison_report(
                f"{trace}: average turnaround, SS scheme (Fig {fig_tat})",
                results,
                metric="turnaround",
                statistic="mean",
            ),
        ]
    )
    return ExperimentOutput(
        exp_id="figs-7-10",
        title="SS average metrics vs NS and IS",
        trace=trace,
        data=data,
        report=report,
        results=results,
    )


# ----------------------------------------------------------------------
# Hybrid guarantee + preemption schemes (beyond the paper; DESIGN.md §12)
# ----------------------------------------------------------------------
def hybrid_comparison(
    trace: str = "CTC",
    n_jobs: int = DEFAULT_N_JOBS,
    seed: int = DEFAULT_SEED,
    workers: int | None = None,
    cache: ResultCache | None = None,
    policy: GridPolicy | None = None,
    shm: bool | None = None,
) -> ExperimentOutput:
    """Hybrids vs their parents: SS, SS+EASY, TSS+CONS, NS.

    An extension experiment (no paper figure): the policy kernel's
    guarantee + preemption cross products next to the pure schemes they
    compose, answering what the reservation layer costs SS and what the
    sweep buys CONS-style guarantees.  ``data`` mirrors
    :func:`ss_average_metrics`: ``"slowdown"``/``"turnaround"`` ->
    scheme -> category -> mean.
    """
    preset = get_preset(trace)
    jobs = _trace(trace, n_jobs, seed)
    results = compare_schemes_parallel(
        jobs,
        preset.n_procs,
        hybrid_schemes(),
        workers=workers,
        cache=cache,
        policy=policy,
        shm=shm,
    )
    data = {
        "slowdown": _mean_grids(results, "slowdown"),
        "turnaround": _mean_grids(results, "turnaround"),
    }
    report = "\n\n".join(
        [
            scheme_comparison_report(
                f"{trace}: average slowdown, hybrid schemes (policy kernel)",
                results,
                metric="slowdown",
            ),
            scheme_comparison_report(
                f"{trace}: average turnaround, hybrid schemes (policy kernel)",
                results,
                metric="turnaround",
                statistic="mean",
            ),
        ]
    )
    return ExperimentOutput(
        exp_id="hybrids",
        title="Hybrid guarantee+preemption schemes vs their parents",
        trace=trace,
        data=data,
        report=report,
        results=results,
    )


# ----------------------------------------------------------------------
# Figs 11/12/15/16 -- worst case under SS
# ----------------------------------------------------------------------
def ss_worst_case(
    trace: str = "CTC",
    n_jobs: int = DEFAULT_N_JOBS,
    seed: int = DEFAULT_SEED,
    workers: int | None = None,
    cache: ResultCache | None = None,
    policy: GridPolicy | None = None,
    shm: bool | None = None,
) -> ExperimentOutput:
    """Figs 11-12 (CTC) / 15-16 (SDSC): worst-case slowdown & turnaround.

    Schemes: SS(SF=2), NS, IS -- as in the paper's worst-case figures.
    """
    preset = get_preset(trace)
    jobs = _trace(trace, n_jobs, seed)
    results = compare_schemes_parallel(
        jobs,
        preset.n_procs,
        standard_schemes(suspension_factors=(2.0,)),
        workers=workers,
        cache=cache,
        policy=policy,
        shm=shm,
    )
    data = {
        "slowdown": _mean_grids(results, "slowdown", statistic="worst"),
        "turnaround": _mean_grids(results, "turnaround", statistic="worst"),
    }
    figs = "11/12" if trace == "CTC" else "15/16"
    report = "\n\n".join(
        [
            scheme_comparison_report(
                f"{trace}: worst-case slowdown (Figs {figs})",
                results,
                metric="slowdown",
                statistic="worst",
            ),
            scheme_comparison_report(
                f"{trace}: worst-case turnaround (Figs {figs})",
                results,
                metric="turnaround",
                statistic="worst",
            ),
        ]
    )
    return ExperimentOutput(
        exp_id="figs-11-12-15-16",
        title="SS worst-case metrics",
        trace=trace,
        data=data,
        report=report,
        results=results,
    )


# ----------------------------------------------------------------------
# Figs 13/14/17/18 -- TSS worst case
# ----------------------------------------------------------------------
def tss_worst_case(
    trace: str = "CTC",
    n_jobs: int = DEFAULT_N_JOBS,
    seed: int = DEFAULT_SEED,
    workers: int | None = None,
    cache: ResultCache | None = None,
    policy: GridPolicy | None = None,
    shm: bool | None = None,
) -> ExperimentOutput:
    """Figs 13-14 (CTC) / 17-18 (SDSC): TSS vs SS vs NS vs IS worst cases."""
    preset = get_preset(trace)
    jobs = _trace(trace, n_jobs, seed)
    specs = standard_schemes(suspension_factors=(2.0,))
    specs[1:1] = [
        s for s in tuned_schemes(suspension_factors=(2.0,)) if "Tuned" in s.label
    ]
    results = compare_schemes_parallel(
        jobs, preset.n_procs, specs, workers=workers, cache=cache, policy=policy, shm=shm
    )
    data = {
        "slowdown": _mean_grids(results, "slowdown", statistic="worst"),
        "turnaround": _mean_grids(results, "turnaround", statistic="worst"),
    }
    figs = "13/14" if trace == "CTC" else "17/18"
    report = "\n\n".join(
        [
            scheme_comparison_report(
                f"{trace}: worst-case slowdown with TSS (Figs {figs})",
                results,
                metric="slowdown",
                statistic="worst",
            ),
            scheme_comparison_report(
                f"{trace}: worst-case turnaround with TSS (Figs {figs})",
                results,
                metric="turnaround",
                statistic="worst",
            ),
        ]
    )
    return ExperimentOutput(
        exp_id="figs-13-14-17-18",
        title="TSS worst-case metrics",
        trace=trace,
        data=data,
        report=report,
        results=results,
    )


# ----------------------------------------------------------------------
# Figs 19-30 -- inaccurate estimates
# ----------------------------------------------------------------------
def estimate_impact(
    trace: str = "CTC",
    n_jobs: int = DEFAULT_N_JOBS,
    seed: int = DEFAULT_SEED,
    badly_fraction: float = 0.4,
    workers: int | None = None,
    cache: ResultCache | None = None,
    policy: GridPolicy | None = None,
    shm: bool | None = None,
) -> ExperimentOutput:
    """Figs 19-24 (CTC) / 25-30 (SDSC): inaccurate user estimates.

    TSS (tuned) at SF 1.5/2/5 vs NS vs IS; metrics reported for all
    jobs and for the well/badly estimated groups separately.

    ``data``: quality (``"all"``/``"well"``/``"badly"``) -> metric ->
    scheme -> category -> mean.
    """
    preset = get_preset(trace)
    jobs = _trace(
        trace, n_jobs, seed, estimates=InaccurateEstimates(badly_fraction=badly_fraction)
    )
    results = compare_schemes_parallel(
        jobs,
        preset.n_procs,
        tuned_schemes(),
        workers=workers,
        cache=cache,
        policy=policy,
        shm=shm,
    )
    data: dict[str, Any] = {}
    blocks: list[str] = []
    for quality in (None, "well", "badly"):
        qkey = quality or "all"
        data[qkey] = {
            "slowdown": _mean_grids(results, "slowdown", quality=quality),
            "turnaround": _mean_grids(results, "turnaround", quality=quality),
        }
        for metric in ("slowdown", "turnaround"):
            blocks.append(
                scheme_comparison_report(
                    f"{trace}: average {metric}, inaccurate estimates "
                    f"({qkey} jobs; Figs 19-30)",
                    results,
                    metric=metric,
                    quality=quality,
                )
            )
    return ExperimentOutput(
        exp_id="figs-19-30",
        title="Impact of user estimate inaccuracy",
        trace=trace,
        data=data,
        report="\n\n".join(blocks),
        results=results,
    )


# ----------------------------------------------------------------------
# Figs 31-34 -- suspension overhead
# ----------------------------------------------------------------------
def overhead_impact(
    trace: str = "CTC",
    n_jobs: int = DEFAULT_N_JOBS,
    seed: int = DEFAULT_SEED,
    workers: int | None = None,
    cache: ResultCache | None = None,
    policy: GridPolicy | None = None,
    shm: bool | None = None,
) -> ExperimentOutput:
    """Figs 31-34: SS with modelled suspend/restart overhead.

    Schemes: SF=2 tuned with overhead ("SF = 2 OH") and without, NS, IS
    (with overhead) -- ``data`` as in :func:`ss_average_metrics` plus
    overhead presence per scheme.
    """
    preset = get_preset(trace)
    jobs = _trace(trace, n_jobs, seed, estimates=InaccurateEstimates())
    overhead = DiskSwapOverheadModel()
    tuned = [s for s in tuned_schemes(suspension_factors=(2.0,)) if "Tuned" in s.label]
    free = compare_schemes_parallel(
        jobs, preset.n_procs, tuned, workers=workers, cache=cache, policy=policy, shm=shm
    )
    loaded = compare_schemes_parallel(
        jobs,
        preset.n_procs,
        [*tuned, *(s for s in standard_schemes(()) if s.label in ("No Suspension", "IS"))],
        overhead_model=overhead,
        workers=workers,
        cache=cache,
        policy=policy,
        shm=shm,
    )
    results = {
        "SF = 2": free["SF = 2 Tuned"],
        "SF = 2 OH": loaded["SF = 2 Tuned"],
        "No Suspension": loaded["No Suspension"],
        "IS": loaded["IS"],
    }
    data = {
        "slowdown": _mean_grids(results, "slowdown"),
        "turnaround": _mean_grids(results, "turnaround"),
    }
    figs = "31/32" if trace == "CTC" else "33/34"
    report = "\n\n".join(
        [
            scheme_comparison_report(
                f"{trace}: average slowdown with suspension overhead (Figs {figs})",
                results,
                metric="slowdown",
            ),
            scheme_comparison_report(
                f"{trace}: average turnaround with suspension overhead (Figs {figs})",
                results,
                metric="turnaround",
            ),
        ]
    )
    return ExperimentOutput(
        exp_id="figs-31-34",
        title="Suspension overhead impact",
        trace=trace,
        data=data,
        report=report,
        results=results,
    )


# ----------------------------------------------------------------------
# Figs 35-44 -- load variation
# ----------------------------------------------------------------------
def load_variation(
    trace: str = "CTC",
    loads: tuple[float, ...] = (1.0, 1.2, 1.4, 1.6, 1.8, 2.0),
    n_jobs: int = DEFAULT_N_JOBS,
    seed: int = DEFAULT_SEED,
    workers: int | None = None,
    cache: ResultCache | None = None,
    policy: GridPolicy | None = None,
    shm: bool | None = None,
) -> ExperimentOutput:
    """Figs 35-44: behaviour under scaled load.

    For each load factor and scheme (SS SF=2 tuned, NS, IS):

    * overall system utilisation (Figs 35/38) -- measured over the
      arrival window (:attr:`SimulationResult.steady_utilization`),
      which on finite traces is what the paper's months-long logs
      effectively report (see that property's docstring);
    * mean slowdown and turnaround per 4-way category (Figs 36-37/39-40);
    * the utilisation-vs-metric pairing (Figs 41-44) falls out of the
      same data (each load point contributes one (util, metric) pair).

    This is the widest grid in the module -- ``len(loads) x 3`` cells
    plus one NS calibration run per load -- so it fans the whole thing
    through :func:`~repro.experiments.parallel.run_grid` in two phases:
    the per-load NS baselines first (the tuned spec's limits depend on
    them), then every (scheme, load) cell at once.  With a *cache* the
    NS scheme cells hit the just-stored baseline fingerprints for free.

    With ``shm=True`` the base trace is published **once** to the
    shared-memory workload plane and every (scheme, load) cell carries
    a ref whose :class:`~repro.workload.pipeline.LoadScaleStage` config
    is applied worker-side after decode -- one segment for the whole
    ``len(loads) x 3`` grid instead of ``len(loads)`` scaled copies in
    every cell pickle.  :class:`LoadScaleStage` computes exactly what
    :func:`~repro.workload.load.scale_load` computes, so results are
    byte-identical either way (cache keys differ: ref cells hash
    (base, pipeline), not the materialised scaled jobs).

    ``data``: ``"loads"``, ``"utilization"`` (scheme -> [..]),
    ``"slowdown"``/``"turnaround"`` (scheme -> category -> [..]).
    """
    preset = get_preset(trace)
    base = _trace(trace, n_jobs, seed)
    schemes = ["SF = 2 Tuned", "No Suspension", "IS"]
    specs = [s for s in tuned_schemes(suspension_factors=(2.0,)) if s.label in schemes]

    plane: WorkloadPlane | None = None
    refs: dict[float, JobsRef] = {}
    scaled: dict[float, list[Job]] = {}
    if shm:
        plane = WorkloadPlane()
        for load in loads:
            ref = plane.publish(
                base, pipeline=WorkloadPipeline([LoadScaleStage(load)])
            )
            if ref is None:  # shared memory unavailable: inline fallback
                plane.close()
                plane = None
                refs.clear()
                break
            refs[load] = ref
    if not refs:
        scaled = {load: scale_load(base, load) for load in loads}

    def _cell(key: str, load: float, scheduler_config: Mapping[str, object]) -> GridCell:
        if refs:
            return GridCell(
                key=key,
                jobs_ref=refs[load],
                n_procs=preset.n_procs,
                scheduler_config=scheduler_config,
            )
        return GridCell(
            key=key,
            jobs=scaled[load],
            n_procs=preset.n_procs,
            scheduler_config=scheduler_config,
        )

    try:
        # Phase 1: the NS baseline for each load (calibrates the tuned spec).
        baseline_cells = [
            _cell(f"NS@{load:g}", load, EasyBackfillScheduler().config())
            for load in loads
        ]
        baselines = run_grid(
            baseline_cells, workers=workers, cache=cache, policy=policy, shm=shm
        ).results

        # Phase 2: every (scheme, load) cell in one fan-out.
        cells: list[GridCell] = []
        for load in loads:
            for spec in specs:
                if spec.needs_baseline:
                    assert spec.factory_with_baseline is not None
                    scheduler = spec.factory_with_baseline(baselines[f"NS@{load:g}"])
                else:
                    scheduler = spec.factory()
                cells.append(_cell(f"{spec.label}@{load:g}", load, scheduler.config()))
        grid = run_grid(
            cells, workers=workers, cache=cache, policy=policy, shm=shm
        ).results
    finally:
        if plane is not None:
            plane.close()

    utilization: dict[str, list[float]] = {s: [] for s in schemes}
    sd: dict[str, dict[tuple[str, str], list[float]]] = {s: {} for s in schemes}
    tat: dict[str, dict[tuple[str, str], list[float]]] = {s: {} for s in schemes}
    for load in loads:
        for label in schemes:
            r = grid[f"{label}@{load:g}"]
            utilization[label].append(r.steady_utilization)
            stats = per_category_stats(r.jobs, classifier=classify_four_way)
            for cat, s in stats.items():
                sd[label].setdefault(cat, []).append(s.slowdown.mean)
                tat[label].setdefault(cat, []).append(s.turnaround.mean)
    figs = "35-37, 41-42" if trace == "CTC" else "38-40, 43-44"
    blocks = [
        series_table(
            "load",
            list(loads),
            {s: [100 * u for u in utilization[s]] for s in schemes},
            title=f"{trace}: overall utilisation %% vs load (Figs {figs})",
            precision=1,
        )
    ]
    for cat in (("S", "N"), ("S", "W"), ("L", "N"), ("L", "W")):
        blocks.append(
            series_table(
                "load",
                list(loads),
                {s: sd[s].get(cat, [float('nan')] * len(loads)) for s in schemes},
                title=f"{trace}: mean slowdown vs load, category {cat[0]} {cat[1]}",
            )
        )
    return ExperimentOutput(
        exp_id="figs-35-44",
        title="Load variation study",
        trace=trace,
        data={
            "loads": list(loads),
            "utilization": utilization,
            "slowdown": sd,
            "turnaround": tat,
        },
        report="\n\n".join(blocks),
    )

"""Content-addressed cache of per-file analysis results.

The same discipline as :class:`repro.experiments.cache.ResultCache`,
applied to the linter itself: a file's per-file analysis (findings,
suppression accounting, interprocedural summary) is a pure function of

* the **analyser** -- every source file of :mod:`repro.lint`, hashed
  together (:func:`analyzer_fingerprint`), so editing any rule, table
  or the framework silently invalidates every cached entry; and
* the **analysed source** -- relpath plus file bytes.

Keys hash exactly those inputs; values are pickled
:class:`~repro.lint.engine.FileResult` records under a two-level
fan-out (``<dir>/<key[:2]>/<key>.pkl``).  Writes are atomic (tempfile +
``os.replace``); unreadable entries are quarantined to ``*.corrupt``
rather than deleted, exactly like the result cache, so the read path
never mutates a slot destructively.  A warm lint therefore re-analyses
only changed modules -- and because cached and fresh results are the
same deterministic data, warm, cold, serial and parallel runs all
produce byte-identical reports.

Cross-file passes (RPR004 and the call-graph rules RPR007-009) always
re-run over the merged summaries: they are cheap relative to per-file
AST analysis and depend on the *set* of files, which no per-file key
can see.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from functools import lru_cache
from pathlib import Path
from typing import Any


@lru_cache(maxsize=1)
def analyzer_fingerprint() -> str:
    """SHA-256 over every source file of the lint package itself.

    Computed once per process; hashing ~10 small files is microseconds
    next to an AST pass.  Reading file *contents* keeps the key honest
    in a way a version constant never is: there is no "bump the
    version" step to forget.
    """
    h = hashlib.sha256()
    h.update(b"repro-lint-analyzer-v1")
    pkg_dir = Path(__file__).resolve().parent
    for path in sorted(pkg_dir.glob("*.py")):
        h.update(path.name.encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    return h.hexdigest()


def entry_key(relpath: str, source: str) -> str:
    """The content address of one (analyser, file) pair."""
    h = hashlib.sha256()
    h.update(analyzer_fingerprint().encode())
    h.update(b"\0")
    h.update(relpath.encode())
    h.update(b"\0")
    h.update(source.encode())
    return h.hexdigest()


class SummaryCache:
    """Directory-backed map from content keys to pickled file results.

    Counters (``hits`` / ``misses`` / ``stores`` / ``corrupt``) are
    per-instance diagnostics; tests and the acceptance criteria use
    them to assert a warm second run re-analyses only changed modules.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, relpath: str, source: str) -> Any | None:
        """The cached analysis for this exact source, or ``None``.

        ``Exception``-wide on purpose, like ``ResultCache.get``:
        unpickling garbage bytes can raise nearly anything, and none of
        it may escape a cache probe -- the entry is quarantined and the
        file simply re-analysed.
        """
        path = self._path(entry_key(relpath, source))
        try:
            with path.open("rb") as fh:
                result = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _quarantine(self, path: Path) -> None:
        """Move an unreadable entry aside as ``<name>.pkl.corrupt``."""
        try:
            path.rename(path.with_name(path.name + ".corrupt"))
        except OSError:  # raced away, or the path is not renameable
            return
        self.corrupt += 1

    def put(self, relpath: str, source: str, result: Any) -> None:
        """Store one analysis result atomically."""
        path = self._path(entry_key(relpath, source))
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SummaryCache {self.root} hits={self.hits} "
            f"misses={self.misses} stores={self.stores} "
            f"corrupt={self.corrupt}>"
        )

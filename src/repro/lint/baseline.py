"""The accepted-findings baseline (``tools/lint_baseline.json``).

A baseline entry grandfathers one *reviewed* finding: the fingerprint
pins its content identity (rule + path + scope + source line, see
:meth:`repro.lint.findings.Finding.fingerprint`) and the mandatory
``justification`` records why it is acceptable.  CI then fails only on
*new* findings -- the ratchet that lets a rule ship before the last
debatable site is resolved, without ever letting the debt grow.

Entries whose fingerprint no longer matches anything are *stale*:
reported informationally (the code they excused is gone or changed) and
dropped by ``--update-baseline``.  An entry without a justification is
an RPR000 finding in its own right -- the baseline cannot be used to
silence findings silently any more than inline suppressions can.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.lint.findings import FRAMEWORK_RULE, Finding

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """fingerprint -> entry mapping with (de)serialisation."""

    entries: dict[str, dict[str, Any]] = field(default_factory=dict)
    path: str | None = None

    # ------------------------------------------------------------------
    # io
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        p = Path(path)
        if not p.exists():
            return cls(entries={}, path=str(p))
        raw = json.loads(p.read_text(encoding="utf-8"))
        version = raw.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"{p}: unsupported baseline version {version!r} "
                f"(expected {BASELINE_VERSION})"
            )
        entries: dict[str, dict[str, Any]] = {}
        for entry in raw.get("entries", ()):
            fp = str(entry.get("fingerprint", ""))
            if fp:
                entries[fp] = dict(entry)
        return cls(entries=entries, path=str(p))

    def save(self, path: str | Path | None = None) -> None:
        target = Path(path if path is not None else self.path or "lint_baseline.json")
        doc = {
            "version": BASELINE_VERSION,
            "entries": [
                self.entries[fp]
                for fp in sorted(
                    self.entries,
                    key=lambda k: (
                        str(self.entries[k].get("path", "")),
                        str(self.entries[k].get("rule", "")),
                        str(self.entries[k].get("symbol", "")),
                        k,
                    ),
                )
            ],
        }
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", "utf-8")

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def unjustified(self) -> list[Finding]:
        """RPR000s for entries missing their mandatory justification."""
        out: list[Finding] = []
        for fp in sorted(self.entries):
            entry = self.entries[fp]
            if not str(entry.get("justification", "")).strip():
                out.append(
                    Finding(
                        rule=FRAMEWORK_RULE,
                        path=str(entry.get("path", self.path or "<baseline>")),
                        line=0,
                        col=0,
                        message=(
                            f"baseline entry {fp} ({entry.get('rule', '?')}) "
                            "has no justification"
                        ),
                        snippet=str(entry.get("snippet", "")),
                    )
                )
        return out

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[str]]:
        """Partition into (active, baselined) and list stale fingerprints."""
        active: list[Finding] = []
        baselined: list[Finding] = []
        seen: set[str] = set()
        for f in findings:
            fp = f.fingerprint()
            if fp in self.entries:
                baselined.append(f)
                seen.add(fp)
            else:
                active.append(f)
        stale = sorted(set(self.entries) - seen)
        return active, baselined, stale

    @staticmethod
    def entry_for(finding: Finding, justification: str) -> dict[str, Any]:
        """The serialised form of one accepted finding."""
        return {
            "fingerprint": finding.fingerprint(),
            "rule": finding.rule,
            "path": finding.path,
            "symbol": finding.symbol,
            "snippet": finding.snippet,
            "line": finding.line,  # informational; not part of the identity
            "justification": justification,
        }

    def absorb(self, findings: list[Finding], *, prune_stale: bool = True) -> int:
        """``--update-baseline``: add new findings, drop stale entries.

        New entries get an empty justification the author must fill in
        before the baseline passes (``unjustified`` reports them) --
        updating the baseline is deliberately not the end of the
        review, just its paperwork.  Returns the number added.
        """
        fresh: dict[str, dict[str, Any]] = {}
        added = 0
        for f in findings:
            fp = f.fingerprint()
            if fp in self.entries:
                fresh[fp] = self.entries[fp]
            elif fp not in fresh:
                fresh[fp] = self.entry_for(f, justification="")
                added += 1
        if prune_stale:
            self.entries = fresh
        else:
            self.entries.update(fresh)
        return added

"""``# repro-lint: disable=RPRxxx -- justification`` directives.

Two placements are honoured:

* **inline** -- the directive shares the line with the flagged code and
  suppresses matching findings on that line;
* **standalone** -- a comment line of its own suppresses matching
  findings on the *next* source line (the conventional "explain, then
  do" shape).

The justification after ``--`` is mandatory.  A directive without one
does not suppress anything; it is itself reported as an RPR000 finding,
so "silence the linter silently" is not an expressible state.  Multiple
rules may be listed comma-separated; ``disable=all`` matches every
rule (reserved for generated files, still justified).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

from repro.lint.findings import FRAMEWORK_RULE, Finding

DIRECTIVE_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$"
)

RULE_ID_RE = re.compile(r"^(RPR\d{3}|all)$")


@dataclass(frozen=True)
class Directive:
    """One parsed suppression comment."""

    line: int
    #: line whose findings it suppresses (itself, or the next line)
    target_line: int
    rules: frozenset[str]
    justification: str


class Suppressions:
    """All directives of one file, plus the RPR000s for malformed ones."""

    def __init__(self, directives: list[Directive], errors: list[Finding]) -> None:
        self._by_line: dict[int, list[Directive]] = {}
        for d in directives:
            self._by_line.setdefault(d.target_line, []).append(d)
        self.errors = errors
        self.directives = directives

    def covers(self, rule: str, line: int) -> bool:
        """Whether a (justified) directive suppresses *rule* on *line*."""
        return self.covering(rule, line) is not None

    def covering(self, rule: str, line: int) -> Directive | None:
        """The directive suppressing *rule* on *line*, if any.

        Callers that need to *account* for a suppression (the stale-
        directive audit marks directives used when they fire) take the
        directive itself; plain yes/no callers use :meth:`covers`.
        """
        for d in self._by_line.get(line, ()):
            if "all" in d.rules or rule in d.rules:
                return d
        return None


def parse_suppressions(source: str, path: str) -> Suppressions:
    """Extract directives from *source* via the token stream.

    Tokenising (rather than regexing raw lines) keeps directives inside
    string literals from being honoured and gets continuation lines
    right for free.  On tokenisation failure the caller's parse of the
    same source will already have produced an RPR000, so this returns
    empty quietly.
    """
    directives: list[Directive] = []
    errors: list[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return Suppressions([], [])

    #: physical lines that carry non-comment code (to tell inline from
    #: standalone placements)
    code_lines: set[int] = set()
    for tok in tokens:
        if tok.type in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            continue
        for ln in range(tok.start[0], tok.end[0] + 1):
            code_lines.add(ln)

    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = DIRECTIVE_RE.search(tok.string)
        if m is None:
            continue
        line = tok.start[0]
        raw_rules = [r.strip() for r in m.group("rules").split(",") if r.strip()]
        why = (m.group("why") or "").strip()
        bad = [r for r in raw_rules if not RULE_ID_RE.match(r)]
        if bad or not raw_rules:
            errors.append(
                Finding(
                    rule=FRAMEWORK_RULE,
                    path=path,
                    line=line,
                    col=tok.start[1],
                    message=(
                        "malformed repro-lint directive: unknown rule id(s) "
                        + ", ".join(sorted(bad))
                        if bad
                        else "malformed repro-lint directive: no rules listed"
                    ),
                    snippet=tok.string.strip(),
                )
            )
            continue
        if not why:
            errors.append(
                Finding(
                    rule=FRAMEWORK_RULE,
                    path=path,
                    line=line,
                    col=tok.start[1],
                    message=(
                        "suppression lacks a justification "
                        "(write `# repro-lint: disable="
                        + ",".join(raw_rules)
                        + " -- <why this is safe>`)"
                    ),
                    snippet=tok.string.strip(),
                )
            )
            continue
        inline = line in code_lines
        directives.append(
            Directive(
                line=line,
                target_line=line if inline else line + 1,
                rules=frozenset(raw_rules),
                justification=why,
            )
        )
    return Suppressions(directives, errors)

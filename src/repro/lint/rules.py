"""Per-file checkers RPR001-RPR003, RPR005, RPR006.

Each rule targets one bug *class* this repository has either shipped or
structurally cannot afford (see ``docs/STATIC_ANALYSIS.md`` for the
catalogue with worked examples; RPR004, the cross-file conformance
pass, lives in :mod:`repro.lint.project`).
"""

from __future__ import annotations

import ast
from typing import ClassVar

from repro.lint.checker import Checker

# ----------------------------------------------------------------------
# RPR001 -- unordered iteration in decision paths
# ----------------------------------------------------------------------

#: consumers for which element order provably cannot leak into results.
#: ``mask_from_ids`` (repro.cluster.bitset) folds ids into a bitmask by
#: OR -- commutative, so hash order cannot reach the result.
_ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "sum", "len", "min", "max", "any", "all", "set", "frozenset",
     "mask_from_ids"}
)

#: wrappers that materialise iteration order into an ordered value
_ORDER_MATERIALISING_CALLS = frozenset({"list", "tuple", "enumerate", "reversed"})

#: transparent wrappers to skip when walking to the real consumer
_TRANSPARENT = (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp, ast.Starred)


class UnorderedIterationChecker(Checker):
    """RPR001: iteration order of a hash-ordered collection can steer a
    scheduling decision.

    The exact bug shape of the PR-2 ``_try_resume`` fix: walking a
    ``set``/``frozenset`` (or a dict view whose insertion order derives
    from one) inside ``cluster/``, ``core/``, ``schedulers/`` or
    ``sim/`` without an enclosing ``sorted(...)``.  Order-insensitive
    folds (``sum``, ``len``, ``any``, ``min``/``max``, rebuilding a
    ``set``, ``mask_from_ids``'s commutative OR) pass; a plain ``for``,
    a list/dict comprehension, ``list()`` / ``tuple()`` /
    ``enumerate()`` do not.

    The bitmask kernel's mask-iteration helpers
    (:func:`repro.cluster.bitset.iter_bits` / ``mask_to_ids``) are the
    sanctioned replacement inside the patrolled paths: they walk an
    *integer* lowest-bit-first, so their order is ascending by
    construction and never touches hash order.  The rule does not flag
    them because they are not set-typed -- iterate masks, not sets.
    """

    rule: ClassVar[str] = "RPR001"
    title: ClassVar[str] = "unordered iteration in a scheduling-decision path"
    decision_paths_only: ClassVar[bool] = True

    # -- classification -------------------------------------------------
    def _unordered_reason(self, node: ast.expr) -> str | None:
        ctx = self.ctx
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Name) and fn.id in ("set", "frozenset"):
                return f"{fn.id}(...)"
            if isinstance(fn, ast.Attribute):
                if fn.attr in ("keys", "values", "items") and not node.args:
                    return (
                        f".{fn.attr}() (dict view -- order is construction "
                        "order, which hash-ordered inputs can scramble)"
                    )
                if fn.attr in (
                    "union",
                    "intersection",
                    "difference",
                    "symmetric_difference",
                ) and ctx.is_set_expr(fn.value):
                    return f"a set .{fn.attr}(...)"
                if fn.attr in ctx.set_returning or fn.attr.endswith("_set"):
                    return f"{fn.attr}() (returns a set)"
            if isinstance(fn, ast.Name) and fn.id in ctx.set_returning:
                return f"{fn.id}() (returns a set)"
            return None
        if isinstance(node, ast.Attribute) and ctx.is_set_expr(node):
            return f"self.{node.attr} (set-typed attribute)"
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            if ctx.is_set_expr(node.left) or ctx.is_set_expr(node.right):
                return "a set-algebra expression"
            return None
        if isinstance(node, ast.Name) and self._local_set_name(node):
            return f"{node.id} (set-typed local)"
        return None

    def _local_set_name(self, node: ast.Name) -> bool:
        """Name assigned a set expression / annotation in its function."""
        func = None
        for parent in self.ctx.parent_chain(node):
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                func = parent
                break
        if func is None:
            return False
        for sub in ast.walk(func):
            if isinstance(sub, ast.AnnAssign) and isinstance(sub.target, ast.Name):
                if sub.target.id == node.id and self.ctx._is_set_annotation(
                    sub.annotation
                ):
                    return True
            elif isinstance(sub, ast.Assign) and sub.value is not node:
                for target in sub.targets:
                    if isinstance(target, ast.Name) and target.id == node.id:
                        if self.ctx.is_set_expr(sub.value):
                            return True
            elif isinstance(sub, ast.arg) and sub.arg == node.id:
                if sub.annotation is not None and self.ctx._is_set_annotation(
                    sub.annotation
                ):
                    return True
        return False

    # -- consumer analysis ----------------------------------------------
    def _sanctioned(self, node: ast.AST) -> bool:
        """Whether the nearest real consumer is order-insensitive."""
        cur = node
        for parent in self.ctx.parent_chain(node):
            if isinstance(parent, _TRANSPARENT):
                cur = parent
                continue
            if isinstance(parent, ast.Call):
                fn = parent.func
                if cur in parent.args or any(
                    kw.value is cur for kw in parent.keywords
                ):
                    if isinstance(fn, ast.Name) and fn.id in _ORDER_INSENSITIVE_CALLS:
                        return True
                cur = parent
                continue
            if isinstance(parent, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in parent.ops
            ):
                return True  # membership test: order-free
            return False
        return False

    def _check_iter_source(self, consumer: ast.AST, source: ast.expr) -> None:
        reason = self._unordered_reason(source)
        if reason is None:
            return
        if self._sanctioned(consumer):
            return
        self.flag(
            source,
            f"iterating {reason} in a scheduling-decision path; wrap in "
            "sorted(...) with a total key (hash order is not part of the "
            "schedule)",
        )

    # -- visitors --------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._check_iter_source(node, node.iter)
        self.generic_visit(node)

    def _visit_comp(
        self, node: ast.GeneratorExp | ast.ListComp | ast.DictComp
    ) -> None:
        for gen in node.generators:
            self._check_iter_source(node, gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_DictComp = _visit_comp

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        # a genexp is as (in)nocent as whatever consumes it
        if not self._sanctioned(node):
            for gen in node.generators:
                self._check_iter_source(node, gen.iter)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # output is a set: iteration order cannot be observed through it
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        fn = node.func
        if (
            isinstance(fn, ast.Name)
            and fn.id in _ORDER_MATERIALISING_CALLS
            and node.args
        ):
            reason = self._unordered_reason(node.args[0])
            if reason is not None and not self._sanctioned(node):
                self.flag(
                    node,
                    f"{fn.id}() materialises the hash order of {reason}; "
                    "use sorted(...) with a total key instead",
                )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# RPR002 -- nondeterminism sources
# ----------------------------------------------------------------------

_WALLCLOCK = {
    ("time", "time"): "time.time()",
    ("time", "time_ns"): "time.time_ns()",
    ("time", "monotonic"): "time.monotonic()",
    ("time", "perf_counter"): "time.perf_counter()",
    ("os", "urandom"): "os.urandom()",
    ("uuid", "uuid1"): "uuid.uuid1()",
    ("uuid", "uuid4"): "uuid.uuid4()",
    ("datetime", "now"): "datetime.now()",
    ("datetime", "utcnow"): "datetime.utcnow()",
    ("datetime", "today"): "datetime.today()",
    ("date", "today"): "date.today()",
}

#: numpy.random names that are fine (seedable generator construction)
_NUMPY_RANDOM_OK = frozenset({"Generator", "SeedSequence", "BitGenerator", "PCG64"})


class NondeterminismSourceChecker(Checker):
    """RPR002: wall clocks and process-global / unseeded randomness.

    Simulation time comes from the event engine and randomness from an
    explicitly seeded ``numpy.random.Generator`` injected by the
    caller; anything else (``time.time()``, ``datetime.now()``,
    ``os.urandom``, the global ``random`` module, legacy
    ``numpy.random.*`` functions, unseeded ``default_rng()``) makes a
    run irreproducible and its cache fingerprint a lie.
    """

    rule: ClassVar[str] = "RPR002"
    title: ClassVar[str] = "nondeterminism source"

    def visit_Call(self, node: ast.Call) -> None:
        fn = node.func
        if isinstance(fn, ast.Attribute):
            self._check_attribute_call(node, fn)
        elif isinstance(fn, ast.Name):
            origin = self.ctx.from_imports.get(fn.id)
            if origin is not None:
                mod, _, attr = origin.rpartition(".")
                if (mod.split(".")[-1], attr) in _WALLCLOCK or mod == "random":
                    self.flag(
                        node,
                        f"call to {origin} -- simulation time/randomness must "
                        "come from the engine or an injected seeded Generator",
                    )
                elif origin == "numpy.random.default_rng" and not (
                    node.args or node.keywords
                ):
                    self.flag(node, "default_rng() without a seed is irreproducible")
        self.generic_visit(node)

    def _check_attribute_call(self, node: ast.Call, fn: ast.Attribute) -> None:
        base = fn.value
        # random.<anything>() on the random *module* (process-global RNG);
        # constructing a *seeded* instance -- random.Random(seed) -- is the
        # sanctioned pattern and passes, an argless Random() does not
        if isinstance(base, ast.Name) and self.ctx.module_aliases.get(base.id) == "random":
            if fn.attr in ("Random", "SystemRandom"):
                if fn.attr == "SystemRandom" or not (node.args or node.keywords):
                    self.flag(
                        node,
                        f"random.{fn.attr}() without an explicit seed is "
                        "irreproducible; pass a seed derived from the run config",
                    )
                return
            self.flag(
                node,
                f"random.{fn.attr}() uses the process-global RNG; inject a "
                "seeded numpy Generator instead",
            )
            return
        # wall clocks: time.time(), datetime.now(), os.urandom(), ...
        if isinstance(base, ast.Name):
            mod = self.ctx.module_aliases.get(base.id, None)
            imported = self.ctx.from_imports.get(base.id, "")
            leaf = (mod or imported.rsplit(".", 1)[-1] or base.id).split(".")[-1]
            if mod is not None or imported:
                if (leaf, fn.attr) in _WALLCLOCK:
                    self.flag(
                        node,
                        f"{_WALLCLOCK[(leaf, fn.attr)]} is wall-clock/entropy "
                        "state; simulation time comes from the engine",
                    )
                    return
        # numpy.random.<fn>() legacy global functions / unseeded default_rng
        if self.ctx.resolves_to_module(base, "numpy.random"):
            if fn.attr == "default_rng":
                if not (node.args or node.keywords):
                    self.flag(node, "default_rng() without a seed is irreproducible")
            elif fn.attr not in _NUMPY_RANDOM_OK:
                self.flag(
                    node,
                    f"numpy.random.{fn.attr}() uses the legacy global RNG; "
                    "use an injected seeded Generator",
                )


# ----------------------------------------------------------------------
# RPR003 -- exact float equality on time-like expressions
# ----------------------------------------------------------------------

_TIME_NAMES = frozenset(
    {
        "t",
        "t0",
        "t1",
        "now",
        "time",
        "makespan",
        "anchor",
        "deadline",
        "xfactor",
        "priority",
        "estimate",
        "turnaround",
        "slowdown",
        "expected_end",
        "last_arrival",
        "overhead",
    }
)

_TIME_SUFFIXES = (
    "_time",
    "_end",
    "_until",
    "_at",
    "_seconds",
    "_mark",
    "_priority",
    "_factor",
    "_interval",
    "_estimate",
    "_overhead",
    "_xfactor",
)


def _terminal_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _terminal_name(node.func)
    if isinstance(node, ast.Subscript):
        sl = node.slice
        if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
            return sl.value
    return None


def _is_timelike(node: ast.expr) -> bool:
    name = _terminal_name(node)
    if name is None:
        if isinstance(node, ast.BinOp):
            return _is_timelike(node.left) or _is_timelike(node.right)
        return False
    return name in _TIME_NAMES or name.endswith(_TIME_SUFFIXES)


class FloatTimeEqualityChecker(Checker):
    """RPR003: ``==`` / ``!=`` between event-time or xfactor expressions.

    Event times and xfactors are accumulated floats; after a few
    suspend/resume cycles two mathematically equal times differ by an
    ulp and an exact comparison silently flips a decision.  Compare
    with an explicit epsilon, integer ticks, or an ordering operator.
    ``is None`` checks and comparisons against non-time values pass.
    """

    rule: ClassVar[str] = "RPR003"
    title: ClassVar[str] = "exact float equality between time-like values"

    def visit_Compare(self, node: ast.Compare) -> None:
        sides = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = sides[i], sides[i + 1]
            if self._none_or_sentinel(left) or self._none_or_sentinel(right):
                continue
            if _is_timelike(left) or _is_timelike(right):
                self.flag(
                    node,
                    "exact ==/!= between time-like float expressions; use an "
                    "epsilon, integer ticks, or an ordering comparison",
                )
                break
        self.generic_visit(node)

    @staticmethod
    def _none_or_sentinel(node: ast.expr) -> bool:
        # `x == None` is its own (ruff E711) problem; string/bool
        # constants mean the name heuristic picked up a non-time value
        return isinstance(node, ast.Constant) and not isinstance(
            node.value, (int, float)
        )


# ----------------------------------------------------------------------
# RPR005 -- trace/cache purity
# ----------------------------------------------------------------------

_JSON_SAFE_CALLS = frozenset(
    {"int", "float", "str", "bool", "list", "dict", "sorted", "tuple", "len", "round",
     "min", "max", "abs"}
)


class CachePurityChecker(Checker):
    """RPR005: cached/parallel cells must be JSON-stable and picklable.

    Three concrete shapes:

    * a ``config()`` override returning values the cache fingerprint
      cannot stably serialise (lambdas, sets -- iteration order leaks
      into the JSON -- or reaches into ``self.driver`` process state);
      the returned dict literal must also carry the ``"scheme"`` key
      the registry rebuilds from;
    * submitting a ``lambda`` or nested function to a process pool
      (unpicklable, and closing over process-local state even when a
      fork makes it *appear* to work);
    * a cache **read** path (``get`` / ``__contains__`` / ``__len__`` of
      a ``*Cache`` class, including the ``self._helper()`` methods they
      call) mutating the filesystem -- a probe that deletes or rewrites
      entries turns concurrent readers into writers and destroys the
      evidence of corruption.  The one sanctioned mutation is the
      quarantine rename: ``rename``/``replace`` whose call carries a
      ``".corrupt"`` string constant moves an unreadable entry aside
      instead of destroying it.
    """

    rule: ClassVar[str] = "RPR005"
    title: ClassVar[str] = "trace/cache purity violation"

    #: cache methods that must behave as reads
    _READ_METHODS: ClassVar[frozenset[str]] = frozenset(
        {"get", "__contains__", "__len__"}
    )
    #: attribute calls that mutate the filesystem (Path / os / shutil)
    _FS_MUTATORS: ClassVar[frozenset[str]] = frozenset(
        {"unlink", "remove", "rmtree", "rename", "replace", "rmdir",
         "write_bytes", "write_text", "touch"}
    )
    #: mutators the quarantine sanction can bless
    _QUARANTINE_OK: ClassVar[frozenset[str]] = frozenset({"rename", "replace"})

    # -- cache read-path mutations ---------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if node.name.endswith("Cache"):
            self._check_cache_read_paths(node)
        self.generic_visit(node)

    def _check_cache_read_paths(self, cls: ast.ClassDef) -> None:
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        seen: set[str] = set()
        work = [name for name in self._READ_METHODS if name in methods]
        while work:
            name = work.pop()
            if name in seen:
                continue
            seen.add(name)
            for sub in ast.walk(methods[name]):
                if not isinstance(sub, ast.Call):
                    continue
                fn = sub.func
                if not isinstance(fn, ast.Attribute):
                    continue
                if (
                    isinstance(fn.value, ast.Name)
                    and fn.value.id == "self"
                    and fn.attr in methods
                ):
                    work.append(fn.attr)  # follow read-path helpers
                    continue
                if fn.attr in self._FS_MUTATORS:
                    if fn.attr in self._QUARANTINE_OK and self._is_quarantine(sub):
                        continue
                    self.flag(
                        sub,
                        f".{fn.attr}() on the cache read path (via "
                        f"{cls.name}.{name}); reads must not mutate the store "
                        '-- quarantine unreadable entries (rename to ".corrupt") '
                        "instead of deleting or rewriting them",
                    )

    @staticmethod
    def _is_quarantine(call: ast.Call) -> bool:
        """A rename/replace whose call subtree names ``.corrupt``."""
        for sub in ast.walk(call):
            if (
                isinstance(sub, ast.Constant)
                and isinstance(sub.value, str)
                and ".corrupt" in sub.value
            ):
                return True
        return False

    # -- config() returns ------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node.name == "config" and self._in_scheduler_class(node):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Return) and sub.value is not None:
                    self._check_config_return(sub.value)
        self.generic_visit(node)

    def _in_scheduler_class(self, node: ast.FunctionDef) -> bool:
        for parent in self.ctx.parent_chain(node):
            if isinstance(parent, ast.ClassDef):
                if parent.name.endswith("Scheduler"):
                    return True
                return any(
                    isinstance(stmt, ast.Assign)
                    and any(
                        isinstance(t, ast.Name) and t.id == "scheme_id"
                        for t in stmt.targets
                    )
                    for stmt in parent.body
                )
        return False

    def _check_config_return(self, value: ast.expr) -> None:
        if isinstance(value, ast.Dict):
            keys = [
                k.value
                for k in value.keys
                if isinstance(k, ast.Constant) and isinstance(k.value, str)
            ]
            has_splat = any(k is None for k in value.keys)
            if "scheme" not in keys and not has_splat:
                self.flag(
                    value,
                    'config() dict lacks the "scheme" key the registry and '
                    "cache fingerprint key on",
                )
            for v in value.values:
                self._check_config_value(v)
        else:
            for sub in ast.walk(value):
                if isinstance(sub, ast.expr):
                    self._check_config_value(sub, nested=True)

    def _check_config_value(self, v: ast.expr, nested: bool = False) -> None:
        targets = ast.walk(v) if not nested else [v]
        for sub in targets:
            if isinstance(sub, ast.Lambda):
                self.flag(sub, "config() value contains a lambda (not JSON-stable)")
            elif isinstance(sub, (ast.Set, ast.SetComp)):
                self.flag(
                    sub,
                    "config() value contains a set (hash order leaks into the "
                    "cache fingerprint); use sorted(...)",
                )
            elif isinstance(sub, ast.Call):
                fn = sub.func
                if isinstance(fn, ast.Name) and fn.id in ("set", "frozenset"):
                    self.flag(
                        sub,
                        "config() value builds a set (not JSON-stable); use "
                        "sorted(...)",
                    )
            elif isinstance(sub, ast.Attribute):
                chain = self._attr_chain(sub)
                if "driver" in chain[1:]:
                    self.flag(
                        sub,
                        "config() reads self.driver.* -- process-local "
                        "simulation state must not reach the cache fingerprint",
                    )

    @staticmethod
    def _attr_chain(node: ast.expr) -> list[str]:
        parts: list[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if isinstance(cur, ast.Name):
            parts.append(cur.id)
        return list(reversed(parts))

    # -- pool submissions -------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        fn = node.func
        if isinstance(fn, ast.Attribute) and fn.attr in (
            "submit",
            "apply_async",
            "map",
            "map_async",
            "imap",
            "imap_unordered",
        ):
            if node.args:
                task = node.args[0]
                if isinstance(task, ast.Lambda):
                    self.flag(
                        task,
                        f"lambda passed to .{fn.attr}() -- unpicklable and "
                        "closes over process-local state",
                    )
                elif isinstance(task, ast.Name) and self._is_nested_function(
                    task.id, node
                ):
                    self.flag(
                        task,
                        f"nested function {task.id!r} passed to .{fn.attr}() "
                        "-- worker processes cannot unpickle it; hoist it to "
                        "module level",
                    )
        self.generic_visit(node)

    def _is_nested_function(self, name: str, site: ast.AST) -> bool:
        enclosing = [
            p
            for p in self.ctx.parent_chain(site)
            if isinstance(p, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for func in enclosing:
            for stmt in ast.walk(func):
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt is not func
                    and stmt.name == name
                ):
                    return True
        return False


# ----------------------------------------------------------------------
# RPR006 -- mutable defaults / shared class-level state
# ----------------------------------------------------------------------

_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict", "Counter", "deque"}
)


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        fn = node.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else None
        )
        return name in _MUTABLE_CALLS
    return False


class MutableSharedStateChecker(Checker):
    """RPR006: mutable defaults and class-level mutable containers.

    A mutable default argument is shared across *calls*; a class-level
    mutable attribute is shared across *instances* -- for schedulers,
    that is state bleeding between grid cells (the exact hazard the
    registry's rebuild-per-worker contract exists to prevent).
    Dataclass ``field(default_factory=...)`` and ``__slots__`` are, of
    course, fine.
    """

    rule: ClassVar[str] = "RPR006"
    title: ClassVar[str] = "mutable default / shared class-level state"

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        args = node.args
        for default in (
            *args.defaults,
            *(d for d in args.kw_defaults if d is not None),
        ):
            if _is_mutable_literal(default):
                self.flag(
                    default,
                    f"mutable default argument in {node.name}() is shared "
                    "across calls; default to None and create inside",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for stmt in node.body:
            value: ast.expr | None = None
            name: str | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                if isinstance(stmt.targets[0], ast.Name):
                    name = stmt.targets[0].id
                    value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                value = stmt.value
            if name is None or value is None or name == "__slots__":
                continue
            if isinstance(value, ast.Call):
                fn = value.func
                fn_name = fn.id if isinstance(fn, ast.Name) else (
                    fn.attr if isinstance(fn, ast.Attribute) else None
                )
                if fn_name == "field":
                    continue  # dataclass field(default_factory=...) is the fix
            if _is_mutable_literal(value):
                self.flag(
                    value,
                    f"class-level mutable attribute {name!r} is shared across "
                    "all instances; initialise it in __init__ (or use a "
                    "dataclass default_factory)",
                )
        self.generic_visit(node)


#: the per-file rule set, in rule-id order (RPR004 is project-level)
PER_FILE_CHECKERS: tuple[type[Checker], ...] = (
    UnorderedIterationChecker,
    NondeterminismSourceChecker,
    FloatTimeEqualityChecker,
    CachePurityChecker,
    MutableSharedStateChecker,
)

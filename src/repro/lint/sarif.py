"""SARIF 2.1.0 output for repro-lint (``--format sarif``).

One ``run`` with the full rule catalogue in ``tool.driver.rules``;
active findings become ``level: error`` results, baselined findings are
included with an ``external`` suppression so code-scanning UIs show
them as reviewed rather than losing them.  Each result carries the
finding's content fingerprint under ``partialFingerprints`` --
the same line-drift-tolerant identity the baseline uses -- so upload
consumers track findings across commits exactly as the baseline does.

Output is rendered with sorted keys and no timestamps or absolute
paths, so SARIF reports are byte-identical across hash seeds, worker
counts and machines -- the acceptance criterion every repro-lint
surface shares.
"""

from __future__ import annotations

import json
import posixpath
from typing import Any, TYPE_CHECKING

from repro.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports nothing here)
    from repro.lint.engine import LintReport

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _result(f: Finding, uri_base: str, *, suppressed: bool) -> dict[str, Any]:
    uri = posixpath.join(uri_base, f.path) if uri_base else f.path
    out: dict[str, Any] = {
        "ruleId": f.rule,
        "level": "error",
        "message": {"text": f.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                    "region": {
                        "startLine": max(f.line, 1),
                        "startColumn": f.col + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {"reproLint/v1": f.fingerprint()},
    }
    if suppressed:
        out["suppressions"] = [{"kind": "external"}]
    return out


def render_sarif(report: "LintReport", *, uri_base: str = "") -> str:
    """The report as a SARIF 2.1.0 JSON document (deterministic)."""
    from repro.lint.engine import rule_catalogue

    rules = [
        {
            "id": rule,
            "name": rule,
            "shortDescription": {"text": title},
            "defaultConfiguration": {"level": "error"},
        }
        for rule, title in rule_catalogue()
    ]
    results = [_result(f, uri_base, suppressed=False) for f in report.active]
    results.extend(
        _result(f, uri_base, suppressed=True) for f in report.baselined
    )
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/STATIC_ANALYSIS.md",
                        "rules": rules,
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)

"""Lint orchestration: discovery, parallel analysis, deterministic merge.

Per-file analysis is embarrassingly parallel, so -- exactly like the
experiment grid in :mod:`repro.experiments.parallel` -- files fan out
over a ``ProcessPoolExecutor`` and results merge in *input* order,
never completion order; a parallel lint is byte-identical to a serial
one.  The cross-file RPR004 pass then runs in-process over the parsed
set, suppressions (already applied in the workers, where the source is
at hand) and the baseline are folded in, and findings come back sorted
by location.
"""

from __future__ import annotations

import ast
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.baseline import Baseline
from repro.lint.checker import FileContext
from repro.lint.findings import FRAMEWORK_RULE, Finding, assign_occurrences
from repro.lint.rules import PER_FILE_CHECKERS
from repro.lint.suppress import parse_suppressions

#: directories never worth descending into
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


@dataclass
class FileResult:
    """Worker output for one file (picklable)."""

    relpath: str
    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    #: suppression-system RPR000s (malformed / unjustified directives)
    errors: list[Finding] = field(default_factory=list)


@dataclass
class LintReport:
    """The merged outcome :func:`lint_paths` returns."""

    active: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    stale_baseline: list[str] = field(default_factory=list)
    files: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0


def discover_files(paths: Sequence[str | Path]) -> list[tuple[Path, str]]:
    """(absolute path, root-relative posix path) for every ``.py`` file.

    A directory argument is a *root*: relpaths (and therefore baseline
    fingerprints) are relative to it.  A file argument is its own root
    of one.
    """
    out: list[tuple[Path, str]] = []
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw).resolve()
        if p.is_file():
            if p.suffix == ".py" and p not in seen:
                seen.add(p)
                out.append((p, p.name))
            continue
        if not p.is_dir():
            raise FileNotFoundError(f"lint path does not exist: {raw}")
        for f in sorted(p.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in f.parts):
                continue
            if f not in seen:
                seen.add(f)
                out.append((f, f.relative_to(p).as_posix()))
    return out


def _select(rules: frozenset[str] | None, rule: str) -> bool:
    return rules is None or rule in rules


def analyze_source(
    relpath: str, source: str, select: frozenset[str] | None = None
) -> FileResult:
    """Run every applicable per-file checker over one source blob.

    Suppressions are applied here (the only place line text is still at
    hand); the caller receives surviving findings plus the count of
    suppressed ones.  A syntax error becomes a single RPR000 finding --
    unparseable decision code is a finding, not a crash.
    """
    result = FileResult(relpath=relpath)
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                rule=FRAMEWORK_RULE,
                path=relpath,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
                snippet=(exc.text or "").strip(),
            )
        )
        return result

    ctx = FileContext(relpath, source, tree)
    suppressions = parse_suppressions(source, relpath)
    raw: list[Finding] = []
    for checker_cls in PER_FILE_CHECKERS:
        if not _select(select, checker_cls.rule):
            continue
        if not checker_cls.applies_to(relpath):
            continue
        raw.extend(checker_cls(ctx).run())

    kept: list[Finding] = []
    for f in sorted(raw, key=Finding.sort_key):
        if suppressions.covers(f.rule, f.line):
            result.suppressed += 1
        else:
            kept.append(f)
    result.findings = kept
    if _select(select, FRAMEWORK_RULE):
        result.errors = list(suppressions.errors)
    return result


def _analyze_path(args: tuple[str, str, frozenset[str] | None]) -> FileResult:
    """Pool entry point: read + analyse one file (module-level, picklable)."""
    abspath, relpath, select = args
    source = Path(abspath).read_text(encoding="utf-8")
    return analyze_source(relpath, source, select)


def lint_paths(
    paths: Sequence[str | Path],
    *,
    baseline: Baseline | None = None,
    jobs: int = 1,
    select: Iterable[str] | None = None,
) -> LintReport:
    """Lint *paths* and return the merged, baseline-filtered report.

    ``jobs`` > 1 fans per-file analysis over a process pool; output is
    independent of the worker count.  ``select`` restricts to a rule
    subset (tests use this to probe one rule at a time).
    """
    selected = frozenset(select) if select is not None else None
    files = discover_files(paths)
    work = [(str(abspath), relpath, selected) for abspath, relpath in files]

    if jobs > 1 and len(work) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(_analyze_path, work, chunksize=4))
    else:
        results = [_analyze_path(w) for w in work]

    merged: list[Finding] = []
    report = LintReport(files=len(files))
    for res in results:
        merged.extend(res.findings)
        merged.extend(res.errors)
        report.suppressed += res.suppressed

    # cross-file pass (RPR004) over the full parsed set
    if selected is None or "RPR004" in selected:
        from repro.lint.project import run_project_checks

        contexts: dict[str, FileContext] = {}
        for abspath, relpath in files:
            source = Path(abspath).read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=relpath)
            except SyntaxError:
                continue  # already reported as RPR000 above
            contexts[relpath] = FileContext(relpath, source, tree)
        project_findings = run_project_checks(contexts)
        # project findings honour inline suppressions too
        for f in project_findings:
            supp = parse_suppressions(
                contexts[f.path].source if f.path in contexts else "", f.path
            )
            if supp.covers(f.rule, f.line):
                report.suppressed += 1
            else:
                merged.append(f)

    merged = assign_occurrences(sorted(merged, key=Finding.sort_key))

    if baseline is not None:
        merged.extend(baseline.unjustified())
        active, baselined, stale = baseline.split(merged)
        report.active = sorted(active, key=Finding.sort_key)
        report.baselined = baselined
        report.stale_baseline = stale
    else:
        report.active = merged
    return report


def render_human(report: LintReport, *, verbose: bool = False) -> str:
    """The terminal report."""
    lines = [f.render() for f in report.active]
    if verbose and report.baselined:
        lines.append("")
        lines.append("baselined (accepted) findings:")
        lines.extend(f"  {f.render()}" for f in report.baselined)
    for fp in report.stale_baseline:
        lines.append(f"note: stale baseline entry {fp} (code changed or removed)")
    lines.append(
        f"{len(report.active)} finding(s) in {report.files} file(s) "
        f"({report.suppressed} suppressed, {len(report.baselined)} baselined)"
    )
    return "\n".join(lines)

"""Lint orchestration: discovery, cached parallel analysis, merging.

Per-file analysis is embarrassingly parallel, so -- exactly like the
experiment grid in :mod:`repro.experiments.parallel` -- files fan out
over a ``ProcessPoolExecutor`` and results merge in *input* order,
never completion order; a parallel lint is byte-identical to a serial
one.  Sources are read once in the main process: they key the optional
content-addressed summary cache (:mod:`repro.lint.summaries`), travel
to the workers, and feed the cross-file passes without re-reading.

After the per-file phase, three whole-program passes run in-process
over the merged data: RPR004 (protocol conformance, parsed contexts),
the call-graph rules RPR007-009 (:mod:`repro.lint.callgraph` /
:mod:`repro.lint.effects`), and -- when requested -- the stale-
suppression audit, which reports every ``# repro-lint: disable``
directive that suppressed nothing in any phase.  Suppressions and the
baseline fold in last, and findings come back sorted by location.
"""

from __future__ import annotations

import ast
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.baseline import Baseline
from repro.lint.callgraph import ModuleSummary, build_call_graph, build_module_summary
from repro.lint.checker import FileContext
from repro.lint.findings import FRAMEWORK_RULE, Finding, assign_occurrences
from repro.lint.rules import PER_FILE_CHECKERS
from repro.lint.summaries import SummaryCache
from repro.lint.suppress import Suppressions, parse_suppressions

#: directories never worth descending into
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})

#: the rules that need the linked call graph
_INTERPROC_RULES = frozenset({"RPR007", "RPR008", "RPR009"})


@dataclass
class FileResult:
    """Worker output for one file (picklable, summary-cacheable)."""

    relpath: str
    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    #: suppression-system RPR000s (malformed / unjustified directives)
    errors: list[Finding] = field(default_factory=list)
    #: interprocedural summary (None when the file failed to parse)
    summary: ModuleSummary | None = None
    #: directive lines that suppressed something during per-file
    #: analysis (findings or effect seeds) -- stale-audit bookkeeping
    used_lines: tuple[int, ...] = ()


@dataclass
class LintReport:
    """The merged outcome :func:`lint_paths` returns."""

    active: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    stale_baseline: list[str] = field(default_factory=list)
    files: int = 0
    #: files analysed fresh this run (cache misses; == files when cold)
    analyzed: int = 0
    #: files served from the summary cache.  Counters stay off every
    #: rendered report so warm and cold runs remain byte-identical.
    summary_hits: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0


def rule_catalogue() -> list[tuple[str, str]]:
    """(rule id, one-line title) pairs, in rule-id order."""
    from repro.lint.project import RULE as PROJECT_RULE

    rows = [(c.rule, c.title) for c in PER_FILE_CHECKERS]
    rows.append((PROJECT_RULE, "cross-file protocol conformance"))
    rows.append(("RPR007", "transitive nondeterminism taint in decision/trace paths"))
    rows.append(("RPR008", "broad except handler can swallow faults untraced"))
    rows.append(("RPR009", "effect drift in assumed-pure fingerprint inputs"))
    rows.append(("RPR000", "framework diagnostics (parse/suppression/baseline)"))
    return sorted(rows)


def discover_files(paths: Sequence[str | Path]) -> list[tuple[Path, str]]:
    """(absolute path, root-relative posix path) for every ``.py`` file.

    A directory argument is a *root*: relpaths (and therefore baseline
    fingerprints) are relative to it.  A file argument is its own root
    of one.
    """
    out: list[tuple[Path, str]] = []
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw).resolve()
        if p.is_file():
            if p.suffix == ".py" and p not in seen:
                seen.add(p)
                out.append((p, p.name))
            continue
        if not p.is_dir():
            raise FileNotFoundError(f"lint path does not exist: {raw}")
        for f in sorted(p.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in f.parts):
                continue
            if f not in seen:
                seen.add(f)
                out.append((f, f.relative_to(p).as_posix()))
    return out


def _select(rules: frozenset[str] | None, rule: str) -> bool:
    return rules is None or rule in rules


def analyze_source(
    relpath: str, source: str, select: frozenset[str] | None = None
) -> FileResult:
    """Run every applicable per-file checker over one source blob.

    Suppressions are applied here (the only place line text is still at
    hand); the caller receives surviving findings, the count of
    suppressed ones, the file's interprocedural summary and the
    directive lines that earned their keep.  A syntax error becomes a
    single RPR000 finding -- unparseable decision code is a finding,
    not a crash.
    """
    result = FileResult(relpath=relpath)
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                rule=FRAMEWORK_RULE,
                path=relpath,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
                snippet=(exc.text or "").strip(),
            )
        )
        return result

    ctx = FileContext(relpath, source, tree)
    suppressions = parse_suppressions(source, relpath)
    raw: list[Finding] = []
    for checker_cls in PER_FILE_CHECKERS:
        if not _select(select, checker_cls.rule):
            continue
        if not checker_cls.applies_to(relpath):
            continue
        raw.extend(checker_cls(ctx).run())

    used: set[int] = set()
    kept: list[Finding] = []
    for f in sorted(raw, key=Finding.sort_key):
        directive = suppressions.covering(f.rule, f.line)
        if directive is not None:
            result.suppressed += 1
            used.add(directive.line)
        else:
            kept.append(f)
    result.findings = kept
    if _select(select, FRAMEWORK_RULE):
        result.errors = list(suppressions.errors)
    summary = build_module_summary(ctx)
    used.update(summary.used_directive_lines)
    result.summary = summary
    result.used_lines = tuple(sorted(used))
    return result


def _analyze_args(args: tuple[str, str, frozenset[str] | None]) -> FileResult:
    """Pool entry point (module-level, picklable)."""
    relpath, source, select = args
    return analyze_source(relpath, source, select)


def lint_paths(
    paths: Sequence[str | Path],
    *,
    baseline: Baseline | None = None,
    jobs: int = 1,
    select: Iterable[str] | None = None,
    summary_cache: SummaryCache | str | Path | None = None,
    report_unused_suppressions: bool = False,
) -> LintReport:
    """Lint *paths* and return the merged, baseline-filtered report.

    ``jobs`` > 1 fans per-file analysis over a process pool; output is
    independent of the worker count.  ``select`` restricts to a rule
    subset (tests use this to probe one rule at a time).
    ``summary_cache`` names a directory (or passes a
    :class:`SummaryCache`) from which unchanged files are served
    without re-analysis; it is bypassed under ``select`` so probing
    runs can never pollute or be served partial entries.
    ``report_unused_suppressions`` adds an RPR000 finding for every
    directive that suppressed nothing anywhere (skipped under
    ``select`` -- an unselected rule cannot defend its directives).
    """
    selected = frozenset(select) if select is not None else None
    files = discover_files(paths)
    sources: dict[str, str] = {
        relpath: abspath.read_text(encoding="utf-8") for abspath, relpath in files
    }

    cache: SummaryCache | None = None
    if summary_cache is not None and selected is None:
        cache = (
            summary_cache
            if isinstance(summary_cache, SummaryCache)
            else SummaryCache(summary_cache)
        )

    results: dict[str, FileResult] = {}
    pending: list[str] = []
    for _, relpath in files:
        cached = cache.get(relpath, sources[relpath]) if cache is not None else None
        if isinstance(cached, FileResult):
            results[relpath] = cached
        else:
            pending.append(relpath)

    work = [(relpath, sources[relpath], selected) for relpath in pending]
    if jobs > 1 and len(work) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            fresh = list(pool.map(_analyze_args, work, chunksize=4))
    else:
        fresh = [_analyze_args(w) for w in work]
    for res in fresh:
        results[res.relpath] = res
        if cache is not None:
            cache.put(res.relpath, sources[res.relpath], res)

    ordered = [results[relpath] for _, relpath in files]
    report = LintReport(
        files=len(files),
        analyzed=len(pending),
        summary_hits=len(files) - len(pending),
    )
    merged: list[Finding] = []
    used: dict[str, set[int]] = {}
    for res in ordered:
        merged.extend(res.findings)
        merged.extend(res.errors)
        report.suppressed += res.suppressed
        used[res.relpath] = set(res.used_lines)

    #: main-process suppression lookups, parsed once per file
    supp_cache: dict[str, Suppressions] = {}

    def suppressions_for(relpath: str) -> Suppressions:
        supp = supp_cache.get(relpath)
        if supp is None:
            supp = parse_suppressions(sources.get(relpath, ""), relpath)
            supp_cache[relpath] = supp
        return supp

    line_cache: dict[str, list[str]] = {}

    def snippet_of(relpath: str, lineno: int) -> str:
        lines = line_cache.get(relpath)
        if lines is None:
            lines = sources.get(relpath, "").splitlines()
            line_cache[relpath] = lines
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1].strip()
        return ""

    def fold(findings: Iterable[Finding]) -> None:
        """Merge cross-file findings, honouring inline suppressions."""
        for f in findings:
            directive = suppressions_for(f.path).covering(f.rule, f.line)
            if directive is not None:
                used.setdefault(f.path, set()).add(directive.line)
                report.suppressed += 1
            else:
                merged.append(f)

    # cross-file pass (RPR004) over the full parsed set
    if _select(selected, "RPR004"):
        from repro.lint.project import run_project_checks

        contexts: dict[str, FileContext] = {}
        for _, relpath in files:
            try:
                tree = ast.parse(sources[relpath], filename=relpath)
            except SyntaxError:
                continue  # already reported as RPR000 above
            contexts[relpath] = FileContext(relpath, sources[relpath], tree)
        fold(run_project_checks(contexts))

    # interprocedural pass (RPR007-009) over the linked summaries
    if selected is None or (selected & _INTERPROC_RULES):
        from repro.lint.effects import (
            check_contract_drift,
            check_exception_flow,
            check_transitive_taint,
        )

        graph = build_call_graph(
            res.summary for res in ordered if res.summary is not None
        )
        effects = None
        if _select(selected, "RPR007") or _select(selected, "RPR009"):
            from repro.lint.effects import propagate_effects

            effects = propagate_effects(graph)
        if _select(selected, "RPR007"):
            assert effects is not None
            fold(check_transitive_taint(graph, effects, snippet_of))
        if _select(selected, "RPR008"):
            fold(check_exception_flow(graph, snippet_of))
        if _select(selected, "RPR009"):
            assert effects is not None
            fold(check_contract_drift(graph, effects, snippet_of))

    # stale-suppression audit: a directive nothing fired through is rot
    if report_unused_suppressions and selected is None:
        for _, relpath in files:
            live = used.get(relpath, set())
            for d in suppressions_for(relpath).directives:
                if d.line in live:
                    continue
                rules = ",".join(sorted(d.rules))
                merged.append(
                    Finding(
                        rule=FRAMEWORK_RULE,
                        path=relpath,
                        line=d.line,
                        col=0,
                        message=(
                            f"unused suppression: no {rules} finding fires "
                            "on the target line any more -- remove the stale "
                            "directive"
                        ),
                        snippet=snippet_of(relpath, d.line),
                    )
                )

    merged = assign_occurrences(sorted(merged, key=Finding.sort_key))

    if baseline is not None:
        merged.extend(baseline.unjustified())
        active, baselined, stale = baseline.split(merged)
        report.active = sorted(active, key=Finding.sort_key)
        report.baselined = baselined
        report.stale_baseline = stale
    else:
        report.active = merged
    return report


def render_human(report: LintReport, *, verbose: bool = False) -> str:
    """The terminal report."""
    lines = [f.render() for f in report.active]
    if verbose and report.baselined:
        lines.append("")
        lines.append("baselined (accepted) findings:")
        lines.extend(f"  {f.render()}" for f in report.baselined)
    for fp in report.stale_baseline:
        lines.append(f"note: stale baseline entry {fp} (code changed or removed)")
    lines.append(
        f"{len(report.active)} finding(s) in {report.files} file(s) "
        f"({report.suppressed} suppressed, {len(report.baselined)} baselined)"
    )
    return "\n".join(lines)

"""Finding records, fingerprints and output formatting.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`~Finding.fingerprint` deliberately excludes the line *number*:
baselined findings must survive unrelated edits above them, so the
identity is ``rule | path | enclosing scope | normalised source line``
plus an occurrence index for repeats of the same line text within the
same scope.  That is the same trade-off ruff's and mypy's baselines
make: a finding "moves" only when the offending line itself (or its
scope) changes, at which point re-review is exactly what we want.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterable

#: Framework-diagnostic pseudo-rule (parse failures, malformed
#: suppression directives, unjustified baseline entries).
FRAMEWORK_RULE = "RPR000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    #: path relative to the lint root, POSIX separators
    path: str
    line: int
    col: int
    message: str
    #: the stripped source line (fingerprint ingredient)
    snippet: str = ""
    #: dotted enclosing scope (``"Class.method"``; ``"<module>"`` at top level)
    symbol: str = "<module>"
    #: index among findings sharing (rule, path, symbol, snippet); set by
    #: the engine after per-file merging so fingerprints are stable
    occurrence: int = field(default=0, compare=False)

    def fingerprint(self) -> str:
        """Line-drift-tolerant content identity (see module docstring)."""
        payload = "|".join(
            (self.rule, self.path, self.symbol, self.snippet, str(self.occurrence))
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]

    def sort_key(self) -> tuple[str, int, int, str, str]:
        return (self.path, self.line, self.col, self.rule, self.message)

    def as_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint(),
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def assign_occurrences(findings: Iterable[Finding]) -> list[Finding]:
    """Number repeated (rule, path, symbol, snippet) findings stably.

    Input order must already be deterministic (the engine sorts by
    location first); the occurrence index is the tie-breaker that keeps
    two identical lines in one function from sharing a fingerprint.
    """
    counts: dict[tuple[str, str, str, str], int] = {}
    out: list[Finding] = []
    for f in findings:
        key = (f.rule, f.path, f.symbol, f.snippet)
        n = counts.get(key, 0)
        counts[key] = n + 1
        out.append(
            f
            if f.occurrence == n
            else Finding(
                rule=f.rule,
                path=f.path,
                line=f.line,
                col=f.col,
                message=f.message,
                snippet=f.snippet,
                symbol=f.symbol,
                occurrence=n,
            )
        )
    return out


def render_json(
    findings: list[Finding],
    *,
    suppressed: int,
    baselined: int,
    files: int,
    stale_baseline: list[str],
) -> str:
    """The machine-readable report (one JSON document)."""
    return json.dumps(
        {
            "findings": [f.as_dict() for f in findings],
            "counts": {
                "active": len(findings),
                "suppressed": suppressed,
                "baselined": baselined,
                "files": files,
            },
            "stale_baseline": stale_baseline,
        },
        indent=2,
        sort_keys=True,
    )

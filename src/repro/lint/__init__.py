"""``repro-lint``: the simulator's own static-analysis suite.

The determinism guarantees this repository sells -- byte-identical
traces across processes, content-addressed result caching, replayable
decision records -- are *structural* properties of the code, and the
hash-order bug fixed in ``SelectiveSuspensionScheduler._try_resume``
(PR 2) showed how silently they rot: one unsorted iteration over a
set-derived collection inside a decision path and every cross-process
reproduction claim is void.  This package enforces those invariants
statically, before a simulation ever runs.

The per-file rules are backed by a whole-program layer: every module
yields an effect summary (what it calls, which nondeterminism seeds it
touches, how its handlers treat faults), the summaries link into a
project call graph, and effects propagate to a fixpoint -- so a
``time.time()`` three frames below a scheduler still surfaces *at the
scheduler*, where the reviewer is looking.

Rule catalogue (see ``docs/STATIC_ANALYSIS.md`` for the full reference):

=======  ==============================================================
RPR001   unordered iteration inside scheduling-decision code paths
RPR002   wall-clock / unseeded-randomness nondeterminism sources
RPR003   exact float equality between simulation-time expressions
RPR004   protocol conformance (Scheduler / Tracer / recorder lockstep)
RPR005   trace & cache purity (JSON-stable configs, picklable cells)
RPR006   mutable defaults and shared class-level mutable state
RPR007   transitive nondeterminism taint reaching decision/trace paths
RPR008   broad except handler swallows faults untraced (exception flow)
RPR009   effect drift in assumed-pure fingerprint/config contracts
RPR000   framework diagnostics (parse errors, malformed suppressions,
         stale suppressions under ``--report-unused-suppressions``)
=======  ==============================================================

Architecture
------------

* :mod:`repro.lint.checker` -- the :class:`~repro.lint.checker.Checker`
  AST-visitor base and per-file :class:`~repro.lint.checker.FileContext`
  (parent links, scope qualnames, lightweight set-type inference).
* :mod:`repro.lint.rules` -- the per-file checkers RPR001-003/005/006.
* :mod:`repro.lint.project` -- RPR004, the cross-file conformance pass
  (event vocabulary vs. counter folds vs. replay coverage; scheduler
  ``config()``/``describe()``/registry lockstep).
* :mod:`repro.lint.callgraph` -- per-module effect summaries
  (:class:`~repro.lint.callgraph.ModuleSummary`) and the project
  :class:`~repro.lint.callgraph.CallGraph`: import-aware dotted-name
  resolution, class-hierarchy method dispatch (nearest ancestor plus
  every override), and registry-aware edges into ``@register(...)``
  builders.
* :mod:`repro.lint.effects` -- the effect lattice (``rng``,
  ``wall-clock``, ``filesystem``, ``global-mutation``, ``hash-order``)
  with monotone fixpoint propagation over the call graph, plus the
  interprocedural rules RPR007-009.
* :mod:`repro.lint.summaries` -- content-addressed per-module analysis
  cache keyed on source bytes *and* an analyzer fingerprint (any edit
  to the linter itself invalidates everything); warm runs re-analyse
  only changed modules.
* :mod:`repro.lint.suppress` -- ``# repro-lint: disable=RPRxxx -- why``
  directives; a justification is *mandatory* (a bare disable is itself
  reported as RPR000), and stale directives are auditable via
  ``--report-unused-suppressions``.
* :mod:`repro.lint.baseline` -- the checked-in accepted-findings file
  (``tools/lint_baseline.json``) keyed by content fingerprints that
  survive line drift, each entry carrying its justification.
* :mod:`repro.lint.engine` -- discovery, per-file parallel analysis
  with deterministic merging, baseline application, human/JSON output.
* :mod:`repro.lint.sarif` -- SARIF 2.1.0 rendering for code-scanning
  upload (baselined findings carry ``suppressions`` entries).
* :mod:`repro.lint.cli` -- the ``repro-sched lint`` front end (also
  reachable as ``tools/run_lint.py``).
"""

from __future__ import annotations

from repro.lint.baseline import Baseline
from repro.lint.callgraph import CallGraph, ModuleSummary, build_call_graph
from repro.lint.checker import Checker, FileContext
from repro.lint.effects import propagate_effects
from repro.lint.engine import LintReport, lint_paths
from repro.lint.findings import Finding
from repro.lint.rules import PER_FILE_CHECKERS
from repro.lint.sarif import render_sarif
from repro.lint.summaries import SummaryCache
from repro.lint.suppress import Suppressions

__all__ = [
    "Baseline",
    "CallGraph",
    "Checker",
    "FileContext",
    "Finding",
    "LintReport",
    "ModuleSummary",
    "PER_FILE_CHECKERS",
    "SummaryCache",
    "Suppressions",
    "build_call_graph",
    "lint_paths",
    "propagate_effects",
    "render_sarif",
]

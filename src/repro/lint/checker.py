"""The per-file checker framework: visitor base and file context.

:class:`FileContext` is parsed once per file and shared by every
checker run over it: source lines, an AST with parent links, dotted
scope names, the file's import aliases, and a deliberately *shallow*
set-type inference (annotations, literal assignments, set-algebra
operators, module-local return types) -- enough to recognise the bug
shapes the rules target without becoming a type checker.  Where the
inference cannot see, the rules stay silent: a determinism linter must
be high-precision or its suppressions rot into noise.

:class:`Checker` is the :class:`ast.NodeVisitor` base concrete rules
subclass; :func:`checker_applies` gates path-scoped rules (RPR001 only
patrols scheduling-decision code under ``core/``, ``schedulers/``,
``sim/``).
"""

from __future__ import annotations

import ast
import re
from typing import ClassVar, Iterator

from repro.lint.findings import Finding

#: matches decision-path directories at any depth of the relpath, so the
#: same rule scoping works for ``src/repro`` roots and test fixtures.
#: ``cluster/`` joined the patrol in PR 4: allocation policy choices are
#: schedule-steering, and the bitmask kernel's mask-iteration helpers
#: (``iter_bits``/``mask_to_ids``, ascending-by-construction) are the
#: sanctioned way to walk processor sets there.
DECISION_PATH_RE = re.compile(r"(^|/)(cluster|core|schedulers|sim)/")


class FileContext:
    """Everything the checkers need to know about one parsed file."""

    def __init__(self, relpath: str, source: str, tree: ast.Module) -> None:
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        #: child node -> parent node, for consumer/scope lookups
        self.parents: dict[ast.AST, ast.AST] = {}
        #: node -> dotted scope name ("Cls.meth"), computed in one walk
        self._scopes: dict[ast.AST, str] = {}
        #: local alias -> canonical module name ("np" -> "numpy")
        self.module_aliases: dict[str, str] = {}
        #: local name -> "module.attr" for from-imports ("urandom" -> "os.urandom")
        self.from_imports: dict[str, str] = {}
        #: names of set-typed attributes of self ("_running", ...)
        self.set_self_attrs: set[str] = set()
        #: module-local function/method names whose return type is a set
        self.set_returning: set[str] = set()
        self._index()

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def _index(self) -> None:
        stack: list[str] = []

        def walk(node: ast.AST) -> None:
            is_scope = isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef))
            if is_scope:
                stack.append(node.name)  # type: ignore[attr-defined]
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
                self._scopes[child] = ".".join(stack) if stack else "<module>"
                walk(child)
            if is_scope:
                stack.pop()

        walk(self.tree)

        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
            elif isinstance(node, ast.AnnAssign) and self._is_set_annotation(
                node.annotation
            ):
                target = node.target
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    self.set_self_attrs.add(target.attr)
            elif isinstance(node, ast.Assign):
                if self.is_set_expr(node.value, shallow=True):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            self.set_self_attrs.add(target.attr)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.returns is not None and self._is_set_annotation(node.returns):
                    self.set_returning.add(node.name)

    @staticmethod
    def _is_set_annotation(annotation: ast.expr) -> bool:
        """``set[...]`` / ``frozenset[...]`` / ``Set[...]`` annotations."""
        node = annotation
        if isinstance(node, ast.Subscript):
            node = node.value
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # string annotation: cheap textual check
            return bool(re.match(r"\s*(frozen)?[sS]et\b", node.value))
        return name in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def scope_of(self, node: ast.AST) -> str:
        return self._scopes.get(node, "<module>")

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def parent_chain(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self.parents.get(node)
        while cur is not None:
            yield cur
            cur = self.parents.get(cur)

    def resolves_to_module(self, node: ast.expr, module: str) -> bool:
        """Whether *node* names *module* through this file's imports."""
        if isinstance(node, ast.Name):
            return self.module_aliases.get(node.id) == module
        if isinstance(node, ast.Attribute):
            # numpy.random reached as ``np.random`` or ``numpy.random``
            parts: list[str] = []
            cur: ast.expr = node
            while isinstance(cur, ast.Attribute):
                parts.append(cur.attr)
                cur = cur.value
            if isinstance(cur, ast.Name):
                root = self.module_aliases.get(cur.id, cur.id)
                dotted = ".".join([root, *reversed(parts)])
                return dotted == module
        return False

    # ------------------------------------------------------------------
    # shallow set-type inference
    # ------------------------------------------------------------------
    def is_set_expr(self, node: ast.expr, *, shallow: bool = False) -> bool:
        """Whether *node* evaluates to a set/frozenset, as far as the
        shallow inference can see (annotations, literals, set algebra,
        module-local returns).  False negatives are fine; false
        positives are not.
        """
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Name) and fn.id in ("set", "frozenset"):
                return True
            if not shallow and isinstance(fn, ast.Attribute):
                # set-producing methods: s.union(...), s.copy() on a set,
                # and module-local functions annotated -> set[...]
                if fn.attr in ("union", "intersection", "difference", "symmetric_difference"):
                    return self.is_set_expr(fn.value)
                if fn.attr in self.set_returning:
                    return True
            if not shallow and isinstance(fn, ast.Name) and fn.id in self.set_returning:
                return True
            return False
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.set_self_attrs
            ):
                return True
            return False
        if not shallow and isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        return False


class Checker(ast.NodeVisitor):
    """Base class for per-file rules.

    Subclasses set :attr:`rule` / :attr:`title`, optionally restrict
    themselves with :attr:`decision_paths_only`, and call
    :meth:`flag` from their ``visit_*`` methods.  Findings are plain
    data (:class:`repro.lint.findings.Finding`); suppression and
    baseline application happen later in the engine, so checkers never
    need to know about either.
    """

    rule: ClassVar[str] = "RPR999"
    title: ClassVar[str] = ""
    #: restrict to core/ | schedulers/ | sim/ (RPR001's scope)
    decision_paths_only: ClassVar[bool] = False

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []

    @classmethod
    def applies_to(cls, relpath: str) -> bool:
        if cls.decision_paths_only:
            return bool(DECISION_PATH_RE.search(relpath.replace("\\", "/")))
        return True

    def flag(self, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        self.findings.append(
            Finding(
                rule=self.rule,
                path=self.ctx.relpath,
                line=lineno,
                col=col,
                message=message,
                snippet=self.ctx.line_text(lineno),
                symbol=self.ctx.scope_of(node),
            )
        )

    def run(self) -> list[Finding]:
        self.visit(self.ctx.tree)
        return self.findings

"""RPR004: cross-file protocol-conformance checks.

Where RPR001-003/005/006 look at one file at a time, RPR004 checks the
*agreements between* modules that the test suite can only probe
dynamically (and therefore only for the event sequences a given
workload happens to produce):

* **Scheduler contract** -- every concrete :class:`Scheduler` subclass
  overrides ``scheme_id`` (in the class body, or -- for spec-driven
  kernels like ``PolicyKernel`` -- by assigning ``self.scheme_id`` in
  ``__init__``), keeps registry-compatible ``config(self)`` /
  ``describe(self)`` signatures, and -- if its ``__init__`` takes
  behavioural knobs -- overrides ``config()`` so those knobs reach the
  cache fingerprint and the worker-side rebuild (the silent-stale-cache
  bug class).  Every concrete ``scheme_id`` must have a builder
  registered in ``schedulers/registry.py``.
* **Policy contract** -- every concrete policy-axis class
  (``QueuePolicy`` / ``ReservationPolicy`` / ``BackfillPolicy`` /
  ``PreemptionPolicy`` descendants) whose ``__init__`` takes knobs must
  override ``config_fragment()`` so the knobs reach
  ``SchedulerSpec.config()`` -- the same stale-cache bug class, one
  composition layer down -- and ``config_fragment`` must stay callable
  with no arguments.
* **Event-vocabulary lockstep** -- the :class:`Tracer` must emit every
  type in ``EVENT_TYPES`` (no orphan vocabulary), every lifecycle
  emission method must fold :class:`TraceCounters` in the same breath
  (counters and stream may never disagree), and the replay witness
  (``obs/summary.py``) must handle the full vocabulary.
* **Call-site conformance** -- ``tracer.<method>(...)`` sites in
  ``core/`` / ``schedulers/`` / ``sim/`` must name real Tracer methods,
  and literal ``decision(..., "<action>", ...)`` actions must come from
  ``DECISION_ACTIONS``.
* **Recorder protocol** -- anything that defines ``record(event)``
  must also provide ``close()`` and the ``enabled`` flag the driver's
  zero-overhead gate reads.

Checks degrade gracefully: each sub-check only runs when the files it
needs are part of the analysed set, so fixture trees exercise them in
isolation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.checker import DECISION_PATH_RE, FileContext
from repro.lint.findings import Finding

RULE = "RPR004"

#: Tracer methods that frame the run rather than record job lifecycle
#: (exempt from the counters-lockstep requirement)
_FRAMING_METHODS = frozenset({"run_begin", "run_end"})

#: private plumbing on Tracer that call sites must not use directly
_PRIVATE_PREFIX = "_"


@dataclass
class _ClassInfo:
    name: str
    relpath: str
    lineno: int
    bases: list[str]
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    assigns: dict[str, ast.expr] = field(default_factory=dict)
    is_abstract: bool = False


def _base_names(node: ast.ClassDef) -> list[str]:
    out: list[str] = []
    for b in node.bases:
        if isinstance(b, ast.Name):
            out.append(b.id)
        elif isinstance(b, ast.Attribute):
            out.append(b.attr)
    return out


def _collect_classes(contexts: dict[str, FileContext]) -> dict[str, _ClassInfo]:
    classes: dict[str, _ClassInfo] = {}
    for relpath in sorted(contexts):
        ctx = contexts[relpath]
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = _ClassInfo(
                name=node.name,
                relpath=relpath,
                lineno=node.lineno,
                bases=_base_names(node),
            )
            for stmt in node.body:
                if isinstance(stmt, ast.FunctionDef):
                    info.methods[stmt.name] = stmt
                    for deco in stmt.decorator_list:
                        dname = (
                            deco.id
                            if isinstance(deco, ast.Name)
                            else deco.attr
                            if isinstance(deco, ast.Attribute)
                            else None
                        )
                        if dname in ("abstractmethod", "abstractproperty"):
                            info.is_abstract = True
                elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    t = stmt.targets[0]
                    if isinstance(t, ast.Name):
                        info.assigns[t.id] = stmt.value
                elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    if stmt.value is not None:
                        info.assigns[stmt.target.id] = stmt.value
            if "ABC" in info.bases or "Protocol" in info.bases:
                info.is_abstract = True
            classes[node.name] = classes.get(node.name) or info
    return classes


def _descends_from(
    classes: dict[str, _ClassInfo], name: str, root: str, _seen: frozenset[str] = frozenset()
) -> bool:
    if name == root:
        return True
    info = classes.get(name)
    if info is None or name in _seen:
        return False
    return any(
        _descends_from(classes, b, root, _seen | {name}) for b in info.bases
    )


def _inherited_assign(
    classes: dict[str, _ClassInfo], cls_name: str, attr: str, root_cls: str
) -> ast.expr | None:
    """Class-body assignment of *attr* on *cls_name* or a proper ancestor
    below *root_cls* (the abstract root's default does not count)."""
    info = classes.get(cls_name)
    if info is None or cls_name == root_cls:
        return None
    if attr in info.assigns:
        return info.assigns[attr]
    for b in info.bases:
        found = _inherited_assign(classes, b, attr, root_cls)
        if found is not None:
            return found
    return None


def _finding(relpath: str, node: ast.AST | None, ctx: FileContext | None, msg: str,
             symbol: str = "<module>") -> Finding:
    lineno = getattr(node, "lineno", 0) if node is not None else 0
    col = getattr(node, "col_offset", 0) if node is not None else 0
    return Finding(
        rule=RULE,
        path=relpath,
        line=lineno,
        col=col,
        message=msg,
        snippet=ctx.line_text(lineno) if ctx is not None else "",
        symbol=ctx.scope_of(node) if ctx is not None and node is not None else symbol,
    )


# ----------------------------------------------------------------------
# scheduler contract
# ----------------------------------------------------------------------
def _check_schedulers(
    contexts: dict[str, FileContext], classes: dict[str, _ClassInfo]
) -> list[Finding]:
    findings: list[Finding] = []
    registered = _registered_schemes(contexts)
    for name in sorted(classes):
        info = classes[name]
        if name == "Scheduler" or not _descends_from(classes, name, "Scheduler"):
            continue
        if info.is_abstract:
            continue
        ctx = contexts[info.relpath]
        node = next(
            (
                n
                for n in ast.walk(ctx.tree)
                if isinstance(n, ast.ClassDef) and n.name == name
            ),
            None,
        )
        # scheme_id must be overridden somewhere below the abstract base
        # (class body, or self.scheme_id assigned by a spec-driven
        # __init__ as PolicyKernel does)
        if _inherited_assign(
            classes, name, "scheme_id", root_cls="Scheduler"
        ) is None and not _self_attr_in_inits(
            classes, name, "scheme_id", root_cls="Scheduler"
        ):
            findings.append(
                _finding(
                    info.relpath,
                    node,
                    ctx,
                    f"Scheduler subclass {name} never overrides scheme_id; the "
                    "registry and cache fingerprint cannot identify it",
                )
            )
        else:
            scheme = _inherited_assign(classes, name, "scheme_id", root_cls="Scheduler")
            if (
                registered is not None
                and isinstance(scheme, ast.Constant)
                and isinstance(scheme.value, str)
                and scheme.value not in registered
            ):
                findings.append(
                    _finding(
                        info.relpath,
                        node,
                        ctx,
                        f"scheme_id {scheme.value!r} of {name} has no builder in "
                        "schedulers/registry.py; parallel workers and the cache "
                        "cannot rebuild it",
                    )
                )
        # behavioural knobs in __init__ demand a config() override
        init = info.methods.get("__init__")
        if init is not None:
            extra = [a.arg for a in (*init.args.args[1:], *init.args.kwonlyargs)]
            if extra and _inherited_assign_method(
                classes, name, "config", root_cls="Scheduler"
            ) is None:
                findings.append(
                    _finding(
                        info.relpath,
                        init,
                        ctx,
                        f"{name}.__init__ takes behavioural knobs "
                        f"({', '.join(extra)}) but no config() override "
                        "captures them -- cached results would go stale "
                        "silently",
                    )
                )
        # signature conformance: the registry, cache and report layer all
        # call config()/describe() with no arguments
        for meth in ("config", "describe"):
            fn = info.methods.get(meth)
            if fn is None:
                continue
            n_required = (
                len([a for a in fn.args.args if a.arg != "self"])
                - len(fn.args.defaults)
                + len([d for d in fn.args.kw_defaults if d is None])
            )
            if n_required > 0:
                findings.append(
                    _finding(
                        info.relpath,
                        fn,
                        ctx,
                        f"{name}.{meth}() takes required parameters; the "
                        "registry and report layer call it as "
                        f"{meth}(self) only",
                    )
                )
    return findings


def _self_attr_in_inits(
    classes: dict[str, _ClassInfo],
    cls_name: str,
    attr: str,
    root_cls: str,
    _seen: frozenset[str] = frozenset(),
) -> bool:
    """True when *cls_name* or an ancestor below *root_cls* assigns
    ``self.<attr>`` inside its ``__init__`` (dynamic override)."""
    info = classes.get(cls_name)
    if info is None or cls_name == root_cls or cls_name in _seen:
        return False
    init = info.methods.get("__init__")
    if init is not None and any(
        isinstance(n, ast.Assign)
        and any(
            isinstance(t, ast.Attribute)
            and t.attr == attr
            and isinstance(t.value, ast.Name)
            and t.value.id == "self"
            for t in n.targets
        )
        for n in ast.walk(init)
    ):
        return True
    return any(
        _self_attr_in_inits(classes, b, attr, root_cls, _seen | {cls_name})
        for b in info.bases
    )


def _inherited_assign_method(
    classes: dict[str, _ClassInfo], cls_name: str, meth: str, root_cls: str
) -> ast.FunctionDef | None:
    info = classes.get(cls_name)
    if info is None or cls_name == root_cls:
        return None
    if meth in info.methods:
        return info.methods[meth]
    for b in info.bases:
        found = _inherited_assign_method(classes, b, meth, root_cls)
        if found is not None:
            return found
    return None


def _registered_schemes(contexts: dict[str, FileContext]) -> set[str] | None:
    """scheme ids with ``@register("...")`` builders, or None if the
    registry module is not part of the analysed set."""
    for relpath, ctx in contexts.items():
        if relpath.replace("\\", "/").endswith("schedulers/registry.py"):
            out: set[str] = set()
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Call):
                    fn = node.func
                    if (
                        isinstance(fn, ast.Name)
                        and fn.id == "register"
                        and node.args
                        and isinstance(node.args[0], ast.Constant)
                        and isinstance(node.args[0].value, str)
                    ):
                        out.add(node.args[0].value)
            return out
    return None


# ----------------------------------------------------------------------
# policy contract (the composition layer under PolicyKernel)
# ----------------------------------------------------------------------
#: the four policy-axis roots of repro/schedulers/policy.py
_POLICY_ROOTS = ("QueuePolicy", "ReservationPolicy", "BackfillPolicy", "PreemptionPolicy")


def _check_policies(
    contexts: dict[str, FileContext], classes: dict[str, _ClassInfo]
) -> list[Finding]:
    """Concrete policy classes must surface their knobs in config_fragment.

    ``SchedulerSpec.config()`` is assembled purely from the axes'
    ``config_fragment()`` dicts, so a policy knob that never reaches a
    fragment is invisible to the result cache and the worker-side
    rebuild -- exactly the scheduler ``config()`` bug class, one
    composition layer down.
    """
    findings: list[Finding] = []
    for name in sorted(classes):
        info = classes[name]
        if name == "Policy" or name in _POLICY_ROOTS:
            continue
        if not any(_descends_from(classes, name, root) for root in _POLICY_ROOTS):
            continue
        if info.is_abstract:
            continue
        ctx = contexts[info.relpath]
        init = info.methods.get("__init__")
        if init is not None:
            extra = [a.arg for a in (*init.args.args[1:], *init.args.kwonlyargs)]
            if extra and _inherited_assign_method(
                classes, name, "config_fragment", root_cls="Policy"
            ) is None:
                findings.append(
                    _finding(
                        info.relpath,
                        init,
                        ctx,
                        f"policy {name}.__init__ takes knobs "
                        f"({', '.join(extra)}) but no config_fragment() "
                        "override surfaces them -- SchedulerSpec.config() "
                        "and the cache fingerprint would miss them",
                    )
                )
        fn = info.methods.get("config_fragment")
        if fn is not None:
            n_required = (
                len([a for a in fn.args.args if a.arg != "self"])
                - len(fn.args.defaults)
                + len([d for d in fn.args.kw_defaults if d is None])
            )
            if n_required > 0:
                findings.append(
                    _finding(
                        info.relpath,
                        fn,
                        ctx,
                        f"policy {name}.config_fragment() takes required "
                        "parameters; SchedulerSpec.config() calls it as "
                        "config_fragment(self) only",
                    )
                )
    return findings


# ----------------------------------------------------------------------
# event vocabulary / counters lockstep / replay coverage
# ----------------------------------------------------------------------
def _find_events_module(contexts: dict[str, FileContext]) -> str | None:
    for relpath in sorted(contexts):
        if relpath.replace("\\", "/").endswith("obs/events.py"):
            return relpath
    return None


def _tuple_of_strings(ctx: FileContext, const_name: str) -> tuple[list[str], ast.AST | None]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            t = node.targets[0]
            if isinstance(t, ast.Name) and t.id == const_name:
                if isinstance(node.value, (ast.Tuple, ast.List)):
                    return (
                        [
                            e.value
                            for e in node.value.elts
                            if isinstance(e, ast.Constant) and isinstance(e.value, str)
                        ],
                        node,
                    )
    return ([], None)


def _tracer_class(ctx: FileContext) -> ast.ClassDef | None:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef) and node.name == "Tracer":
            return node
    return None


def _string_constants(node: ast.AST) -> set[str]:
    return {
        n.value
        for n in ast.walk(node)
        if isinstance(n, ast.Constant) and isinstance(n.value, str)
    }


def _check_event_lockstep(contexts: dict[str, FileContext]) -> list[Finding]:
    findings: list[Finding] = []
    events_rel = _find_events_module(contexts)
    if events_rel is None:
        return findings
    ctx = contexts[events_rel]
    event_types, event_node = _tuple_of_strings(ctx, "EVENT_TYPES")
    tracer = _tracer_class(ctx)
    if not event_types or tracer is None:
        return findings

    # (b) emission coverage: every EVENT_TYPES member must appear as a
    # literal inside the Tracer class (emitted or assigned to an etype)
    emitted = _string_constants(tracer) & set(event_types)
    for missing in sorted(set(event_types) - emitted):
        findings.append(
            _finding(
                events_rel,
                event_node,
                ctx,
                f"event type {missing!r} is declared in EVENT_TYPES but the "
                "Tracer never emits it (orphan vocabulary)",
            )
        )

    # (c) counters lockstep: each emitting lifecycle method folds counters
    for meth in tracer.body:
        if not isinstance(meth, ast.FunctionDef):
            continue
        if meth.name in _FRAMING_METHODS or meth.name.startswith(_PRIVATE_PREFIX):
            continue
        emits = any(
            isinstance(n, ast.Call)
            and isinstance(n.func, ast.Attribute)
            and n.func.attr in ("_emit", "record")
            for n in ast.walk(meth)
        )
        if not emits:
            continue
        touches_counters = any(
            (
                isinstance(n, ast.Attribute)
                and n.attr == "counters"
            )
            or (
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and n.func.attr == "_queue_delta"
            )
            or (
                isinstance(n, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "c" for t in n.targets
                )
                and isinstance(n.value, ast.Attribute)
                and n.value.attr == "counters"
            )
            for n in ast.walk(meth)
        )
        if not touches_counters:
            findings.append(
                _finding(
                    events_rel,
                    meth,
                    ctx,
                    f"Tracer.{meth.name}() emits events without folding "
                    "TraceCounters -- counters and stream would disagree",
                )
            )

    # replay witness coverage: obs/summary.py must mention every type
    for relpath in sorted(contexts):
        if relpath.replace("\\", "/").endswith("obs/summary.py"):
            summary_ctx = contexts[relpath]
            known = _string_constants(summary_ctx.tree)
            for missing in sorted(set(event_types) - known):
                findings.append(
                    _finding(
                        relpath,
                        summary_ctx.tree.body[0] if summary_ctx.tree.body else None,
                        summary_ctx,
                        f"replay summariser never references event type "
                        f"{missing!r}; summarize_trace would silently drop it",
                    )
                )
    return findings


# ----------------------------------------------------------------------
# tracer call sites in decision paths
# ----------------------------------------------------------------------
def _check_tracer_call_sites(contexts: dict[str, FileContext]) -> list[Finding]:
    findings: list[Finding] = []
    events_rel = _find_events_module(contexts)
    if events_rel is None:
        return findings
    events_ctx = contexts[events_rel]
    tracer = _tracer_class(events_ctx)
    if tracer is None:
        return findings
    tracer_methods = {
        m.name for m in tracer.body if isinstance(m, ast.FunctionDef)
    }
    decision_actions, _ = _tuple_of_strings(events_ctx, "DECISION_ACTIONS")

    for relpath in sorted(contexts):
        if not DECISION_PATH_RE.search(relpath.replace("\\", "/")):
            continue
        ctx = contexts[relpath]
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            recv = node.func.value
            is_tracer = (isinstance(recv, ast.Name) and recv.id == "tracer") or (
                isinstance(recv, ast.Attribute) and recv.attr == "tracer"
            )
            if not is_tracer:
                continue
            meth = node.func.attr
            if meth not in tracer_methods or meth.startswith(_PRIVATE_PREFIX):
                findings.append(
                    _finding(
                        relpath,
                        node,
                        ctx,
                        f"call to tracer.{meth}() which is not a public Tracer "
                        "method (obs/events.py)",
                    )
                )
                continue
            if meth == "decision" and decision_actions and len(node.args) >= 2:
                action = node.args[1]
                if isinstance(action, ast.Constant) and isinstance(action.value, str):
                    if action.value not in decision_actions:
                        findings.append(
                            _finding(
                                relpath,
                                node,
                                ctx,
                                f"decision action {action.value!r} is not in "
                                "DECISION_ACTIONS; replay and counters would "
                                "not classify it",
                            )
                        )
    return findings


# ----------------------------------------------------------------------
# recorder protocol
# ----------------------------------------------------------------------
def _check_recorders(contexts: dict[str, FileContext]) -> list[Finding]:
    findings: list[Finding] = []
    for relpath in sorted(contexts):
        ctx = contexts[relpath]
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if "Protocol" in _base_names(node):
                continue
            methods = {m.name for m in node.body if isinstance(m, ast.FunctionDef)}
            record = next(
                (
                    m
                    for m in node.body
                    if isinstance(m, ast.FunctionDef) and m.name == "record"
                ),
                None,
            )
            if record is None:
                continue
            args = [a.arg for a in record.args.args]
            if len(args) != 2 or args[0] != "self":
                continue  # not the TraceRecorder shape
            # require the event parameter to look like one (annotation or name)
            param = record.args.args[1]
            ann_ok = param.annotation is not None and "Event" in ast.dump(
                param.annotation
            )
            name_ok = "event" in param.arg
            if not (ann_ok or name_ok):
                continue
            class_attr_names = {
                t.id
                for stmt in node.body
                if isinstance(stmt, ast.Assign)
                for t in stmt.targets
                if isinstance(t, ast.Name)
            } | {
                stmt.target.id
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            }
            has_enabled = "enabled" in class_attr_names or any(
                isinstance(n, ast.Attribute)
                and n.attr == "enabled"
                and isinstance(n.ctx, ast.Store)
                for n in ast.walk(node)
            )
            if "close" not in methods:
                findings.append(
                    _finding(
                        relpath,
                        node,
                        ctx,
                        f"recorder {node.name} defines record() but no close(); "
                        "the TraceRecorder protocol requires flush/release",
                    )
                )
            if not has_enabled:
                findings.append(
                    _finding(
                        relpath,
                        node,
                        ctx,
                        f"recorder {node.name} never sets `enabled`; the driver's "
                        "zero-overhead gate reads it to decide whether to trace",
                    )
                )
    return findings


def run_project_checks(contexts: dict[str, FileContext]) -> list[Finding]:
    """All RPR004 sub-checks over the analysed file set."""
    classes = _collect_classes(contexts)
    findings: list[Finding] = []
    findings.extend(_check_schedulers(contexts, classes))
    findings.extend(_check_policies(contexts, classes))
    findings.extend(_check_event_lockstep(contexts))
    findings.extend(_check_tracer_call_sites(contexts))
    findings.extend(_check_recorders(contexts))
    return findings

"""The ``repro-sched lint`` front end (also ``tools/run_lint.py``).

Usage::

    repro-sched lint [paths ...] [--baseline FILE] [--format human|json|sarif]
                     [--output FILE] [--jobs N] [--select RPR001,RPR004]
                     [--summary-cache DIR] [--report-unused-suppressions]
                     [--no-baseline] [--update-baseline] [--list-rules]
                     [--verbose]

Exit status: 0 when no active findings, 1 when there are, 2 on usage
errors.  The default baseline is ``tools/lint_baseline.json`` relative
to the repository root (located by walking up from the first path to a
``pyproject.toml``); ``--no-baseline`` shows the raw picture.
``--output`` writes the formatted report to a file (the human summary
still prints to stdout), which is how CI produces its SARIF artifact
without losing the terminal report.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.baseline import Baseline
from repro.lint.engine import LintReport, lint_paths, render_human, rule_catalogue
from repro.lint.findings import render_json
from repro.lint.sarif import render_sarif

__all__ = ["build_parser", "main", "rule_catalogue"]

DEFAULT_BASELINE_NAME = "tools/lint_baseline.json"


def find_default_baseline(paths: Sequence[str]) -> Path | None:
    """Walk up from the first path to the repo root's baseline file."""
    start = Path(paths[0]).resolve() if paths else Path.cwd()
    if start.is_file():
        start = start.parent
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate / DEFAULT_BASELINE_NAME
    return None


def sarif_uri_base(paths: Sequence[str]) -> str:
    """The prefix that turns root-relative finding paths back into
    repo-relative SARIF URIs (``lint/engine.py`` -> ``src/repro/...``).

    Only the single-directory-root case gets a prefix; multi-root runs
    keep bare relpaths rather than guessing.
    """
    if len(paths) != 1:
        return ""
    p = Path(paths[0])
    if not p.is_dir():
        return ""
    return p.as_posix().rstrip("/")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sched lint",
        description="repro-lint: determinism & protocol-conformance static analysis",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or package roots to analyse (default: src/repro)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="accepted-findings file (default: tools/lint_baseline.json "
        "at the repo root)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline; report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="absorb current findings into the baseline (new entries need "
        "justifications before the baseline passes) and prune stale ones",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="output format",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the formatted report to FILE and print the human "
        "summary to stdout",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyse files over N processes (deterministic merge; default 1)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule subset (e.g. RPR001,RPR004)",
    )
    parser.add_argument(
        "--summary-cache",
        default=None,
        metavar="DIR",
        help="content-addressed per-file analysis cache; a warm run "
        "re-analyses only changed files (bypassed under --select)",
    )
    parser.add_argument(
        "--report-unused-suppressions",
        action="store_true",
        help="flag repro-lint disable directives that no longer suppress "
        "anything (stale-directive audit; implies full rule set)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "--verbose", action="store_true", help="also show baselined findings"
    )
    return parser


def _render(report: LintReport, fmt: str, *, uri_base: str, verbose: bool) -> str:
    if fmt == "json":
        return render_json(
            report.active,
            suppressed=report.suppressed,
            baselined=len(report.baselined),
            files=report.files,
            stale_baseline=report.stale_baseline,
        )
    if fmt == "sarif":
        return render_sarif(report, uri_base=uri_base)
    return render_human(report, verbose=verbose)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule, title in rule_catalogue():
            print(f"{rule}  {title}")
        return 0

    select = None
    if args.select:
        select = [r.strip() for r in args.select.split(",") if r.strip()]
    if select is not None and args.report_unused_suppressions:
        print(
            "error: --report-unused-suppressions needs the full rule set "
            "(drop --select)",
            file=sys.stderr,
        )
        return 2

    baseline: Baseline | None = None
    if not args.no_baseline:
        baseline_path = (
            Path(args.baseline)
            if args.baseline
            else find_default_baseline(list(args.paths))
        )
        if baseline_path is not None:
            try:
                baseline = Baseline.load(baseline_path)
            except (ValueError, OSError) as exc:
                print(f"error: cannot load baseline: {exc}", file=sys.stderr)
                return 2

    try:
        report = lint_paths(
            args.paths,
            baseline=baseline,
            jobs=max(args.jobs, 1),
            select=select,
            summary_cache=args.summary_cache,
            report_unused_suppressions=args.report_unused_suppressions,
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        if baseline is None:
            print("error: --update-baseline needs a baseline path", file=sys.stderr)
            return 2
        all_findings = sorted(
            report.active + report.baselined, key=lambda f: f.sort_key()
        )
        added = baseline.absorb(all_findings)
        baseline.save()
        print(
            f"baseline updated: {len(baseline.entries)} entr(y/ies), "
            f"{added} new (fill in their justifications), "
            f"{len(report.stale_baseline)} stale pruned -> {baseline.path}"
        )
        return 0

    uri_base = sarif_uri_base(list(args.paths))
    if args.output is not None:
        Path(args.output).write_text(
            _render(report, args.format, uri_base=uri_base, verbose=args.verbose)
            + "\n",
            encoding="utf-8",
        )
        print(render_human(report, verbose=args.verbose))
    else:
        print(_render(report, args.format, uri_base=uri_base, verbose=args.verbose))
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""The ``repro-sched lint`` front end (also ``tools/run_lint.py``).

Usage::

    repro-sched lint [paths ...] [--baseline FILE] [--format human|json]
                     [--jobs N] [--select RPR001,RPR004] [--no-baseline]
                     [--update-baseline] [--list-rules] [--verbose]

Exit status: 0 when no active findings, 1 when there are, 2 on usage
errors.  The default baseline is ``tools/lint_baseline.json`` relative
to the repository root (located by walking up from the first path to a
``pyproject.toml``); ``--no-baseline`` shows the raw picture.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.baseline import Baseline
from repro.lint.engine import lint_paths, render_human
from repro.lint.findings import render_json
from repro.lint.project import RULE as PROJECT_RULE
from repro.lint.rules import PER_FILE_CHECKERS

DEFAULT_BASELINE_NAME = "tools/lint_baseline.json"


def rule_catalogue() -> list[tuple[str, str]]:
    """(rule id, one-line title) pairs, in rule-id order."""
    rows = [(c.rule, c.title) for c in PER_FILE_CHECKERS]
    rows.append((PROJECT_RULE, "cross-file protocol conformance"))
    rows.append(("RPR000", "framework diagnostics (parse/suppression/baseline)"))
    return sorted(rows)


def find_default_baseline(paths: Sequence[str]) -> Path | None:
    """Walk up from the first path to the repo root's baseline file."""
    start = Path(paths[0]).resolve() if paths else Path.cwd()
    if start.is_file():
        start = start.parent
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate / DEFAULT_BASELINE_NAME
    return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sched lint",
        description="repro-lint: determinism & protocol-conformance static analysis",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or package roots to analyse (default: src/repro)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="accepted-findings file (default: tools/lint_baseline.json "
        "at the repo root)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline; report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="absorb current findings into the baseline (new entries need "
        "justifications before the baseline passes) and prune stale ones",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyse files over N processes (deterministic merge; default 1)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule subset (e.g. RPR001,RPR004)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "--verbose", action="store_true", help="also show baselined findings"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule, title in rule_catalogue():
            print(f"{rule}  {title}")
        return 0

    select = None
    if args.select:
        select = [r.strip() for r in args.select.split(",") if r.strip()]

    baseline: Baseline | None = None
    if not args.no_baseline:
        baseline_path = (
            Path(args.baseline)
            if args.baseline
            else find_default_baseline(list(args.paths))
        )
        if baseline_path is not None:
            try:
                baseline = Baseline.load(baseline_path)
            except (ValueError, OSError) as exc:
                print(f"error: cannot load baseline: {exc}", file=sys.stderr)
                return 2

    try:
        report = lint_paths(
            args.paths, baseline=baseline, jobs=max(args.jobs, 1), select=select
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        if baseline is None:
            print("error: --update-baseline needs a baseline path", file=sys.stderr)
            return 2
        all_findings = sorted(
            report.active + report.baselined, key=lambda f: f.sort_key()
        )
        added = baseline.absorb(all_findings)
        baseline.save()
        print(
            f"baseline updated: {len(baseline.entries)} entr(y/ies), "
            f"{added} new (fill in their justifications), "
            f"{len(report.stale_baseline)} stale pruned -> {baseline.path}"
        )
        return 0

    if args.format == "json":
        print(
            render_json(
                report.active,
                suppressed=report.suppressed,
                baselined=len(report.baselined),
                files=report.files,
                stale_baseline=report.stale_baseline,
            )
        )
    else:
        print(render_human(report, verbose=args.verbose))
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Effect propagation and the interprocedural rules RPR007-RPR009.

:func:`propagate_effects` folds the per-function effect seeds extracted
by :mod:`repro.lint.callgraph` to a fixpoint over the call graph: a
function's effect set is the union of its own seeds and every resolved
callee's set.  The lattice is finite (five atoms, union-monotone), so
the iteration terminates regardless of recursion cycles.

On top of the fixpoint:

* **RPR007** -- a *patrolled* function (decision-path file per
  ``DECISION_PATH_RE``, or a ``*Tracer*`` method) calls outside the
  patrolled perimeter into code that transitively reaches a
  nondeterminism taint atom (rng / wall-clock / hash-order).  Calls
  *within* the perimeter are exempt: the callee carries its own finding
  (or its seed is already RPR001/RPR002's business), so each taint
  chain is reported exactly once, at the point where it crosses into
  unpatrolled code.
* **RPR008** -- a broad ``except`` handler (``Exception`` /
  ``BaseException`` / bare) that can swallow a fault without re-raise,
  quarantine, or a counters increment, either directly in the handler
  body or transitively through any function the handler calls
  (:func:`sanction_closure`).
* **RPR009** -- contract drift: functions the cache/fingerprint layer
  assumes pure (``Scheduler.config()`` / ``describe()``, pipeline-stage
  ``config()``, anything named ``*fingerprint*``) that transitively
  acquire *any* effect.

Findings carry the shortest seed chain in the message (a breadth-first
walk over deterministic adjacency), but messages stay out of the
fingerprint, so a chain that lengthens by one frame does not invalidate
a baseline entry.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.lint.callgraph import CallGraph, Seed
from repro.lint.checker import DECISION_PATH_RE
from repro.lint.findings import Finding

#: the atoms that make a decision path irreproducible (filesystem and
#: global mutation are real effects but not *schedule-steering* ones)
TAINT_EFFECTS = frozenset({"rng", "wall-clock", "hash-order"})

#: (relpath, line) -> stripped source text, provided by the engine
SnippetFn = Callable[[str, int], str]


def propagate_effects(graph: CallGraph) -> dict[str, frozenset[str]]:
    """The transitive effect set of every node, to fixpoint."""
    effects: dict[str, frozenset[str]] = {
        nid: frozenset(s.effect for s in node.seeds)
        for nid, node in graph.nodes.items()
    }
    changed = True
    while changed:
        changed = False
        for nid in graph.order:
            acc = effects[nid]
            for _, callee in graph.resolved.get(nid, ()):
                acc = acc | effects[callee]
            if acc != effects[nid]:
                effects[nid] = acc
                changed = True
    return effects


def sanction_closure(graph: CallGraph) -> frozenset[str]:
    """Nodes that re-raise, bump a counter, or quarantine -- directly or
    through any call chain (what a broad handler may safely call)."""
    sanctioned = {
        nid
        for nid, node in graph.nodes.items()
        if node.raises or node.counter_increment or node.quarantine
    }
    changed = True
    while changed:
        changed = False
        for nid in graph.order:
            if nid in sanctioned:
                continue
            for _, callee in graph.resolved.get(nid, ()):
                if callee in sanctioned:
                    sanctioned.add(nid)
                    changed = True
                    break
    return frozenset(sanctioned)


def seed_chain(
    graph: CallGraph,
    effects: dict[str, frozenset[str]],
    start: str,
    atoms: frozenset[str],
) -> tuple[tuple[str, ...], Seed]:
    """Shortest call chain from *start* to a seed in *atoms* (BFS over
    deterministic adjacency, so the chosen witness never flaps)."""
    queue: deque[tuple[str, tuple[str, ...]]] = deque([(start, (start,))])
    seen = {start}
    while queue:
        nid, path = queue.popleft()
        node = graph.nodes[nid]
        for seed in node.seeds:
            if seed.effect in atoms:
                return path, seed
        for _, callee in graph.resolved.get(nid, ()):
            if callee not in seen and effects[callee] & atoms:
                seen.add(callee)
                queue.append((callee, path + (callee,)))
    # unreachable when effects[start] & atoms is nonempty, but keep a
    # defensible fallback rather than an assert
    return (start,), Seed(sorted(atoms)[0], "unknown source", 0)


def _is_patrolled(graph: CallGraph, nid: str) -> bool:
    """Decision-path functions and trace-emitter methods."""
    relpath = graph.node_relpath[nid].replace("\\", "/")
    if DECISION_PATH_RE.search(relpath):
        return True
    node = graph.nodes[nid]
    return node.cls is not None and "Tracer" in node.cls


def _is_contract(graph: CallGraph, nid: str) -> bool:
    """Functions the cache/fingerprint layer assumes pure (RPR009)."""
    node = graph.nodes[nid]
    if "fingerprint" in node.name:
        return True
    cls = graph.class_of(nid)
    if cls is None:
        return False
    if node.name in ("config", "describe") and cls.scheduler_like:
        return True
    if node.name == "config" and (
        cls.name.endswith("Stage") or cls.name.endswith("Pipeline")
    ):
        return True
    return False


def _chain_text(graph: CallGraph, chain: tuple[str, ...]) -> str:
    return " -> ".join(graph.nodes[nid].qualname for nid in chain)


def check_transitive_taint(
    graph: CallGraph,
    effects: dict[str, frozenset[str]],
    snippet_of: SnippetFn,
) -> list[Finding]:
    """RPR007: nondeterminism taint crossing into a patrolled function."""
    findings: list[Finding] = []
    for nid in graph.order:
        if not _is_patrolled(graph, nid):
            continue
        if _is_contract(graph, nid):
            continue  # RPR009's beat; one finding per defect
        relpath = graph.node_relpath[nid]
        caller = graph.nodes[nid]
        reported: set[tuple[int, str]] = set()
        for site, callee in graph.resolved.get(nid, ()):
            atoms = effects[callee] & TAINT_EFFECTS
            if not atoms:
                continue
            if _is_patrolled(graph, callee):
                continue  # the callee carries its own finding
            if (site.line, callee) in reported:
                continue
            reported.add((site.line, callee))
            chain, seed = seed_chain(graph, effects, callee, atoms)
            findings.append(
                Finding(
                    rule="RPR007",
                    path=relpath,
                    line=site.line,
                    col=site.col,
                    message=(
                        f"call into {graph.nodes[callee].qualname}() "
                        f"transitively reaches {seed.detail} "
                        f"[{'/'.join(sorted(atoms))}] via "
                        f"{_chain_text(graph, chain)}; decision and trace "
                        "paths must take time and randomness from the "
                        "engine, not ambient state"
                    ),
                    snippet=snippet_of(relpath, site.line),
                    symbol=caller.qualname,
                )
            )
    return findings


def check_exception_flow(
    graph: CallGraph, snippet_of: SnippetFn
) -> list[Finding]:
    """RPR008: broad handlers that can swallow faults untraced."""
    sanctioned = sanction_closure(graph)
    findings: list[Finding] = []
    for nid in graph.order:
        node = graph.nodes[nid]
        if not node.broad_excepts:
            continue
        relpath = graph.node_relpath[nid]
        for handler in node.broad_excepts:
            if handler.sanctioned:
                continue
            ok = False
            for site in handler.handler_calls:
                for callee in graph.resolve_site(relpath, node, site):
                    if callee in sanctioned:
                        ok = True
                        break
                if ok:
                    break
            if ok:
                continue
            what = (
                "bare `except:`"
                if handler.kind == "bare"
                else f"broad `except {handler.kind}`"
            )
            findings.append(
                Finding(
                    rule="RPR008",
                    path=relpath,
                    line=handler.line,
                    col=handler.col,
                    message=(
                        f"{what} swallows faults without re-raise, "
                        "quarantine, or a counters increment (directly or "
                        "via anything it calls); narrow the exception or "
                        "record the fault so degraded runs stay observable"
                    ),
                    snippet=snippet_of(relpath, handler.line),
                    symbol=node.qualname,
                )
            )
    return findings


def check_contract_drift(
    graph: CallGraph,
    effects: dict[str, frozenset[str]],
    snippet_of: SnippetFn,
) -> list[Finding]:
    """RPR009: assumed-pure fingerprint inputs acquiring effects."""
    findings: list[Finding] = []
    for nid in graph.order:
        if not _is_contract(graph, nid):
            continue
        acquired = effects[nid]
        if not acquired:
            continue
        relpath = graph.node_relpath[nid]
        node = graph.nodes[nid]
        chain, seed = seed_chain(graph, effects, nid, acquired)
        findings.append(
            Finding(
                rule="RPR009",
                path=relpath,
                line=node.line,
                col=node.col,
                message=(
                    f"{node.qualname}() feeds cache fingerprints but "
                    f"acquires effects [{'/'.join(sorted(acquired))}] "
                    f"({seed.detail} via {_chain_text(graph, chain)}); "
                    "fingerprint inputs must stay pure or the cache "
                    "serves stale results for live configurations"
                ),
                snippet=snippet_of(relpath, node.line),
                symbol=node.qualname,
            )
        )
    return findings

"""Project-wide symbol table and call graph for interprocedural rules.

Per-file checkers see one module at a time, so a decision path that
calls, three frames down, a helper touching ``time.time()`` is
invisible to them.  This module builds the whole-program structure the
effect analysis (:mod:`repro.lint.effects`) runs over:

* :func:`build_module_summary` -- one pass over a parsed file
  extracting, per function/method, its **call sites**, its local
  **effect seeds** (wall-clock reads, RNG draws, filesystem mutations,
  ``global`` writes, unordered set iteration), its fault-handling
  markers (``raise`` statements, ``GridCounters``-style increments,
  quarantine renames) and every **broad except handler**.  Summaries
  are plain picklable data, so they travel through the worker pool and
  the on-disk summary cache (:mod:`repro.lint.summaries`) unchanged.
* :class:`CallGraph` -- links summaries into a project-wide graph:
  dotted imports resolve across modules by module-name suffix matching
  (lint roots are package-relative, imports are absolute), ``self.m()``
  dispatches through the class hierarchy to the nearest inherited
  definition *and* every subclass override (dynamic dispatch is an
  over-approximation by design), and modules that register builders
  with ``schedulers/registry.py``'s ``@register`` decorator get edges
  from their dispatch functions to **all** builders, because the
  ``_BUILDERS`` dict indirection defeats syntactic resolution.

Everything here is deliberately deterministic: every iteration order is
source order or explicitly sorted, so analysis output is byte-identical
across ``PYTHONHASHSEED`` values and worker counts.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from repro.lint.checker import FileContext
from repro.lint.rules import _NUMPY_RANDOM_OK, UnorderedIterationChecker
from repro.lint.suppress import Suppressions, parse_suppressions

# ----------------------------------------------------------------------
# the effect lattice's atoms
# ----------------------------------------------------------------------

RNG = "rng"
WALL_CLOCK = "wall-clock"
FILESYSTEM = "filesystem"
GLOBAL_MUTATION = "global-mutation"
HASH_ORDER = "hash-order"

#: every atom a function can acquire; "pure" is the empty set
EFFECT_ATOMS = frozenset({RNG, WALL_CLOCK, FILESYSTEM, GLOBAL_MUTATION, HASH_ORDER})

#: known stdlib signatures seeding the lattice, keyed (module leaf, attr)
_WALLCLOCK_CALLS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)

_RNG_CALLS = frozenset({("os", "urandom"), ("uuid", "uuid1"), ("uuid", "uuid4")})

#: filesystem *mutations* (plus ``open``, which can write); pure reads
#: like ``Path.read_bytes`` are deliberately absent -- a fingerprint
#: helper hashing file contents is content-addressed, not impure
_FS_CALLS = frozenset(
    {
        ("os", "remove"),
        ("os", "unlink"),
        ("os", "rename"),
        ("os", "replace"),
        ("os", "rmdir"),
        ("os", "mkdir"),
        ("os", "makedirs"),
        ("os", "fdopen"),
        ("shutil", "rmtree"),
        ("shutil", "move"),
        ("shutil", "copy"),
        ("shutil", "copyfile"),
        ("shutil", "copytree"),
        ("tempfile", "mkstemp"),
        ("tempfile", "mkdtemp"),
        ("tempfile", "NamedTemporaryFile"),
        ("tempfile", "TemporaryDirectory"),
    }
)

#: receiver-agnostic mutating method names (Path and friends); ``rename``
#: / ``replace`` are excluded -- ``str.replace`` would drown the signal
_FS_METHODS = frozenset(
    {
        "write_text",
        "write_bytes",
        "unlink",
        "touch",
        "mkdir",
        "rmtree",
        "symlink_to",
        "hardlink_to",
    }
)

#: a seed at a line suppressed for any of these proxy rules does not
#: propagate: the author already argued the site is safe, and taint from
#: an argued-safe site would make RPR007 findings unsuppressible
_PROXY_RULES: dict[str, tuple[str, ...]] = {
    HASH_ORDER: ("RPR001", "RPR007", "RPR009"),
    RNG: ("RPR002", "RPR007", "RPR009"),
    WALL_CLOCK: ("RPR002", "RPR007", "RPR009"),
    FILESYSTEM: ("RPR007", "RPR009"),
    GLOBAL_MUTATION: ("RPR007", "RPR009"),
}


# ----------------------------------------------------------------------
# summary records (picklable plain data)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CallSite:
    """One syntactic call, pre-resolved as far as one file allows."""

    #: "local" (module-level name), "dotted" (absolute import path),
    #: "self" (method on the enclosing class), "registry" (synthetic
    #: dispatch edge added by the linker)
    kind: str
    target: str
    line: int
    col: int


@dataclass(frozen=True)
class Seed:
    """A local effect source inside one function."""

    effect: str
    detail: str
    line: int


@dataclass(frozen=True)
class BroadExcept:
    """One ``except Exception`` / ``except BaseException`` / bare handler."""

    line: int
    col: int
    kind: str
    #: the handler body itself re-raises, increments a counter, or
    #: quarantines -- no graph walk needed
    sanctioned: bool
    #: calls inside the handler body, for transitive sanction lookup
    handler_calls: tuple[CallSite, ...]


@dataclass(frozen=True)
class FunctionNode:
    """Summary of one module-level function or method."""

    qualname: str
    name: str
    line: int
    col: int
    #: enclosing class name, or None for module-level functions
    cls: str | None
    calls: tuple[CallSite, ...]
    seeds: tuple[Seed, ...]
    raises: bool
    counter_increment: bool
    quarantine: bool
    broad_excepts: tuple[BroadExcept, ...]


@dataclass(frozen=True)
class ClassNode:
    """Name, bases and methods of one class (for method resolution)."""

    name: str
    line: int
    #: base refs as written, from-imports already expanded to dotted paths
    bases: tuple[str, ...]
    methods: tuple[str, ...]
    #: assigns ``scheme_id`` or is named ``*Scheduler`` (RPR009 contract)
    scheduler_like: bool


@dataclass(frozen=True)
class ModuleSummary:
    """Everything the linker needs to know about one analysed file."""

    relpath: str
    module: str
    functions: dict[str, FunctionNode]
    classes: dict[str, ClassNode]
    from_imports: dict[str, str]
    module_aliases: dict[str, str]
    #: functions decorated ``@register("<scheme>")`` in this module
    registered_builders: tuple[str, ...]
    #: suppression-directive lines consumed by seed exclusion (feeds the
    #: stale-directive audit: a directive silencing a seed is in use)
    used_directive_lines: tuple[int, ...]


def module_name(relpath: str) -> str:
    """Dotted module name of a lint-root-relative path."""
    mod = relpath[:-3] if relpath.endswith(".py") else relpath
    mod = mod.replace("/", ".")
    if mod.endswith(".__init__"):
        mod = mod[: -len(".__init__")]
    elif mod == "__init__":
        mod = ""
    return mod


def _attr_parts(node: ast.expr) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``; None when the root is not a Name."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return list(reversed(parts))


def _registered_scheme(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    """The scheme id of an ``@register("...")`` decorated builder."""
    for dec in fn.decorator_list:
        if (
            isinstance(dec, ast.Call)
            and isinstance(dec.func, ast.Name)
            and dec.func.id == "register"
            and dec.args
            and isinstance(dec.args[0], ast.Constant)
            and isinstance(dec.args[0].value, str)
        ):
            return dec.args[0].value
    return None


def _assigns_scheme_id(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for t in targets:
            if isinstance(t, ast.Name) and t.id == "scheme_id":
                return True
    return False


class _FunctionExtractor:
    """Walks one function body collecting calls, seeds and handlers."""

    def __init__(
        self, ctx: FileContext, suppressions: Suppressions, used_lines: set[int]
    ) -> None:
        self.ctx = ctx
        self.suppressions = suppressions
        self.used_lines = used_lines
        #: RPR001's consumer analysis, reused for hash-order seeds
        self._order_checker = UnorderedIterationChecker(ctx)

    # -- call-site extraction -------------------------------------------
    def call_site(self, node: ast.Call) -> CallSite | None:
        fn = node.func
        ctx = self.ctx
        if isinstance(fn, ast.Name):
            origin = ctx.from_imports.get(fn.id)
            if origin is not None:
                return CallSite("dotted", origin, fn.lineno, fn.col_offset)
            if fn.id in ctx.module_aliases:
                return None
            return CallSite("local", fn.id, fn.lineno, fn.col_offset)
        if isinstance(fn, ast.Attribute):
            chain = _attr_parts(fn)
            if chain is None:
                return None
            root, rest = chain[0], chain[1:]
            if root in ("self", "cls") and len(rest) == 1:
                return CallSite("self", rest[0], fn.lineno, fn.col_offset)
            if root in ctx.module_aliases:
                dotted = ".".join([ctx.module_aliases[root], *rest])
                return CallSite("dotted", dotted, fn.lineno, fn.col_offset)
            if root in ctx.from_imports:
                dotted = ".".join([ctx.from_imports[root], *rest])
                return CallSite("dotted", dotted, fn.lineno, fn.col_offset)
            return CallSite("local", ".".join(chain), fn.lineno, fn.col_offset)
        return None

    # -- effect seeds ----------------------------------------------------
    def classify_call(self, node: ast.Call) -> Seed | None:
        fn = node.func
        ctx = self.ctx
        if isinstance(fn, ast.Name):
            if fn.id == "open":
                return Seed(FILESYSTEM, "open()", node.lineno)
            origin = ctx.from_imports.get(fn.id)
            if origin is not None:
                mod, _, attr = origin.rpartition(".")
                return self._classify_dotted(mod, attr, node)
            return None
        if not isinstance(fn, ast.Attribute):
            return None
        if fn.attr in _FS_METHODS:
            return Seed(FILESYSTEM, f".{fn.attr}()", node.lineno)
        base = fn.value
        if ctx.resolves_to_module(base, "numpy.random"):
            if fn.attr == "default_rng":
                if not (node.args or node.keywords):
                    return Seed(RNG, "unseeded numpy.random.default_rng()", node.lineno)
                return None
            if fn.attr not in _NUMPY_RANDOM_OK:
                return Seed(RNG, f"numpy.random.{fn.attr}()", node.lineno)
            return None
        if isinstance(base, ast.Name):
            mod = ctx.module_aliases.get(base.id)
            imported = ctx.from_imports.get(base.id, "")
            if mod is not None or imported:
                return self._classify_dotted(mod or imported, fn.attr, node)
        return None

    @staticmethod
    def _classify_dotted(mod: str, attr: str, node: ast.Call) -> Seed | None:
        leaf = mod.rsplit(".", 1)[-1] if mod else ""
        if mod == "random":
            if attr == "Random":
                if node.args or node.keywords:
                    return None  # seeded instance: the sanctioned pattern
                return Seed(RNG, "unseeded random.Random()", node.lineno)
            return Seed(RNG, f"random.{attr}()", node.lineno)
        if mod == "secrets":
            return Seed(RNG, f"secrets.{attr}()", node.lineno)
        if mod == "numpy.random":
            if attr == "default_rng":
                if node.args or node.keywords:
                    return None
                return Seed(RNG, "unseeded numpy.random.default_rng()", node.lineno)
            if attr not in _NUMPY_RANDOM_OK:
                return Seed(RNG, f"numpy.random.{attr}()", node.lineno)
            return None
        if attr == "SystemRandom":
            return Seed(RNG, "random.SystemRandom()", node.lineno)
        if (leaf, attr) in _WALLCLOCK_CALLS:
            return Seed(WALL_CLOCK, f"{leaf}.{attr}()", node.lineno)
        if (leaf, attr) in _RNG_CALLS:
            return Seed(RNG, f"{leaf}.{attr}()", node.lineno)
        if (leaf, attr) in _FS_CALLS:
            return Seed(FILESYSTEM, f"{leaf}.{attr}()", node.lineno)
        return None

    def _set_reason(self, node: ast.expr) -> str | None:
        """Why *node* is hash-ordered -- sets only, no dict views.

        Taint seeding is stricter than RPR001 on purpose: dict views are
        construction-ordered and usually fine, and a transitive rule
        multiplies every false positive by its caller count.
        """
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set expression"
        if isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Name) and fn.id in ("set", "frozenset"):
                return f"{fn.id}(...)"
            return None
        if isinstance(node, ast.Name):
            if self._order_checker._local_set_name(node):
                return f"{node.id} (set-typed local)"
            return None
        if self.ctx.is_set_expr(node):
            return "a set-typed value"
        return None

    def _hash_order_seed(self, consumer: ast.AST, source: ast.expr) -> Seed | None:
        reason = self._set_reason(source)
        if reason is None:
            return None
        if self._order_checker._sanctioned(consumer):
            return None
        lineno = getattr(source, "lineno", getattr(consumer, "lineno", 0))
        return Seed(HASH_ORDER, f"unsorted iteration over {reason}", lineno)

    def _seed_suppressed(self, seed: Seed) -> bool:
        for rule in _PROXY_RULES[seed.effect]:
            d = self.suppressions.covering(rule, seed.line)
            if d is not None:
                self.used_lines.add(d.line)
                return True
        return False

    # -- fault-handling markers ------------------------------------------
    @staticmethod
    def _counter_increment(node: ast.AugAssign) -> bool:
        if not isinstance(node.op, ast.Add):
            return False
        if not isinstance(node.target, ast.Attribute):
            return False
        parts = _attr_parts(node.target)
        return parts is not None and any("counter" in p for p in parts)

    @staticmethod
    def _is_quarantine_call(node: ast.Call) -> bool:
        fn = node.func
        name = None
        if isinstance(fn, ast.Name):
            name = fn.id
        elif isinstance(fn, ast.Attribute):
            name = fn.attr
        if name is not None and "quarantine" in name:
            return True
        if name in ("rename", "replace"):
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Constant)
                    and isinstance(sub.value, str)
                    and ".corrupt" in sub.value
                ):
                    return True
        return False

    def _broad_kind(self, handler: ast.ExceptHandler) -> str | None:
        t = handler.type
        if t is None:
            return "bare"
        elts = list(t.elts) if isinstance(t, ast.Tuple) else [t]
        for e in elts:
            name = None
            if isinstance(e, ast.Name):
                name = e.id
            elif isinstance(e, ast.Attribute):
                name = e.attr
            if name in ("Exception", "BaseException"):
                return name
        return None

    def _broad_except(self, handler: ast.ExceptHandler) -> BroadExcept | None:
        kind = self._broad_kind(handler)
        if kind is None:
            return None
        sanctioned = False
        handler_calls: list[CallSite] = []
        for stmt in handler.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Raise):
                    sanctioned = True
                elif isinstance(sub, ast.AugAssign) and self._counter_increment(sub):
                    sanctioned = True
                elif isinstance(sub, ast.Call):
                    if self._is_quarantine_call(sub):
                        sanctioned = True
                    site = self.call_site(sub)
                    if site is not None:
                        handler_calls.append(site)
        return BroadExcept(
            line=handler.lineno,
            col=handler.col_offset,
            kind=kind,
            sanctioned=sanctioned,
            handler_calls=tuple(handler_calls),
        )

    # -- the per-function pass -------------------------------------------
    def extract(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef, cls: str | None
    ) -> FunctionNode:
        qualname = f"{cls}.{fn.name}" if cls else fn.name
        calls: list[CallSite] = []
        seeds: list[Seed] = []
        raises = False
        counter_increment = False
        quarantine = False
        broads: list[BroadExcept] = []
        for sub in ast.walk(fn):
            if isinstance(sub, ast.Call):
                site = self.call_site(sub)
                if site is not None:
                    calls.append(site)
                seed = self.classify_call(sub)
                if seed is not None and not self._seed_suppressed(seed):
                    seeds.append(seed)
                if self._is_quarantine_call(sub):
                    quarantine = True
                fname = sub.func
                if (
                    isinstance(fname, ast.Name)
                    and fname.id in ("list", "tuple", "enumerate", "reversed")
                    and sub.args
                ):
                    hseed = self._hash_order_seed(sub, sub.args[0])
                    if hseed is not None and not self._seed_suppressed(hseed):
                        seeds.append(hseed)
            elif isinstance(sub, ast.Raise):
                raises = True
            elif isinstance(sub, ast.AugAssign):
                if self._counter_increment(sub):
                    counter_increment = True
            elif isinstance(sub, ast.Global):
                seed = Seed(
                    GLOBAL_MUTATION,
                    "global " + ", ".join(sub.names),
                    sub.lineno,
                )
                if not self._seed_suppressed(seed):
                    seeds.append(seed)
            elif isinstance(sub, ast.ExceptHandler):
                be = self._broad_except(sub)
                if be is not None:
                    broads.append(be)
            elif isinstance(sub, ast.For):
                hseed = self._hash_order_seed(sub, sub.iter)
                if hseed is not None and not self._seed_suppressed(hseed):
                    seeds.append(hseed)
            elif isinstance(sub, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
                for gen in sub.generators:
                    hseed = self._hash_order_seed(sub, gen.iter)
                    if hseed is not None and not self._seed_suppressed(hseed):
                        seeds.append(hseed)
        return FunctionNode(
            qualname=qualname,
            name=fn.name,
            line=fn.lineno,
            col=fn.col_offset,
            cls=cls,
            calls=tuple(calls),
            seeds=tuple(seeds),
            raises=raises,
            counter_increment=counter_increment,
            quarantine=quarantine,
            broad_excepts=tuple(broads),
        )


def _base_ref(ctx: FileContext, node: ast.expr) -> str | None:
    """A class base expression as a resolvable string ref."""
    if isinstance(node, ast.Subscript):  # Generic[...] et al.
        node = node.value
    if isinstance(node, ast.Name):
        return ctx.from_imports.get(node.id, node.id)
    parts = _attr_parts(node)
    if parts is None:
        return None
    root, rest = parts[0], parts[1:]
    if root in ctx.module_aliases:
        return ".".join([ctx.module_aliases[root], *rest])
    if root in ctx.from_imports:
        return ".".join([ctx.from_imports[root], *rest])
    return ".".join(parts)


def build_module_summary(ctx: FileContext) -> ModuleSummary:
    """Extract the interprocedural summary of one parsed file."""
    suppressions = parse_suppressions(ctx.source, ctx.relpath)
    used_lines: set[int] = set()
    extractor = _FunctionExtractor(ctx, suppressions, used_lines)
    functions: dict[str, FunctionNode] = {}
    classes: dict[str, ClassNode] = {}
    builders: list[str] = []
    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            node = extractor.extract(stmt, cls=None)
            functions[node.qualname] = node
            if _registered_scheme(stmt) is not None:
                builders.append(stmt.name)
        elif isinstance(stmt, ast.ClassDef):
            methods: list[str] = []
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fnode = extractor.extract(sub, cls=stmt.name)
                    functions[fnode.qualname] = fnode
                    methods.append(sub.name)
            bases = tuple(
                ref
                for ref in (_base_ref(ctx, b) for b in stmt.bases)
                if ref is not None
            )
            classes[stmt.name] = ClassNode(
                name=stmt.name,
                line=stmt.lineno,
                bases=bases,
                methods=tuple(methods),
                scheduler_like=(
                    stmt.name.endswith("Scheduler") or _assigns_scheme_id(stmt)
                ),
            )
    return ModuleSummary(
        relpath=ctx.relpath,
        module=module_name(ctx.relpath),
        functions=functions,
        classes=classes,
        from_imports=dict(ctx.from_imports),
        module_aliases=dict(ctx.module_aliases),
        registered_builders=tuple(builders),
        used_directive_lines=tuple(sorted(used_lines)),
    )


# ----------------------------------------------------------------------
# linking
# ----------------------------------------------------------------------

ClassRef = tuple[str, str]  # (relpath, class name)


class CallGraph:
    """Module summaries linked into one project-wide call graph."""

    def __init__(self, summaries: dict[str, ModuleSummary]) -> None:
        self.summaries: dict[str, ModuleSummary] = dict(sorted(summaries.items()))
        self.nodes: dict[str, FunctionNode] = {}
        self.node_relpath: dict[str, str] = {}
        for relpath, s in self.summaries.items():
            for qual, fnode in s.functions.items():
                nid = f"{relpath}::{qual}"
                self.nodes[nid] = fnode
                self.node_relpath[nid] = relpath
        #: deterministic node iteration order for every downstream pass
        self.order: list[str] = sorted(self.nodes)
        self._by_module: dict[str, str] = {
            s.module: relpath for relpath, s in self.summaries.items()
        }
        self._class_index: dict[ClassRef, ClassNode] = {}
        self._classes_by_name: dict[str, list[ClassRef]] = {}
        for relpath, s in self.summaries.items():
            for cname, cnode in s.classes.items():
                ref = (relpath, cname)
                self._class_index[ref] = cnode
                self._classes_by_name.setdefault(cname, []).append(ref)
        self._bases: dict[ClassRef, tuple[ClassRef, ...]] = {}
        self._subclasses: dict[ClassRef, list[ClassRef]] = {}
        self._resolve_hierarchy()
        #: caller node id -> [(call site, callee node id)], sorted stable
        self.resolved: dict[str, list[tuple[CallSite, str]]] = {}
        self._link()

    # -- module / class resolution ---------------------------------------
    def _match_module(self, dotted: str) -> str | None:
        """The relpath whose module name best matches *dotted*.

        Lint relpaths are root-relative (``sim/driver.py`` ->
        ``sim.driver``) while imports are absolute
        (``repro.sim.driver``), so matching is by dotted suffix; exact
        beats suffix, longer module names beat shorter, and ties break
        lexicographically so output never depends on dict order.
        """
        rel = self._by_module.get(dotted)
        if rel is not None:
            return rel
        best: tuple[int, str, str] | None = None
        for mod, relpath in self._by_module.items():
            if not mod:
                continue
            if dotted.endswith("." + mod) or mod.endswith("." + dotted):
                cand = (len(mod), mod, relpath)
                if best is None or cand > best:
                    best = cand
        return best[2] if best is not None else None

    def _resolve_class_ref(self, relpath: str, ref: str) -> ClassRef | None:
        if "." not in ref:
            if ref in self.summaries[relpath].classes:
                return (relpath, ref)
            refs = self._classes_by_name.get(ref, [])
            if len(refs) == 1:
                return refs[0]
            return None
        mod, _, cname = ref.rpartition(".")
        target = self._match_module(mod)
        if target is not None and cname in self.summaries[target].classes:
            return (target, cname)
        return None

    def _resolve_hierarchy(self) -> None:
        for ref in sorted(self._class_index):
            relpath, _ = ref
            resolved: list[ClassRef] = []
            for base in self._class_index[ref].bases:
                rb = self._resolve_class_ref(relpath, base)
                if rb is not None:
                    resolved.append(rb)
            self._bases[ref] = tuple(resolved)
            for rb in resolved:
                self._subclasses.setdefault(rb, []).append(ref)

    def _ancestors(self, ref: ClassRef) -> list[ClassRef]:
        """Breadth-first base classes, nearest first, cycle-safe."""
        out: list[ClassRef] = []
        seen: set[ClassRef] = {ref}
        frontier = list(self._bases.get(ref, ()))
        while frontier:
            nxt: list[ClassRef] = []
            for c in frontier:
                if c in seen:
                    continue
                seen.add(c)
                out.append(c)
                nxt.extend(self._bases.get(c, ()))
            frontier = nxt
        return out

    def _descendants(self, ref: ClassRef) -> list[ClassRef]:
        out: list[ClassRef] = []
        seen: set[ClassRef] = {ref}
        frontier = list(self._subclasses.get(ref, ()))
        while frontier:
            nxt: list[ClassRef] = []
            for c in sorted(frontier):
                if c in seen:
                    continue
                seen.add(c)
                out.append(c)
                nxt.extend(self._subclasses.get(c, ()))
            frontier = nxt
        return out

    def _method_node(self, ref: ClassRef, meth: str) -> str | None:
        relpath, cname = ref
        qual = f"{cname}.{meth}"
        if qual in self.summaries[relpath].functions:
            return f"{relpath}::{qual}"
        return None

    def class_of(self, nid: str) -> ClassNode | None:
        """The :class:`ClassNode` a method node belongs to, if any."""
        node = self.nodes[nid]
        if node.cls is None:
            return None
        return self.summaries[self.node_relpath[nid]].classes.get(node.cls)

    # -- call-site resolution --------------------------------------------
    def _resolve_in_module(self, relpath: str, tail: list[str]) -> tuple[str, ...]:
        s = self.summaries[relpath]
        if len(tail) == 1:
            name = tail[0]
            if name in s.functions and s.functions[name].cls is None:
                return (f"{relpath}::{name}",)
            if name in s.classes:
                init = self._resolve_method_nearest((relpath, name), "__init__")
                return (init,) if init is not None else ()
            return ()
        if len(tail) == 2:
            cname, meth = tail
            if cname in s.classes:
                hit = self._resolve_method_nearest((relpath, cname), meth)
                return (hit,) if hit is not None else ()
        return ()

    def _resolve_method_nearest(self, ref: ClassRef, meth: str) -> str | None:
        for c in (ref, *self._ancestors(ref)):
            nid = self._method_node(c, meth)
            if nid is not None:
                return nid
        return None

    def _resolve_dotted(self, target: str) -> tuple[str, ...]:
        parts = target.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:cut])
            relpath = self._match_module(mod)
            if relpath is None:
                continue
            hits = self._resolve_in_module(relpath, parts[cut:])
            if hits:
                return hits
        return ()

    def resolve_site(
        self, relpath: str, caller: FunctionNode, site: CallSite
    ) -> tuple[str, ...]:
        """Callee node ids of one call site (possibly several for
        dynamic self-dispatch; empty for externals/builtins)."""
        if site.kind == "dotted":
            return self._resolve_dotted(site.target)
        if site.kind == "local":
            return self._resolve_in_module(relpath, site.target.split("."))
        if site.kind == "self":
            if caller.cls is None:
                return ()
            ref = (relpath, caller.cls)
            if ref not in self._class_index:
                return ()
            hits: set[str] = set()
            nearest = self._resolve_method_nearest(ref, site.target)
            if nearest is not None:
                hits.add(nearest)
            # dynamic dispatch: every subclass override may be the one
            # that actually runs
            for sub in self._descendants(ref):
                nid = self._method_node(sub, site.target)
                if nid is not None:
                    hits.add(nid)
            return tuple(sorted(hits))
        if site.kind == "registry":
            return (site.target,) if site.target in self.nodes else ()
        return ()

    def _link(self) -> None:
        for nid in self.order:
            relpath = self.node_relpath[nid]
            fnode = self.nodes[nid]
            edges: list[tuple[CallSite, str]] = []
            for site in fnode.calls:
                for callee in self.resolve_site(relpath, fnode, site):
                    edges.append((site, callee))
            self.resolved[nid] = edges
        # registry indirection: dispatch functions reach *all* builders
        for relpath, s in self.summaries.items():
            if not s.registered_builders:
                continue
            builder_ids = [
                f"{relpath}::{b}"
                for b in sorted(s.registered_builders)
                if f"{relpath}::{b}" in self.nodes
            ]
            for qual in sorted(s.functions):
                fnode = s.functions[qual]
                if fnode.name in s.registered_builders:
                    continue
                nid = f"{relpath}::{qual}"
                for bid in builder_ids:
                    edge = CallSite("registry", bid, fnode.line, fnode.col)
                    self.resolved[nid].append((edge, bid))


def build_call_graph(summaries: Iterable[ModuleSummary]) -> CallGraph:
    """Link *summaries* (any iterable) into a :class:`CallGraph`."""
    return CallGraph({s.relpath: s for s in summaries})

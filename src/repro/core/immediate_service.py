"""The Immediate Service (IS) comparator -- Chiang & Vernon.

The paper compares SS against "immediate service": every arriving job is
given an immediate timeslice of 10 minutes, suspending one or more
running jobs if needed; victims are the running jobs with the lowest
*instantaneous xfactor*, ``(wait + accrued run) / accrued run`` -- the
jobs that have already received the most service relative to their wait.

The published description is a sketch, so this implementation pins down
the unstated details (each choice documented in DESIGN.md section 3):

* a job that has just (re)started is **protected** for the timeslice
  (10 minutes): it cannot be suspended during that window, which is what
  "given a timeslice" must mean for the guarantee to exist;
* on arrival, if free processors do not cover the request, unprotected
  victims are suspended in ascending instantaneous-xfactor order until
  they do; if even that is insufficient the job waits in the queue;
* suspended and still-waiting jobs receive service at every sweep
  (completions and the periodic timer): a waiting job may preempt
  unprotected victims whose instantaneous xfactor is *strictly below*
  its own.  A running job's instantaneous xfactor decays toward 1 as it
  accumulates service while a waiter's grows, so every waiter eventually
  qualifies -- IS keeps the no-starvation property without reservations;
* re-entry is local: a suspended job needs its original processors, and
  every unprotected squatter on them must qualify as a victim.

This reproduces the behaviour the paper reports: excellent slowdowns
for very short jobs (they always get their slice), severe degradation
for long and very wide jobs, and poor overall utilisation under load
(suspended wide jobs wait long for their exact processor sets while the
machine churns timeslices).
"""

from __future__ import annotations

from typing import Any

from repro.core.priorities import instantaneous_priority
from repro.core.selective_suspension import primary_denial_cause
from repro.obs.events import victim_verdict
from repro.schedulers.base import Scheduler
from repro.workload.job import Job

#: The immediate-service timeslice (and protection window), seconds.
DEFAULT_TIMESLICE = 600.0


class ImmediateServiceScheduler(Scheduler):
    """IS: immediate 10-minute timeslices, lowest-instantaneous-xfactor victims."""

    name = "IS"
    scheme_id = "is"

    def config(self) -> dict[str, object]:
        return {
            "scheme": self.scheme_id,
            "timeslice": self.timeslice,
            "sweep_interval": self.timer_interval,
        }

    def __init__(
        self,
        timeslice: float = DEFAULT_TIMESLICE,
        sweep_interval: float = 60.0,
    ) -> None:
        super().__init__()
        if timeslice <= 0:
            raise ValueError("timeslice must be positive")
        self.timeslice = float(timeslice)
        self.timer_interval = float(sweep_interval)
        #: job_id -> end of its current protection window
        self._protected_until: dict[int, float] = {}

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def on_begin(self) -> None:
        self._protected_until.clear()

    def on_arrival(self, job: Job) -> None:
        if not self._grant_immediate_service(job):
            # could not assemble processors even with preemption; the
            # job waits and competes in subsequent sweeps
            pass
        self._sweep()

    def on_finish(self, job: Job) -> None:
        self._protected_until.pop(job.job_id, None)
        self._sweep()

    def on_timer(self) -> None:
        self._sweep()

    # ------------------------------------------------------------------
    # mechanics
    # ------------------------------------------------------------------
    def _is_protected(self, job: Job) -> bool:
        return self.now < self._protected_until.get(job.job_id, -float("inf"))

    def _start(self, job: Job) -> None:
        assert self.driver is not None
        # The 10-minute timeslice is ten minutes of *service*: a resumed
        # job first pays its suspend/restart overhead on the processors,
        # so protection must cover overhead + timeslice.  Without this,
        # a job whose per-cycle overhead exceeds the timeslice makes
        # zero progress per cycle and two such jobs can suspend each
        # other forever (observed livelock under the disk-swap model).
        pending = job.pending_overhead
        self.driver.start_job(job)
        self._protected_until[job.job_id] = self.now + pending + self.timeslice

    def _grant_immediate_service(self, job: Job) -> bool:
        """Arrival path: start *job* now, preempting if necessary."""
        driver = self.driver
        assert driver is not None
        if driver.cluster.can_allocate(job.procs):
            self._start(job)
            return True
        victims = self._cheapest_victims(limit_priority=None)
        freed = driver.cluster.free_count
        chosen: list[Job] = []
        for victim in victims:
            if freed >= job.procs:
                break
            chosen.append(victim)
            freed += len(victim.allocated_procs)
        if freed < job.procs:
            self._record_denial(job, limit_priority=None, path="arrival")
            return False
        self._record_grant(job, chosen, limit_priority=None, path="arrival")
        for victim in chosen:
            driver.suspend_job(victim, preemptor=job.job_id)
            self._protected_until.pop(victim.job_id, None)
        self._start(job)
        return True

    # ------------------------------------------------------------------
    # decision records (trace-only; never consulted by the policy)
    # ------------------------------------------------------------------
    def _victim_verdicts(self, limit_priority: float | None) -> list[dict[str, Any]]:
        """Per-running-job verdicts for a decision record.

        ``protected`` -- inside its timeslice protection window;
        ``priority`` -- instantaneous xfactor not strictly below the
        waiter's (sweep/re-entry paths only); else ``candidate``.
        """
        driver = self.driver
        assert driver is not None
        now = driver.now
        out: list[dict[str, Any]] = []
        for r in sorted(driver.running_jobs(), key=lambda r: r.job_id):
            p = instantaneous_priority(r, now)
            if self._is_protected(r):
                verdict = "protected"
            elif limit_priority is not None and p >= limit_priority:
                verdict = "priority"
            else:
                verdict = "candidate"
            out.append(victim_verdict(r.job_id, p, len(r.allocated_procs), verdict))
        return out

    def _record_denial(
        self, job: Job, limit_priority: float | None, path: str
    ) -> None:
        tracer = self.tracer
        if tracer is None:
            return
        driver = self.driver
        assert driver is not None
        verdicts = self._victim_verdicts(limit_priority)
        tracer.decision(
            driver.now,
            "preempt_denied",
            job.job_id,
            cause=primary_denial_cause(verdicts),
            requested=job.procs,
            free=driver.cluster.free_count,
            path=path,
            timeslice=self.timeslice,
            victims=verdicts,
        )

    def _record_grant(
        self,
        job: Job,
        chosen: list[Job],
        limit_priority: float | None,
        path: str,
    ) -> None:
        tracer = self.tracer
        if tracer is None:
            return
        driver = self.driver
        assert driver is not None
        tracer.decision(
            driver.now,
            "timeslice_grant",
            job.job_id,
            requested=job.procs,
            free=driver.cluster.free_count,
            path=path,
            timeslice=self.timeslice,
            suspended=[v.job_id for v in chosen],
            victims=self._victim_verdicts(limit_priority),
        )

    def _cheapest_victims(self, limit_priority: float | None) -> list[Job]:
        """Unprotected running jobs in ascending instantaneous xfactor.

        If *limit_priority* is given, only victims strictly below it are
        eligible (the waiting-job service path).
        """
        driver = self.driver
        assert driver is not None
        now = driver.now
        out = [
            r
            for r in driver.running_jobs()
            if not self._is_protected(r)
            and (
                limit_priority is None
                or instantaneous_priority(r, now) < limit_priority
            )
        ]
        out.sort(key=lambda r: (instantaneous_priority(r, now), r.job_id))
        return out

    def _sweep(self) -> None:
        """Serve waiting jobs: free processors first, then preemption."""
        driver = self.driver
        assert driver is not None
        now = driver.now
        waiting = sorted(
            driver.queued_jobs(),
            key=lambda j: (-instantaneous_priority(j, now), j.submit_time, j.job_id),
        )
        for job in waiting:
            if job.needs_specific_procs:
                self._serve_reentry(job)
            else:
                self._serve_fresh(job)

    def _serve_fresh(self, job: Job) -> bool:
        driver = self.driver
        assert driver is not None
        if driver.cluster.can_allocate(job.procs):
            self._start(job)
            return True
        my_priority = instantaneous_priority(job, driver.now)
        victims = self._cheapest_victims(limit_priority=my_priority)
        freed = driver.cluster.free_count
        chosen: list[Job] = []
        for victim in victims:
            if freed >= job.procs:
                break
            chosen.append(victim)
            freed += len(victim.allocated_procs)
        if freed < job.procs:
            self._record_denial(job, limit_priority=my_priority, path="sweep")
            return False
        self._record_grant(job, chosen, limit_priority=my_priority, path="sweep")
        for victim in chosen:
            driver.suspend_job(victim, preemptor=job.job_id)
            self._protected_until.pop(victim.job_id, None)
        self._start(job)
        return True

    def _serve_reentry(self, job: Job) -> bool:
        driver = self.driver
        assert driver is not None
        needed = job.suspended_procs
        if driver.cluster.can_allocate_specific(needed):
            self._start(job)
            return True
        now = driver.now
        tracer = self.tracer
        my_priority = instantaneous_priority(job, now)
        owner_ids = driver.cluster.owners_overlapping(needed)
        owners = [r for r in driver.running_jobs() if r.job_id in owner_ids]
        # One protected or higher-priority squatter blocks the resume.
        # When tracing, classify every owner so the decision record is
        # complete (the checks are pure; scheduling is unchanged).
        verdicts: list[dict[str, Any]] | None = [] if tracer is not None else None
        blocking: str | None = None
        for victim in sorted(owners, key=lambda o: o.job_id):
            p = instantaneous_priority(victim, now)
            if self._is_protected(victim):
                cause = "protected"
            elif p >= my_priority:
                cause = "priority"
            else:
                cause = None
            if verdicts is not None:
                verdicts.append(
                    victim_verdict(
                        victim.job_id,
                        p,
                        len(victim.allocated_procs),
                        cause or "candidate",
                    )
                )
            if cause is not None:
                blocking = blocking or cause
                if verdicts is None:
                    break  # untraced: first blocker settles it
        if blocking is not None:
            if tracer is not None:
                tracer.decision(
                    now,
                    "preempt_denied",
                    job.job_id,
                    cause=blocking,
                    requested=job.procs,
                    path="reentry",
                    timeslice=self.timeslice,
                    victims=verdicts,
                )
            return False
        if tracer is not None:
            tracer.decision(
                now,
                "timeslice_grant",
                job.job_id,
                requested=job.procs,
                path="reentry",
                timeslice=self.timeslice,
                suspended=sorted(o.job_id for o in owners),
                victims=verdicts,
            )
        for victim in sorted(owners, key=lambda o: o.job_id):
            driver.suspend_job(victim, preemptor=job.job_id)
            self._protected_until.pop(victim.job_id, None)
        if driver.cluster.can_allocate_specific(needed):
            self._start(job)
            return True
        return False  # pragma: no cover - owners covered all of `needed`

    def describe(self) -> str:
        return f"IS, timeslice {self.timeslice:g}s"

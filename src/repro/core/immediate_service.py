"""The Immediate Service (IS) comparator -- Chiang & Vernon.

The paper compares SS against "immediate service": every arriving job is
given an immediate timeslice of 10 minutes, suspending one or more
running jobs if needed; victims are the running jobs with the lowest
*instantaneous xfactor*, ``(wait + accrued run) / accrued run`` -- the
jobs that have already received the most service relative to their wait.

The published description is a sketch, so this implementation pins down
the unstated details (each choice documented in DESIGN.md section 3):

* a job that has just (re)started is **protected** for the timeslice
  (10 minutes): it cannot be suspended during that window, which is what
  "given a timeslice" must mean for the guarantee to exist;
* on arrival, if free processors do not cover the request, unprotected
  victims are suspended in ascending instantaneous-xfactor order until
  they do; if even that is insufficient the job waits in the queue;
* suspended and still-waiting jobs receive service at every sweep
  (completions and the periodic timer): a waiting job may preempt
  unprotected victims whose instantaneous xfactor is *strictly below*
  its own.  A running job's instantaneous xfactor decays toward 1 as it
  accumulates service while a waiter's grows, so every waiter eventually
  qualifies -- IS keeps the no-starvation property without reservations;
* re-entry is local: a suspended job needs its original processors, and
  every unprotected squatter on them must qualify as a victim.

This reproduces the behaviour the paper reports: excellent slowdowns
for very short jobs (they always get their slice), severe degradation
for long and very wide jobs, and poor overall utilisation under load
(suspended wide jobs wait long for their exact processor sets while the
machine churns timeslices).
"""

from __future__ import annotations

from repro.schedulers.policy import (
    InstantaneousPriorityOrder,
    NoBackfill,
    NoReservations,
    PolicyKernel,
    SchedulerSpec,
    TimeslicePreemption,
)

#: The immediate-service timeslice (and protection window), seconds.
DEFAULT_TIMESLICE = 600.0


class ImmediateServiceScheduler(PolicyKernel):
    """IS: immediate 10-minute timeslices, lowest-instantaneous-xfactor victims.

    Since the policy-kernel refactor the timeslice engine lives in
    :class:`repro.schedulers.policy.TimeslicePreemption`; this class is
    the composition (instantaneous-priority queue, no reservations, no
    backfill -- service *is* the preemption engine) plus back-compat
    accessors.
    """

    scheme_id = "is"

    def __init__(
        self,
        timeslice: float = DEFAULT_TIMESLICE,
        sweep_interval: float = 60.0,
    ) -> None:
        engine = TimeslicePreemption(
            timeslice=timeslice, sweep_interval=sweep_interval
        )
        self._engine = engine
        super().__init__(
            SchedulerSpec(
                scheme_id="is",
                display_name="IS",
                queue=InstantaneousPriorityOrder(),
                reservation=NoReservations(),
                backfill=NoBackfill(),
                preemption=engine,
            )
        )

    @property
    def timeslice(self) -> float:
        return self._engine.timeslice

    def describe(self) -> str:
        return f"IS, timeslice {self.timeslice:g}s"

"""The Selective Suspension (SS) scheduler -- section IV.

Policy summary
--------------

* **No reservations.**  Start-time guarantees are meaningless when a
  started job can be suspended again, and the xfactor priority already
  rules out starvation: any waiting job's priority grows without bound,
  so it eventually clears the SF threshold against *some* victim
  (section IV-B).  Queued jobs simply start greedily whenever they fit
  on free processors, highest priority first.
* **Preemption sweep.**  Every ``preemption_interval`` seconds (60 s in
  the paper) the scheduler walks the idle queue in descending suspension
  priority and, for each job that does not fit, tries to assemble enough
  processors by suspending running jobs that clear the SF threshold --
  walking victims in ascending priority, then actually suspending the
  *widest* candidates first and stopping as soon as the count is met
  (the paper's ``suspend_jobs_1``).
* **Half-width rule.**  A fresh idle job may only suspend victims at
  most twice its own width, so sequential jobs cannot chip away at very
  wide jobs (section IV-B).
* **Local re-entry.**  A previously suspended job needs *exactly* its
  original processors back.  Every running job overlapping that set must
  clear the SF threshold or the resume fails this sweep; the half-width
  rule is waived here, otherwise a narrow squatter could pin a wide job
  forever (section IV-C, ``suspend_jobs_2``).

The TSS refinement (per-category preemption limits) plugs in through
:meth:`SelectiveSuspensionScheduler.victim_preemptable`, which TSS
overrides.
"""

from __future__ import annotations

from bisect import insort
from typing import Any

from repro.cluster.bitset import iter_bits, mask_from_ids, take_lowest
from repro.core.priorities import PreemptionCriteria, suspension_priority
from repro.obs.events import victim_verdict
from repro.schedulers.base import Scheduler
from repro.workload.job import Job

#: Tie-break order when several rejection causes block one decision.
_CAUSE_PREFERENCE = {
    "sf_threshold": 0,
    "category_limit": 1,
    "width_rule": 2,
    "protected": 3,
    "priority": 4,
}


def primary_denial_cause(verdicts: list[dict[str, Any]] | None) -> str:
    """The headline ``cause`` of a denied preemption decision.

    The most frequent non-``candidate`` verdict wins (ties broken by a
    fixed preference order); an empty or all-candidate list means the
    eligible victims simply did not cover the request --
    ``"insufficient"``.
    """
    counts: dict[str, int] = {}
    for v in verdicts or ():
        cause = v["verdict"]
        if cause != "candidate":
            counts[cause] = counts.get(cause, 0) + 1
    if not counts:
        return "insufficient"
    return min(counts, key=lambda c: (-counts[c], _CAUSE_PREFERENCE.get(c, 99)))


class SelectiveSuspensionScheduler(Scheduler):
    """SS: xfactor-thresholded preemptive backfilling (section IV).

    Parameters
    ----------
    suspension_factor:
        The SF threshold; the paper evaluates 1.5, 2 and 5.
    preemption_interval:
        Seconds between preemption sweeps (paper: 60).
    width_rule:
        Enable the half-width restriction for fresh starts (paper: on;
        exposed for the ablation bench).
    """

    scheme_id = "ss"

    def __init__(
        self,
        suspension_factor: float = 2.0,
        preemption_interval: float = 60.0,
        width_rule: bool = True,
    ) -> None:
        super().__init__()
        if preemption_interval <= 0:
            raise ValueError("preemption interval must be positive")
        self.criteria = PreemptionCriteria(
            suspension_factor=suspension_factor, width_rule=width_rule
        )
        self.timer_interval = float(preemption_interval)
        self.name = f"SS(SF={suspension_factor:g})"
        # -- sweep-scoped scratch state ---------------------------------
        # Valid only while sweep() is on the stack; see sweep() for the
        # invalidation protocol.  Buffers are instance-level so repeated
        # sweeps reuse the same allocations instead of rebuilding them
        # per idle job (the old quadratic term in congested queues).
        self._sweep_active = False
        self._sweep_suspension = False
        #: mask of processors some suspended job must reacquire; kept
        #: current across mid-sweep suspends (|=) and resumes (&= ~)
        self._sweep_pinned = 0
        #: running victims as (priority, job_id, Job), ascending -- built
        #: once per suspension sweep, extended by insort on mid-sweep
        #: starts, lazily invalidated through _sweep_dead on suspends
        self._sweep_victims: list[tuple[float, int, Job]] = []
        #: job ids suspended mid-sweep (membership tests only)
        self._sweep_dead: set[int] = set()
        self._scratch_candidates: list[Job] = []
        self._scratch_chosen: list[Job] = []

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def on_arrival(self, job: Job) -> None:
        self.sweep(allow_suspension=False)

    def on_finish(self, job: Job) -> None:
        self.sweep(allow_suspension=False)

    def on_timer(self) -> None:
        self.sweep(allow_suspension=True)

    # ------------------------------------------------------------------
    # the sweep
    # ------------------------------------------------------------------
    def sweep(self, allow_suspension: bool) -> None:
        """One pass over the idle queue in descending suspension priority.

        With ``allow_suspension=False`` this is plain greedy backfilling
        onto free processors (what arrivals and completions trigger);
        with ``True`` it is the full periodic preemption routine.

        Priorities are computed **once per sweep** into ``priorities``
        (job_id -> xfactor at *now*) and threaded through
        :meth:`_try_start` / :meth:`_try_resume`.  This is safe because
        the xfactor is an exact integral over past state intervals: a
        job suspended or started *at* ``now`` has the same xfactor
        before and after the transition, so mid-sweep state changes
        cannot invalidate the snapshot.  The naive form recomputed
        ``suspension_priority`` O(queue x running) times per sweep
        inside sort keys and per-victim filters -- the dominant cost of
        congested simulations (see ``benchmarks/bench_micro.py``).

        Two more sweep-scoped structures extend the same idea to the
        remaining quadratic terms.  The **victim list** is sorted once
        per suspension sweep (ascending ``(priority, job_id)``, the
        per-victim walk order) instead of re-sorting ``running_jobs()``
        inside every :meth:`_try_start`; jobs started mid-sweep are
        insort-ed in, jobs suspended mid-sweep are lazily skipped via a
        dead set -- both preserve the exact order the per-call sort
        produced, because ``(priority, job_id)`` is a total order over
        an identical membership.  The **pinned mask** (processors
        suspended jobs must reacquire) is snapshotted at sweep entry and
        updated incrementally: a suspend pins the victim's processors,
        a resume unpins the job's -- the only two events that can change
        it mid-sweep -- replacing the per-:meth:`_place` rescan of the
        whole queue.
        """
        driver = self.driver
        assert driver is not None
        if not allow_suspension and not driver.cluster.free_mask:
            # Decision-equivalent fast path: without suspension, every
            # start (can_allocate) and resume (can_allocate_mask on a
            # nonempty set) needs at least one free processor, and a
            # no-suspension sweep has no other observable effect -- the
            # full walk would deny every job and emit nothing.
            return
        queued = driver.queued_jobs()
        if not queued:
            # Nothing to start or resume: the idle walk is empty and a
            # sweep has no other observable effect.  Most timer sweeps
            # on moderately loaded traces hit this, so skipping the
            # victim-list build and priority snapshot here is the
            # cheapest win in the whole kernel.
            return
        now = driver.now
        priorities = {j.job_id: suspension_priority(j, now) for j in queued}
        victims = self._sweep_victims
        victims.clear()
        self._sweep_dead.clear()
        if allow_suspension:
            # victims come from the running set; a job started earlier in
            # this sweep was queued at sweep start and is already present
            for r in driver.running_jobs():
                p = suspension_priority(r, now)
                priorities[r.job_id] = p
                victims.append((p, r.job_id, r))
            victims.sort()
        pinned = 0
        for j in queued:
            pinned |= j.suspended_mask  # 0 unless awaiting local resume
        self._sweep_pinned = pinned
        self._sweep_suspension = allow_suspension
        self._sweep_active = True
        try:
            idle = sorted(
                queued,
                key=lambda j: (-priorities[j.job_id], j.submit_time, j.job_id),
            )
            for job in idle:
                if not allow_suspension and not driver.cluster.free_mask:
                    break  # same argument as above, mid-sweep
                if job.needs_specific_procs:
                    self._try_resume(job, allow_suspension, priorities)
                else:
                    self._try_start(job, allow_suspension, priorities)
        finally:
            self._sweep_active = False
            victims.clear()
            self._sweep_dead.clear()

    # ------------------------------------------------------------------
    # sweep-scoped bookkeeping
    # ------------------------------------------------------------------
    def _note_started(self, job: Job, priorities: dict[int, float]) -> None:
        """A queued job entered running mid-sweep: it is now a potential
        victim for later idle jobs, exactly as the old per-call re-sort
        would have picked it up."""
        if self._sweep_active and self._sweep_suspension:
            insort(self._sweep_victims, (priorities[job.job_id], job.job_id, job))

    def _note_resumed(
        self, job: Job, needed_mask: int, priorities: dict[int, float]
    ) -> None:
        """A suspended job resumed mid-sweep: its processors unpin."""
        if self._sweep_active:
            self._sweep_pinned &= ~needed_mask
            self._note_started(job, priorities)

    def _note_suspended(self, victim: Job, released_mask: int) -> None:
        """A running job was suspended mid-sweep: its processors pin and
        it leaves the victim list (lazily, via the dead set)."""
        if self._sweep_active:
            self._sweep_pinned |= released_mask
            self._sweep_dead.add(victim.job_id)

    # ------------------------------------------------------------------
    # fresh starts (pseudocode path suspend_jobs_1)
    # ------------------------------------------------------------------
    def _pinned_mask(self) -> int:
        """Mask of processors some suspended job must reacquire to resume.

        Recomputed from the queue; during a sweep the maintained
        ``_sweep_pinned`` snapshot is used instead (same value, O(1)).
        """
        driver = self.driver
        assert driver is not None
        pinned = 0
        for j in driver.queued_jobs():
            pinned |= j.suspended_mask  # 0 unless awaiting local resume
        return pinned

    def _pinned_procs(self) -> set[int]:
        """Processors some suspended job must reacquire to resume."""
        return set(iter_bits(self._pinned_mask()))

    def _place(self, job: Job, preferred: frozenset[int] = frozenset()) -> frozenset[int]:
        """Choose processors for a fresh start (id-set facade over
        :meth:`_place_mask`, kept for tests and subclasses)."""
        return frozenset(iter_bits(self._place_mask(job, mask_from_ids(preferred))))

    def _place_mask(self, job: Job, preferred_mask: int = 0) -> int:
        """Choose processors for a fresh start.

        Priority order: (1) *preferred_mask* (the just-suspended victims'
        processors, per the pseudocode's ``available_processor_set`` --
        so a victim unpins the moment its preemptor finishes), (2) free
        processors no suspended job is waiting for, (3) the rest.
        Skipping pinned processors where possible keeps suspended jobs'
        resume sets clear, which is what lets SS hold NS-level
        utilisation under load.

        Each tier takes the lowest free ids it can -- identical choices
        to the old ``sorted(tier)[:remaining]`` on id sets, because the
        lowest set bits of a mask *are* the sorted prefix.
        """
        driver = self.driver
        assert driver is not None
        free = driver.cluster.free_mask
        pinned = self._sweep_pinned if self._sweep_active else self._pinned_mask()
        chosen = take_lowest(preferred_mask & free, job.procs)
        n = chosen.bit_count()
        if n < job.procs:
            chosen |= take_lowest(free & ~chosen & ~pinned, job.procs - n)
            n = chosen.bit_count()
        if n < job.procs:
            chosen |= take_lowest(free & ~chosen, job.procs - n)
        return chosen

    def _try_start(
        self, job: Job, allow_suspension: bool, priorities: dict[int, float]
    ) -> bool:
        driver = self.driver
        assert driver is not None
        if driver.cluster.can_allocate(job.procs):
            driver.start_job(job, procs=self._place(job))
            self._note_started(job, priorities)
            return True
        if not allow_suspension:
            return False

        now = driver.now
        tracer = driver.tracer
        idle_priority = priorities[job.job_id]
        free = driver.cluster.free_count
        candidates = self._scratch_candidates
        candidates.clear()
        #: per-victim verdicts, built only when tracing is on (decision
        #: records are the one place per-victim reasoning is preserved)
        verdicts: list[dict[str, Any]] | None = [] if tracer is not None else None
        covered = free  # free + candidate processors
        dead = self._sweep_dead
        # Victims in ascending priority: cheapest (least entitled) first.
        # The sweep-sorted list replaces the old per-call
        # ``sorted(driver.running_jobs(), key=(priority, job_id))``:
        # same membership (insort on mid-sweep starts, dead set on
        # mid-sweep suspends), same total order.
        for victim_priority, victim_id, victim in self._sweep_victims:
            if covered >= job.procs:
                break
            if victim_id in dead:
                continue
            width = len(victim.allocated_procs)
            if not self.victim_preemptable(victim, now, victim_priority):
                if verdicts is not None:
                    verdicts.append(
                        victim_verdict(
                            victim.job_id,
                            victim_priority,
                            width,
                            "category_limit",
                            self.victim_protection_limit(victim),
                        )
                    )
                continue
            if not self.criteria.priority_allows(idle_priority, victim_priority):
                if verdicts is not None:
                    verdicts.append(
                        victim_verdict(
                            victim.job_id, victim_priority, width, "sf_threshold"
                        )
                    )
                continue
            if not self.criteria.width_allows(job.procs, width, reentry=False):
                if verdicts is not None:
                    verdicts.append(
                        victim_verdict(
                            victim.job_id, victim_priority, width, "width_rule"
                        )
                    )
                continue
            candidates.append(victim)
            if verdicts is not None:
                verdicts.append(
                    victim_verdict(victim.job_id, victim_priority, width, "candidate")
                )
            covered += len(victim.allocated_procs)

        if covered < job.procs:
            if tracer is not None:
                tracer.decision(
                    now,
                    "preempt_denied",
                    job.job_id,
                    cause=primary_denial_cause(verdicts),
                    xfactor=idle_priority,
                    sf=self.criteria.suspension_factor,
                    requested=job.procs,
                    free=free,
                    reentry=False,
                    victims=verdicts,
                )
            return False

        # Suspend the widest candidates first, stopping once the request
        # is covered (the paper sorts the candidate set in descending
        # processor count so the fewest jobs are disturbed).  The chosen
        # set is fixed *before* any suspension -- free_count only changes
        # through our own suspends, so precomputing it is equivalent and
        # lets the decision record precede the suspend events it causes.
        chosen = self._scratch_chosen
        chosen.clear()
        covered_free = free
        for victim in sorted(
            candidates, key=lambda c: (-len(c.allocated_procs), c.job_id)
        ):
            if covered_free >= job.procs:
                break
            chosen.append(victim)
            covered_free += len(victim.allocated_procs)
        if tracer is not None:
            tracer.decision(
                now,
                "preempt",
                job.job_id,
                xfactor=idle_priority,
                sf=self.criteria.suspension_factor,
                requested=job.procs,
                free=free,
                reentry=False,
                suspended=[v.job_id for v in chosen],
                victims=verdicts,
            )
        freed_mask = 0
        for victim in chosen:
            released = driver.cluster.owner_mask(victim.job_id)
            freed_mask |= released
            driver.suspend_job(victim, preemptor=job.job_id)
            self._note_suspended(victim, released)
        # run the preemptor on its victims' processors (the pseudocode's
        # available_processor_set) so each victim's resume set clears
        # when the preemptor finishes
        placed = self._place_mask(job, preferred_mask=freed_mask)
        driver.start_job(job, procs=frozenset(iter_bits(placed)))
        self._note_started(job, priorities)
        return True

    # ------------------------------------------------------------------
    # re-entry of suspended jobs (pseudocode path suspend_jobs_2)
    # ------------------------------------------------------------------
    def _try_resume(
        self, job: Job, allow_suspension: bool, priorities: dict[int, float]
    ) -> bool:
        driver = self.driver
        assert driver is not None
        needed_mask = job.suspended_mask  # cached at suspension time
        if driver.cluster.can_allocate_mask(needed_mask):
            driver.start_job(job)
            self._note_resumed(job, needed_mask, priorities)
            return True
        if not allow_suspension:
            return False

        now = driver.now
        tracer = driver.tracer
        idle_priority = priorities[job.job_id]
        # sorted for determinism: both the verdict-list order and the
        # reported primary blocking cause must reproduce run to run
        # (traces are byte-identical for identical inputs --
        # docs/TRACING.md), so the order is pinned to job ids rather
        # than to whatever order the owners are discovered in.
        owners: list[Job] = []
        for owner_id in sorted(driver.cluster.owners_in_mask(needed_mask)):
            owner = driver.running_job(owner_id)
            if owner is None:  # pragma: no cover - defensive
                return False
            owners.append(owner)
        # Every squatter must clear the SF threshold (no width rule on
        # re-entry); one protected occupant blocks the whole resume.
        # When tracing, keep walking past the first blocker so the
        # decision record carries *every* owner's verdict (the extra
        # checks are pure -- no scheduling effect).
        verdicts: list[dict[str, Any]] | None = [] if tracer is not None else None
        blocking: str | None = None
        for victim in owners:
            victim_priority = priorities[victim.job_id]
            if not self.victim_preemptable(victim, now, victim_priority):
                cause = "category_limit"
            elif not self.criteria.priority_allows(idle_priority, victim_priority):
                cause = "sf_threshold"
            else:
                cause = None
            if verdicts is not None:
                verdicts.append(
                    victim_verdict(
                        victim.job_id,
                        victim_priority,
                        len(victim.allocated_procs),
                        cause or "candidate",
                        self.victim_protection_limit(victim)
                        if cause == "category_limit"
                        else None,
                    )
                )
            if cause is not None:
                blocking = blocking or cause
                if verdicts is None:
                    break  # untraced: first blocker settles it
        if blocking is not None:
            if tracer is not None:
                tracer.decision(
                    now,
                    "preempt_denied",
                    job.job_id,
                    cause=blocking,
                    xfactor=idle_priority,
                    sf=self.criteria.suspension_factor,
                    requested=job.procs,
                    reentry=True,
                    victims=verdicts,
                )
            return False
        if tracer is not None:
            tracer.decision(
                now,
                "preempt",
                job.job_id,
                xfactor=idle_priority,
                sf=self.criteria.suspension_factor,
                requested=job.procs,
                reentry=True,
                suspended=sorted(o.job_id for o in owners),
                victims=verdicts,
            )
        for victim in owners:  # already ascending by job id
            released = driver.cluster.owner_mask(victim.job_id)
            driver.suspend_job(victim, preemptor=job.job_id)
            self._note_suspended(victim, released)
        if driver.cluster.can_allocate_mask(needed_mask):
            driver.start_job(job)
            self._note_resumed(job, needed_mask, priorities)
            return True
        return False  # pragma: no cover - owners covered all of `needed`

    # ------------------------------------------------------------------
    # TSS extension point
    # ------------------------------------------------------------------
    def victim_preemptable(
        self, victim: Job, now: float, priority: float | None = None
    ) -> bool:
        """Whether policy allows suspending *victim* at all.

        Plain SS never protects a running job; TSS overrides this with
        the per-category limit test.  *priority* carries the victim's
        sweep-precomputed xfactor so overrides need not recompute it.
        """
        return True

    def victim_protection_limit(self, victim: Job) -> float | None:
        """The xfactor ceiling protecting *victim*, for decision records.

        ``None`` for plain SS (no protection exists); TSS returns the
        victim's category limit so ``category_limit`` verdicts carry the
        threshold that was hit.  Trace-only -- never consulted on the
        scheduling path.
        """
        return None

    def describe(self) -> str:
        return (
            f"{self.name}, sweep every {self.timer_interval:g}s, "
            f"width rule {'on' if self.criteria.width_rule else 'off'}"
        )

    def config(self) -> dict[str, object]:
        return {
            "scheme": self.scheme_id,
            "suspension_factor": self.criteria.suspension_factor,
            "preemption_interval": self.timer_interval,
            "width_rule": self.criteria.width_rule,
        }

"""The Selective Suspension (SS) scheduler -- section IV.

Policy summary
--------------

* **No reservations.**  Start-time guarantees are meaningless when a
  started job can be suspended again, and the xfactor priority already
  rules out starvation: any waiting job's priority grows without bound,
  so it eventually clears the SF threshold against *some* victim
  (section IV-B).  Queued jobs simply start greedily whenever they fit
  on free processors, highest priority first.
* **Preemption sweep.**  Every ``preemption_interval`` seconds (60 s in
  the paper) the scheduler walks the idle queue in descending suspension
  priority and, for each job that does not fit, tries to assemble enough
  processors by suspending running jobs that clear the SF threshold --
  walking victims in ascending priority, then actually suspending the
  *widest* candidates first and stopping as soon as the count is met
  (the paper's ``suspend_jobs_1``).
* **Half-width rule.**  A fresh idle job may only suspend victims at
  most twice its own width, so sequential jobs cannot chip away at very
  wide jobs (section IV-B).
* **Local re-entry.**  A previously suspended job needs *exactly* its
  original processors back.  Every running job overlapping that set must
  clear the SF threshold or the resume fails this sweep; the half-width
  rule is waived here, otherwise a narrow squatter could pin a wide job
  forever (section IV-C, ``suspend_jobs_2``).

Since the policy-kernel refactor the sweep engine itself lives in
:class:`repro.schedulers.policy.SweepPreemption`; this module keeps the
scheme class as a declarative composition (suspension-priority queue,
no reservations, greedy fills, sweep preemption) plus the back-compat
accessors (`criteria`, `sweep`, `_place`, `_pinned_procs`) that tests
and benchmarks use.  The TSS refinement (per-category preemption
limits) is the same composition with a ``limits`` table.
"""

from __future__ import annotations

from repro.core.priorities import PreemptionCriteria
from repro.schedulers.policy import (
    _CAUSE_PREFERENCE,
    GreedyBackfill,
    NoReservations,
    PolicyKernel,
    SchedulerSpec,
    SuspensionPriorityOrder,
    SweepPreemption,
    primary_denial_cause,
)
from repro.workload.job import Job

__all__ = [
    "SelectiveSuspensionScheduler",
    "primary_denial_cause",
    "_CAUSE_PREFERENCE",
]


class SelectiveSuspensionScheduler(PolicyKernel):
    """SS: xfactor-thresholded preemptive backfilling (section IV).

    Parameters
    ----------
    suspension_factor:
        The SF threshold; the paper evaluates 1.5, 2 and 5.
    preemption_interval:
        Seconds between preemption sweeps (paper: 60).
    width_rule:
        Enable the half-width restriction for fresh starts (paper: on;
        exposed for the ablation bench).
    """

    scheme_id = "ss"

    def __init__(
        self,
        suspension_factor: float = 2.0,
        preemption_interval: float = 60.0,
        width_rule: bool = True,
    ) -> None:
        engine = SweepPreemption(
            PreemptionCriteria(
                suspension_factor=suspension_factor, width_rule=width_rule
            ),
            preemption_interval=preemption_interval,
        )
        self._engine = engine
        super().__init__(self._make_spec(suspension_factor, engine))

    def _make_spec(
        self, suspension_factor: float, engine: SweepPreemption
    ) -> SchedulerSpec:
        """The SS composition (TSS overrides the id/name, reuses the rest)."""
        return SchedulerSpec(
            scheme_id="ss",
            display_name=f"SS(SF={suspension_factor:g})",
            queue=SuspensionPriorityOrder(),
            reservation=NoReservations(),
            backfill=GreedyBackfill(),
            preemption=engine,
        )

    # ------------------------------------------------------------------
    # back-compat accessors (tests, benches, calibration helpers)
    # ------------------------------------------------------------------
    @property
    def criteria(self) -> PreemptionCriteria:
        return self._engine.criteria

    def sweep(self, allow_suspension: bool) -> None:
        self._engine.sweep(allow_suspension)

    def _place(self, job: Job, preferred: frozenset[int] = frozenset()) -> frozenset[int]:
        return self._engine._place(job, preferred)

    def _pinned_procs(self) -> set[int]:
        return self._engine._pinned_procs()

    def describe(self) -> str:
        return (
            f"{self.name}, sweep every {self.timer_interval:g}s, "
            f"width rule {'on' if self.criteria.width_rule else 'off'}"
        )

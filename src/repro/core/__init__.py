"""The paper's contribution: selective preemption schemes.

* :mod:`repro.core.priorities` -- suspension-priority functions (the
  xfactor of eq. 2, the IS scheme's instantaneous xfactor) and the
  :class:`~repro.core.priorities.PreemptionCriteria` threshold logic.
* :mod:`repro.core.selective_suspension` -- the **SS** scheduler
  (section IV): SF-thresholded preemption, half-width rule, local
  (same-processors) resume, backfilling without reservations, periodic
  preemption sweep.
* :mod:`repro.core.tss` -- **TSS** (section IV-E): per-category
  preemption limits at 1.5x the category's average slowdown.
* :mod:`repro.core.immediate_service` -- the **IS** comparator (Chiang &
  Vernon): immediate 10-minute timeslices by suspending the running jobs
  with the lowest instantaneous xfactor.
* :mod:`repro.core.overhead` -- the disk-swap suspension-overhead model
  (section V-A).
"""

from repro.core.priorities import PreemptionCriteria, suspension_priority
from repro.core.overhead import DiskSwapOverheadModel, FixedOverheadModel
from repro.core.selective_suspension import SelectiveSuspensionScheduler
from repro.core.tss import (
    CategoryLimits,
    TunableSelectiveSuspensionScheduler,
    limits_from_result,
)
from repro.core.immediate_service import ImmediateServiceScheduler

__all__ = [
    "CategoryLimits",
    "DiskSwapOverheadModel",
    "FixedOverheadModel",
    "ImmediateServiceScheduler",
    "PreemptionCriteria",
    "SelectiveSuspensionScheduler",
    "TunableSelectiveSuspensionScheduler",
    "limits_from_result",
    "suspension_priority",
]

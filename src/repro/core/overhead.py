"""Suspension/restart overhead models (section V-A).

The paper prices a suspension as the time to write the job's main memory
to local disk: per-job memory uniform on [100 MB, 1 GB], and "with each
node being a quad, the transfer rate per processor was assumed to be
2 MB/s (corresponding to a disk bandwidth of 8 MB/s)".  We interpret the
memory figure as the per-processor resident set (each processor writes
its own image to its node's local disk in parallel), giving

    write time = memory_mb / 2 MB/s  in [50 s, 500 s]

and charge the read-back on restart at the same rate (restart_factor
scales it; set 0 to charge the write only).  Costs are charged to the
*suspended* job as pending overhead -- see
:mod:`repro.sim.driver` for the pay-on-resume semantics.

Jobs without a memory annotation (``memory_mb == 0``, e.g. SWF logs
lacking the field) receive a deterministic per-job draw from the model's
own uniform distribution, seeded by the job id so results stay
reproducible and independent of visit order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workload.job import Job


@dataclass(frozen=True)
class DiskSwapOverheadModel:
    """Write-memory-to-disk overhead pricing.

    Parameters
    ----------
    mb_per_sec_per_proc:
        Per-processor transfer rate; paper value 2.0 MB/s.
    restart_factor:
        Fraction of the write cost charged again for the read-back on
        restart.  1.0 (default) charges a symmetric read; 0.0 reproduces
        a write-only interpretation.
    default_memory_range_mb:
        Uniform range substituted for jobs without a memory annotation.
    seed:
        Seed for the substitute-memory draws.
    """

    mb_per_sec_per_proc: float = 2.0
    restart_factor: float = 1.0
    default_memory_range_mb: tuple[float, float] = (100.0, 1000.0)
    seed: int = 12345

    def __post_init__(self) -> None:
        if self.mb_per_sec_per_proc <= 0:
            raise ValueError("transfer rate must be positive")
        if self.restart_factor < 0:
            raise ValueError("restart_factor must be nonnegative")
        lo, hi = self.default_memory_range_mb
        if not (0 < lo <= hi):
            raise ValueError("invalid default memory range")

    def memory_of(self, job: Job) -> float:
        """Job memory in MB, substituting a seeded draw when unknown."""
        if job.memory_mb > 0:
            return job.memory_mb
        lo, hi = self.default_memory_range_mb
        rng = np.random.default_rng((self.seed, job.job_id))
        return float(rng.uniform(lo, hi))

    def write_cost(self, job: Job) -> float:
        """Seconds to write the job's image to disk (the suspend side)."""
        return self.memory_of(job) / self.mb_per_sec_per_proc

    def suspend_resume_cost(self, job: Job) -> float:
        """Total seconds charged for one suspend/resume cycle of *job*."""
        return self.write_cost(job) * (1.0 + self.restart_factor)


@dataclass(frozen=True)
class FixedOverheadModel:
    """Constant per-suspension cost -- for tests and sensitivity sweeps."""

    seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("overhead must be nonnegative")

    def suspend_resume_cost(self, job: Job) -> float:
        """The constant, regardless of the job."""
        return self.seconds

"""Tunable Selective Suspension (TSS) -- section IV-E.

SS fixes the *average* slowdowns but can still let an unlucky long job
be suspended repeatedly, blowing up the worst case.  TSS bounds that
variance: each job carries a preemption *limit*, and once its priority
(xfactor) exceeds the limit the job can no longer be suspended.  The
paper sets the limit to ``1.5 x (average slowdown of the job's
category)``, so a job that has already waited past its category's norm
is protected from further disruption.

Where does "average slowdown of the category" come from?  The paper
does not say.  We support both defensible readings:

* **calibrated** (default): limits computed from a prior NS baseline run
  over the same trace (:func:`limits_from_result`) -- deterministic and
  closest to "the known behaviour of this workload";
* **online**: limits track the running average slowdown of jobs finished
  *so far in this run*, per category (:class:`CategoryLimits` with no
  table, ``online=True``); categories with no completions yet fall back
  to the overall running average, then to "no protection".

The ablation bench compares the two; they agree to within a few percent
on every reported metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.priorities import PreemptionCriteria
from repro.core.selective_suspension import SelectiveSuspensionScheduler
from repro.metrics.slowdown import bounded_slowdown
from repro.schedulers.policy import (
    GreedyBackfill,
    NoReservations,
    PolicyKernel,
    SchedulerSpec,
    SuspensionPriorityOrder,
    SweepPreemption,
)
from repro.sim.driver import SimulationResult
from repro.workload.categories import SixteenWayCategory, classify_sixteen_way
from repro.workload.job import Job


@dataclass
class CategoryLimits:
    """Per-category preemption limits for TSS.

    Parameters
    ----------
    table:
        category -> limit on the job xfactor; above it, no preemption.
        Missing categories mean "never protected" unless online mode
        supplies a value.
    online:
        If true, the table is updated as jobs finish: the limit becomes
        ``margin x`` the category's running average bounded slowdown.
    margin:
        The paper's 1.5 multiplier.
    """

    table: dict[SixteenWayCategory, float] = field(default_factory=dict)
    online: bool = False
    margin: float = 1.5

    # online accumulators
    _sums: dict[SixteenWayCategory, float] = field(default_factory=dict)
    _counts: dict[SixteenWayCategory, int] = field(default_factory=dict)
    _overall_sum: float = 0.0
    _overall_count: int = 0

    def limit_for(self, job: Job) -> float:
        """The xfactor ceiling protecting *job* from preemption."""
        cat = classify_sixteen_way(job)
        if cat in self.table:
            return self.table[cat]
        if self.online and self._overall_count:
            return self.margin * (self._overall_sum / self._overall_count)
        return float("inf")  # no information: never protected

    def to_config(self) -> dict[str, object]:
        """JSON-stable description (see :meth:`Scheduler.config`).

        Online limits serialise *without* their accumulated table: the
        table is run state, rebuilt from scratch every simulation, so
        two online-mode schedulers with equal margins behave
        identically on any workload.
        """
        if self.online:
            return {"mode": "online", "margin": self.margin}
        return {
            "mode": "calibrated",
            "margin": self.margin,
            "table": {
                f"{run}|{width}": limit
                for (run, width), limit in sorted(self.table.items())
            },
        }

    @classmethod
    def from_config(cls, config: dict[str, object]) -> "CategoryLimits":
        """Rebuild limits from :meth:`to_config` output."""
        mode = config.get("mode", "calibrated")
        margin = float(config.get("margin", 1.5))  # type: ignore[arg-type]
        if mode == "online":
            return cls(online=True, margin=margin)
        raw = config.get("table", {})
        assert isinstance(raw, dict)
        table: dict[SixteenWayCategory, float] = {}
        for key, limit in sorted(raw.items()):
            run, _, width = key.partition("|")
            table[(run, width)] = float(limit)
        return cls(table=table, margin=margin)

    def observe(self, job: Job) -> None:
        """Fold a finished job into the online averages (no-op otherwise)."""
        if not self.online:
            return
        sd = bounded_slowdown(job)
        cat = classify_sixteen_way(job)
        self._sums[cat] = self._sums.get(cat, 0.0) + sd
        self._counts[cat] = self._counts.get(cat, 0) + 1
        self._overall_sum += sd
        self._overall_count += 1
        self.table[cat] = self.margin * (self._sums[cat] / self._counts[cat])


def limits_from_result(
    baseline: SimulationResult, margin: float = 1.5
) -> CategoryLimits:
    """Calibrated limits: ``margin x`` per-category average slowdown of *baseline*.

    The baseline is normally an NS (EASY backfilling) run over the same
    trace -- the scheme's "known behaviour of this workload".
    """
    sums: dict[SixteenWayCategory, float] = {}
    counts: dict[SixteenWayCategory, int] = {}
    for job in baseline.jobs:
        cat = classify_sixteen_way(job)
        sums[cat] = sums.get(cat, 0.0) + bounded_slowdown(job)
        counts[cat] = counts.get(cat, 0) + 1
    table = {cat: margin * sums[cat] / counts[cat] for cat in sums}
    return CategoryLimits(table=table, margin=margin)


class TunableSelectiveSuspensionScheduler(SelectiveSuspensionScheduler):
    """TSS: SS plus per-category preemption limits (section IV-E).

    The same composition as SS, with the sweep engine's ``limits``
    parameter carrying the category table -- what used to be the
    ``victim_preemptable`` subclass override.  :class:`CategoryLimits`
    satisfies the :class:`repro.schedulers.policy.PreemptionLimits`
    protocol structurally.
    """

    scheme_id = "tss"

    def __init__(
        self,
        suspension_factor: float = 2.0,
        limits: CategoryLimits | None = None,
        preemption_interval: float = 60.0,
        width_rule: bool = True,
    ) -> None:
        limits = limits if limits is not None else CategoryLimits(online=True)
        mode = "online" if limits.online else "calibrated"
        engine = SweepPreemption(
            PreemptionCriteria(
                suspension_factor=suspension_factor, width_rule=width_rule
            ),
            preemption_interval=preemption_interval,
            limits=limits,
        )
        self._engine = engine
        PolicyKernel.__init__(
            self,
            SchedulerSpec(
                scheme_id="tss",
                display_name=f"TSS(SF={suspension_factor:g},{mode})",
                queue=SuspensionPriorityOrder(),
                reservation=NoReservations(),
                backfill=GreedyBackfill(),
                preemption=engine,
            ),
        )

    @property
    def limits(self) -> CategoryLimits:
        limits = self._engine.limits
        assert isinstance(limits, CategoryLimits)
        return limits

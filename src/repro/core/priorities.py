"""Suspension priorities and preemption thresholds.

The SS scheme's suspension priority is the **xfactor** (eq. 2)::

    xfactor = (wait time + estimated run time) / estimated run time

It starts at 1, grows while a job waits -- *rapidly* for short jobs,
*gradually* for long jobs, which is precisely the bias the paper wants:
short jobs earn the right to preempt quickly, long jobs tolerate delay.
While a job runs its priority is frozen (section IV-A).

An idle job may preempt a running job only when its priority is at least
``SF`` (the suspension factor) times the victim's.  Section IV-A derives
the alternation behaviour of two identical jobs under this rule:

* ``SF = 2``  -> zero suspensions (the waiter's xfactor reaches 2 exactly
  when the runner finishes);
* ``SF = (1 + sqrt(5)) / 2`` (the golden ratio) -> at most one suspension;
* generally, at most ``n`` suspensions for ``SF >= s_n`` where
  ``s_n^(n+1) = s_n + 1``;
* ``SF = 1`` -> unbounded alternation at the preemption-sweep granularity.

:func:`max_suspensions_threshold` computes ``s_n`` so tests and the
figure-4-6 bench can check the simulated behaviour against the theory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workload.job import Job

#: The golden ratio: the SF below which two equal jobs suspend each other
#: more than once (section IV-A).
GOLDEN_RATIO = (1.0 + 5.0**0.5) / 2.0


def suspension_priority(job: Job, now: float) -> float:
    """The SS suspension priority of *job* at *now* -- its xfactor."""
    return job.xfactor(now)


def instantaneous_priority(job: Job, now: float) -> float:
    """The IS scheme's instantaneous xfactor (infinite before first run)."""
    return job.instantaneous_xfactor(now)


def max_suspensions_threshold(n: int) -> float:
    """The minimal SF limiting two equal simultaneous jobs to <= n suspensions.

    Under the paper's *formal* priority definition (wait accrues only
    while not running, frozen while running -- exactly what this module
    implements), the two-task recurrence of section IV-A closes to

        s_n = 2 ** (1 / (n + 1))

    ``n = 0`` gives the paper's SF = 2 result.  For ``n = 1`` the paper's
    prose quotes the golden ratio, which instead follows from an
    *age-based* priority that keeps growing while the job runs; both
    variants are derived and simulated in :mod:`repro.core.theory`, and
    the figure 4-6 bench reports both.  See that module for the full
    derivation.
    """
    if n < 0:
        raise ValueError(f"n must be nonnegative, got {n}")
    return 2.0 ** (1.0 / (n + 1))


@dataclass(frozen=True)
class PreemptionCriteria:
    """The SS preemption predicate (section IV-B/C).

    Parameters
    ----------
    suspension_factor:
        ``SF >= 1``: the minimum ratio of idle priority to victim
        priority for preemption.  The paper evaluates 1.5, 2 and 5.
    width_rule:
        When true (the paper's default for *fresh* starts), a victim may
        only be suspended by a job requesting at least half the victim's
        processors -- "preventing the wide jobs from being suspended by
        the narrow jobs".  The rule is *dropped* for a suspended job
        re-acquiring its original processors (section IV-C), because a
        narrow job blocking part of a wide job's resume set would
        otherwise pin it for the wide job's whole lifetime.
    """

    suspension_factor: float = 2.0
    width_rule: bool = True

    def __post_init__(self) -> None:
        if self.suspension_factor < 1.0:
            raise ValueError(
                f"suspension factor must be >= 1, got {self.suspension_factor}"
            )

    def priority_allows(self, idle_priority: float, victim_priority: float) -> bool:
        """The SF threshold: idle >= SF x victim."""
        return idle_priority >= self.suspension_factor * victim_priority

    def width_allows(self, idle_procs: int, victim_procs: int, reentry: bool) -> bool:
        """The half-width rule (skipped on re-entry)."""
        if reentry or not self.width_rule:
            return True
        return victim_procs <= 2 * idle_procs

    def allows(
        self,
        idle: Job,
        victim: Job,
        now: float,
        reentry: bool,
    ) -> bool:
        """Full predicate: may *idle* suspend *victim* at *now*?"""
        return self.priority_allows(
            suspension_priority(idle, now), suspension_priority(victim, now)
        ) and self.width_allows(idle.procs, victim.procs, reentry)

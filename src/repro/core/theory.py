"""Two-task alternation theory (section IV-A, Figs 4-6).

Setup: two identical tasks T1 and T2, each needing the whole machine for
``L`` seconds, submitted together into an empty system.  One starts; the
other waits until its suspension priority reaches ``SF`` times the
runner's, preempts, and the roles swap.  The suspension factor controls
how many swaps happen before one of them completes.

The paper derives the swap count with a priority that keeps growing
with *elapsed time since submission* ("age-based" below) and obtains the
golden ratio as the at-most-one-suspension threshold.  Its formal
definition of the xfactor, however, freezes the priority while a task
runs ("frozen" below, and what the SS scheduler implements); under that
semantics the thresholds close to ``2**(1/(n+1))``.  Both recurrences
are implemented here so tests and the figure bench can exhibit each
regime and the discrepancy is documented rather than hidden:

========================  =============  =============
at most n suspensions     frozen          age-based
========================  =============  =============
n = 0                     2.0            2.0
n = 1                     sqrt(2) 1.414  golden 1.618
n = 2                     2^(1/3) 1.260  ~1.353
========================  =============  =============

:func:`two_task_timeline` runs the exact recurrence (no event-driven
simulator, no sweep granularity); the integration test cross-checks it
against the full SS scheduler with a fine preemption interval.
"""

from __future__ import annotations

from dataclasses import dataclass

#: safety valve for SF ~ 1, where alternation counts explode
_MAX_SEGMENTS = 100_000


@dataclass(frozen=True)
class Segment:
    """One uninterrupted run period in the two-task schedule."""

    task: int  # 1 or 2
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class TwoTaskOutcome:
    """The alternation pattern for one (SF, semantics) combination."""

    suspension_factor: float
    semantics: str  # "frozen" or "age"
    segments: tuple[Segment, ...]
    #: total preemptions that occurred
    suspensions: int
    #: completion times of task 1 and task 2
    finish: tuple[float, float]

    @property
    def makespan(self) -> float:
        return max(self.finish)


def two_task_timeline(
    suspension_factor: float,
    length: float = 1.0,
    semantics: str = "frozen",
    max_suspensions: int = 10_000,
    min_interval: float = 0.0,
) -> TwoTaskOutcome:
    """Exact alternation schedule of two identical whole-machine tasks.

    Parameters
    ----------
    suspension_factor:
        SF >= 1.  At 1 the tasks alternate indefinitely (bounded only by
        *max_suspensions* here, by the sweep granularity in the paper).
    length:
        Each task's run time ``L``.
    semantics:
        ``"frozen"`` -- priority constant while running (the xfactor as
        formally defined; what the SS implementation does);
        ``"age"`` -- priority keeps growing while running (the variant
        implicit in the paper's prose derivation).
    max_suspensions:
        Cap for the SF -> 1 regime.
    min_interval:
        The preemption-sweep granularity: a preemption cannot occur
        before the runner has run this long (the paper's Fig 4 shows
        SF = 1 alternating at exactly this granularity, "t" in its
        caption).  0 means continuous preemption, under which SF = 1
        degenerates to infinitesimal time-sharing.

    Notes
    -----
    Exact arithmetic on the recurrence; a preemption happens the instant
    the waiter's priority crosses ``SF x`` the runner's frozen priority.
    """
    if suspension_factor < 1.0:
        raise ValueError(f"SF must be >= 1, got {suspension_factor}")
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    if semantics not in ("frozen", "age"):
        raise ValueError(f"semantics must be 'frozen' or 'age', got {semantics!r}")

    s, L = float(suspension_factor), float(length)
    now = 0.0
    runner, waiter = 0, 1  # task indices; task 1 starts (paper's T1)
    done = [0.0, 0.0]
    waited = [0.0, 0.0]
    #: runner's frozen priority at dispatch (frozen semantics)
    segments: list[Segment] = []
    suspensions = 0
    finish = [0.0, 0.0]

    while True:
        if len(segments) >= _MAX_SEGMENTS:  # pragma: no cover - safety valve
            raise RuntimeError("two-task recurrence failed to terminate")
        remaining = L - done[runner]
        if semantics == "frozen":
            runner_priority = (waited[runner] + L) / L
            # waiter preempts when (waited + dt + L)/L >= s * runner_priority
            wait_needed = s * runner_priority * L - L - waited[waiter]
        else:  # age: priority = (now + L) / L for both, runner's frozen at dispatch
            runner_priority = (now + L) / L
            # waiter's age priority reaches s * runner_priority at time t*:
            # (t* + L)/L = s * runner_priority  =>  t* = s*runner_priority*L - L
            wait_needed = (s * runner_priority * L - L) - now
        preempt_dt = max(wait_needed, 0.0, min_interval)

        if suspensions >= max_suspensions or remaining <= preempt_dt + 1e-12:
            # runner completes; waiter then runs to completion unopposed
            end = now + remaining
            segments.append(Segment(task=runner + 1, start=now, end=end))
            finish[runner] = end
            waited[waiter] += remaining
            done[runner] = L
            tail = L - done[waiter]
            segments.append(Segment(task=waiter + 1, start=end, end=end + tail))
            finish[waiter] = end + tail
            break

        # a preemption happens after preempt_dt
        end = now + preempt_dt
        if preempt_dt > 0:
            segments.append(Segment(task=runner + 1, start=now, end=end))
        done[runner] += preempt_dt
        waited[waiter] += preempt_dt
        now = end
        runner, waiter = waiter, runner
        suspensions += 1

    merged = _merge_adjacent(segments)
    return TwoTaskOutcome(
        suspension_factor=s,
        semantics=semantics,
        segments=tuple(merged),
        suspensions=suspensions,
        finish=(finish[0], finish[1]),
    )


def _merge_adjacent(segments: list[Segment]) -> list[Segment]:
    """Merge zero-length and back-to-back same-task segments."""
    out: list[Segment] = []
    for seg in segments:
        if seg.duration <= 0:
            continue
        if out and out[-1].task == seg.task and abs(out[-1].end - seg.start) < 1e-12:
            out[-1] = Segment(task=seg.task, start=out[-1].start, end=seg.end)
        else:
            out.append(seg)
    return out


def suspension_count(suspension_factor: float, semantics: str = "frozen") -> int:
    """Number of suspensions for two unit tasks at the given SF."""
    return two_task_timeline(suspension_factor, semantics=semantics).suspensions


def threshold_for_max_suspensions(n: int, semantics: str = "frozen") -> float:
    """Minimal SF giving at most *n* suspensions, by bisection on the recurrence.

    Cross-checks the closed forms: ``2**(1/(n+1))`` for frozen
    semantics; 2 and the golden ratio for age-based n = 0, 1.
    """
    if n < 0:
        raise ValueError(f"n must be nonnegative, got {n}")
    lo, hi = 1.0 + 1e-9, 2.0
    if suspension_count(hi, semantics) > n:  # pragma: no cover - n>=0 => false
        raise RuntimeError("SF=2 should never exceed zero suspensions")
    for _ in range(80):
        mid = (lo + hi) / 2.0
        if suspension_count(mid, semantics) > n:
            lo = mid
        else:
            hi = mid
    return hi

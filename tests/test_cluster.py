"""Cluster machine model: allocation, release, ownership invariants."""

from __future__ import annotations

import pytest

from repro.cluster.allocation import ContiguousBestFit, LowestIdFirst, RandomAllocation
from repro.cluster.machine import AllocationError, Cluster


def test_initial_state_all_free():
    c = Cluster(16)
    assert c.free_count == 16
    assert c.busy_count == 0
    assert c.free_set() == frozenset(range(16))


def test_invalid_size_rejected():
    with pytest.raises(ValueError):
        Cluster(0)
    with pytest.raises(ValueError):
        Cluster(-3)


def test_allocate_lowest_ids_by_default():
    c = Cluster(8)
    procs = c.allocate(3, owner=1)
    assert procs == frozenset({0, 1, 2})
    assert c.free_count == 5


def test_allocate_tracks_ownership():
    c = Cluster(8)
    procs = c.allocate(2, owner=42)
    for p in procs:
        assert c.owner_of(p) == 42
        assert not c.is_free(p)


def test_allocate_more_than_free_raises():
    c = Cluster(4)
    c.allocate(3, owner=1)
    with pytest.raises(AllocationError):
        c.allocate(2, owner=2)


def test_allocate_more_than_machine_raises():
    c = Cluster(4)
    with pytest.raises(AllocationError, match="machine size"):
        c.allocate(5, owner=1)


def test_allocate_nonpositive_raises():
    c = Cluster(4)
    with pytest.raises(AllocationError):
        c.allocate(0, owner=1)


def test_release_returns_processors():
    c = Cluster(8)
    procs = c.allocate(4, owner=1)
    c.release(procs, owner=1)
    assert c.free_count == 8
    assert all(c.owner_of(p) is None for p in procs)


def test_release_wrong_owner_raises():
    c = Cluster(8)
    procs = c.allocate(2, owner=1)
    with pytest.raises(AllocationError, match="owned by"):
        c.release(procs, owner=2)


def test_release_partial_ownership_leaves_state_untouched():
    """All-or-nothing release: a request mixing owned and foreign
    processors must fail *before* any state changes, not after freeing
    the owned half (regression test for the single-pass rewrite)."""
    c = Cluster(8)
    mine = c.allocate_specific({0, 1}, owner=1)
    c.allocate_specific({2, 3}, owner=2)
    with pytest.raises(AllocationError, match="owned by"):
        c.release({1, 2}, owner=1)  # proc 1 is owner 1's, proc 2 is not
    # nothing moved: both allocations intact, free pool unchanged
    assert c.free_count == 4
    assert c.owner_of(1) == 1
    assert c.owner_of(2) == 2
    assert c.owner_mask(1) == 0b0011
    assert c.owner_mask(2) == 0b1100
    c.check_invariants()
    # the legitimate release still works afterwards
    c.release(mine, owner=1)
    assert c.free_count == 6


def test_release_mix_with_free_processor_leaves_state_untouched():
    c = Cluster(8)
    c.allocate_specific({0, 1}, owner=1)
    with pytest.raises(AllocationError, match="owned by None"):
        c.release({1, 5}, owner=1)  # proc 5 is free
    assert c.free_count == 6
    assert c.owner_of(1) == 1
    c.check_invariants()


def test_release_empty_request_is_noop():
    c = Cluster(8)
    c.allocate(2, owner=1)
    c.release(set(), owner=1)
    assert c.free_count == 6
    c.check_invariants()


def test_double_release_raises():
    c = Cluster(8)
    procs = c.allocate(2, owner=1)
    c.release(procs, owner=1)
    with pytest.raises(AllocationError):
        c.release(procs, owner=1)


def test_release_free_processor_raises():
    c = Cluster(8)
    with pytest.raises(AllocationError):
        c.release({0}, owner=1)


def test_allocate_specific_exact_set():
    c = Cluster(8)
    procs = c.allocate_specific({2, 5, 7}, owner=9)
    assert procs == frozenset({2, 5, 7})
    assert c.owner_of(5) == 9


def test_allocate_specific_busy_raises():
    c = Cluster(8)
    c.allocate_specific({2}, owner=1)
    with pytest.raises(AllocationError, match="not free"):
        c.allocate_specific({2, 3}, owner=2)


def test_allocate_specific_empty_raises():
    c = Cluster(8)
    with pytest.raises(AllocationError):
        c.allocate_specific(set(), owner=1)


def test_can_allocate_counts():
    c = Cluster(4)
    assert c.can_allocate(4)
    c.allocate(3, owner=1)
    assert c.can_allocate(1)
    assert not c.can_allocate(2)


def test_can_allocate_specific():
    c = Cluster(4)
    c.allocate_specific({0}, owner=1)
    assert c.can_allocate_specific({1, 2})
    assert not c.can_allocate_specific({0, 1})


def test_owners_overlapping():
    c = Cluster(8)
    c.allocate_specific({0, 1}, owner=10)
    c.allocate_specific({2, 3}, owner=20)
    assert c.owners_overlapping({1, 2}) == {10, 20}
    assert c.owners_overlapping({4, 5}) == set()
    assert c.owners_overlapping({0}) == {10}


def test_interleaved_allocate_release_consistency():
    c = Cluster(10)
    a = c.allocate(4, owner=1)
    b = c.allocate(3, owner=2)
    c.release(a, owner=1)
    d = c.allocate(5, owner=3)
    assert c.free_count == 10 - 3 - 5
    assert not (b & d)
    c.check_invariants()


def test_check_invariants_clean():
    c = Cluster(8)
    c.allocate(3, owner=1)
    c.check_invariants()


def test_allocation_fills_released_holes():
    c = Cluster(6)
    a = c.allocate(2, owner=1)  # {0,1}
    c.allocate(2, owner=2)  # {2,3}
    c.release(a, owner=1)
    new = c.allocate(3, owner=3)
    assert new == frozenset({0, 1, 4})


# ----------------------------------------------------------------------
# allocation policies
# ----------------------------------------------------------------------
def test_lowest_id_policy_deterministic():
    p = LowestIdFirst()
    assert p.select({5, 1, 3, 2}, 2) == frozenset({1, 2})


def test_random_policy_seeded_reproducible():
    sel1 = RandomAllocation(seed=3).select(set(range(100)), 10)
    sel2 = RandomAllocation(seed=3).select(set(range(100)), 10)
    assert sel1 == sel2
    assert len(sel1) == 10


def test_random_policy_different_seeds_differ():
    sel1 = RandomAllocation(seed=1).select(set(range(100)), 10)
    sel2 = RandomAllocation(seed=2).select(set(range(100)), 10)
    assert sel1 != sel2  # overwhelmingly likely


def test_contiguous_best_fit_prefers_smallest_fitting_run():
    # free runs: [0..1] (len 2), [5..9] (len 5); request 2 -> [0,1]
    free = {0, 1, 5, 6, 7, 8, 9}
    sel = ContiguousBestFit().select(free, 2)
    assert sel == frozenset({0, 1})


def test_contiguous_best_fit_skips_too_small_runs():
    free = {0, 1, 5, 6, 7}
    sel = ContiguousBestFit().select(free, 3)
    assert sel == frozenset({5, 6, 7})


def test_contiguous_best_fit_falls_back_when_fragmented():
    free = {0, 2, 4, 6}
    sel = ContiguousBestFit().select(free, 3)
    assert sel == frozenset({0, 2, 4})


def test_cluster_with_custom_policy():
    c = Cluster(10, policy=ContiguousBestFit())
    c.allocate_specific({0, 1, 2}, owner=1)
    got = c.allocate(2, owner=2)
    assert got == frozenset({3, 4})


def test_contiguous_best_fit_fallback_through_cluster():
    """The fragment fallback exercised end-to-end on the mask path:
    with no contiguous run large enough, the job spans fragments,
    lowest ids first."""
    c = Cluster(8, policy=ContiguousBestFit())
    c.allocate_specific({1, 3, 5, 7}, owner=1)  # free = {0,2,4,6}
    got = c.allocate(3, owner=2)
    assert got == frozenset({0, 2, 4})
    c.check_invariants()


def test_random_policy_mask_path_seeded_reproducible():
    """Seeded RandomAllocation is deterministic through the cluster's
    mask-level entry point, and identical to the legacy set path."""
    a = Cluster(64, policy=RandomAllocation(seed=11))
    b = Cluster(64, policy=RandomAllocation(seed=11))
    for owner in range(5):
        assert a.allocate(7, owner=owner) == b.allocate(7, owner=owner)
    # select_mask defers to select over the ascending id tuple, so the
    # two entry points draw the same sample from the same rng state
    mask = (1 << 40) - 1
    got_mask = RandomAllocation(seed=4).select_mask(mask, 6)
    got_set = RandomAllocation(seed=4).select(tuple(range(40)), 6)
    assert got_mask == sum(1 << p for p in got_set)


def test_lowest_id_select_mask_matches_select():
    free = {5, 1, 3, 2, 30, 31}
    mask = sum(1 << p for p in free)
    p = LowestIdFirst()
    assert p.select_mask(mask, 3) == sum(1 << q for q in p.select(free, 3))


# ----------------------------------------------------------------------
# bitmask-specific surface
# ----------------------------------------------------------------------
def test_free_mask_and_owner_mask_track_allocations():
    c = Cluster(8)
    c.allocate_specific({0, 2}, owner=1)
    assert c.owner_mask(1) == 0b101
    assert c.owner_mask(99) == 0
    assert c.free_mask == 0b11111111 & ~0b101
    assert c.can_allocate_mask(0b1010)
    assert not c.can_allocate_mask(0b0001)


def test_allocate_mask_round_trip():
    c = Cluster(8)
    got = c.allocate_mask(0b1100, owner=3)
    assert got == frozenset({2, 3})
    c.release(got, owner=3)
    assert c.free_count == 8


def test_owners_in_mask_dedupes_by_first_held_processor():
    c = Cluster(16)
    c.allocate_specific({0, 5, 6}, owner=10)
    c.allocate_specific({1, 2}, owner=20)
    # owner 10 appears once even though it holds three matching procs;
    # order follows each owner's first processor inside the query mask
    query = sum(1 << p for p in (1, 2, 5, 6, 0, 9))
    assert c.owners_in_mask(query) == (10, 20)
    assert c.owners_in_mask(1 << 9) == ()
    assert c.owners_in_mask(sum(1 << p for p in (2, 5))) == (20, 10)


def test_misbehaving_policy_wrong_count_rejected():
    class ShortPolicy(LowestIdFirst):
        def select_mask(self, free_mask: int, count: int) -> int:
            return super().select_mask(free_mask, max(0, count - 1))

    c = Cluster(8, policy=ShortPolicy())
    with pytest.raises(AllocationError, match="returned 2 processors"):
        c.allocate(3, owner=1)
    c.check_invariants()


def test_misbehaving_policy_busy_processor_rejected():
    class StompPolicy(LowestIdFirst):
        def select_mask(self, free_mask: int, count: int) -> int:
            return (1 << count) - 1  # always the lowest ids, free or not

    c = Cluster(8, policy=StompPolicy())
    c.allocate_specific({0}, owner=1)
    with pytest.raises(AllocationError, match="outside the free pool"):
        c.allocate(2, owner=2)
    c.check_invariants()

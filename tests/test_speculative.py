"""Speculative backfilling: gamble, win or kill-and-requeue."""

from __future__ import annotations

import pytest

from repro.schedulers.easy import EasyBackfillScheduler
from repro.schedulers.speculative import SpeculativeBackfillScheduler
from repro.sim.audit import audit_result
from repro.workload.estimates import InaccurateEstimates
from repro.workload.job import JobState, fresh_copies
from repro.workload.synthetic import generate_trace
from tests.conftest import make_job, run_sim


def test_params_validated():
    with pytest.raises(ValueError):
        SpeculativeBackfillScheduler(speculation_window=0.0)
    with pytest.raises(ValueError):
        SpeculativeBackfillScheduler(max_kills=-1)


def winning_scenario():
    """A badly over-estimated (aborting-style) job wins its test run."""
    return [
        make_job(job_id=0, submit=0.0, run=2000.0, procs=5),
        make_job(job_id=1, submit=1.0, run=2000.0, procs=8),  # head at 2000
        # estimate 4000 blocks conventional backfill into the ~2000 s
        # hole, but the actual run is 300 s: the 900 s test run wins
        make_job(job_id=2, submit=2.0, run=300.0, procs=3, estimate=4000.0),
    ]


def test_speculation_win():
    jobs = winning_scenario()
    result = run_sim(jobs, SpeculativeBackfillScheduler(), n_procs=8)
    assert jobs[2].first_start_time == pytest.approx(2.0)
    assert jobs[2].finish_time == pytest.approx(302.0)
    assert jobs[2].kill_count == 0
    assert result.total_kills == 0
    # under EASY the same job waits behind the head
    assert jobs[1].first_start_time == pytest.approx(2000.0)


def test_speculation_loss_kills_and_requeues():
    jobs = [
        make_job(job_id=0, submit=0.0, run=2000.0, procs=5),
        make_job(job_id=1, submit=1.0, run=2000.0, procs=8),  # head at 2000
        # actual 1500 > the 900 s test window: the gamble is lost
        make_job(job_id=2, submit=2.0, run=1500.0, procs=3, estimate=4000.0),
    ]
    result = run_sim(jobs, SpeculativeBackfillScheduler(), n_procs=8)
    assert jobs[2].kill_count >= 1
    assert result.total_kills >= 1
    assert jobs[2].state is JobState.FINISHED
    assert jobs[2].wasted_time >= 900.0 - 1.0
    # the head was not delayed by the failed speculation
    assert jobs[1].first_start_time == pytest.approx(2000.0)
    audit_result(result)


def test_short_holes_not_gambled():
    jobs = [
        make_job(job_id=0, submit=0.0, run=100.0, procs=5),
        make_job(job_id=1, submit=1.0, run=2000.0, procs=8),  # head at 100
        # hole is ~98 s < the 900 s window: no test run
        make_job(job_id=2, submit=2.0, run=1000.0, procs=3, estimate=4000.0),
    ]
    result = run_sim(jobs, SpeculativeBackfillScheduler(), n_procs=8)
    assert result.total_kills == 0
    assert jobs[2].first_start_time >= 100.0


def test_max_kills_bounds_thrash():
    """After max_kills lost gambles the job waits for regular service."""
    jobs = [
        make_job(job_id=0, submit=0.0, run=2000.0, procs=5),
        make_job(job_id=1, submit=1.0, run=2000.0, procs=8),
        make_job(job_id=2, submit=2.0, run=2000.0, procs=8),
        # repeatedly temptable: estimate huge, actual longer than window
        make_job(job_id=3, submit=3.0, run=4000.0, procs=3, estimate=40000.0),
    ]
    result = run_sim(jobs, SpeculativeBackfillScheduler(max_kills=1), n_procs=8)
    assert jobs[3].kill_count <= 1
    assert jobs[3].state is JobState.FINISHED


def test_audit_with_kills_on_trace_scale():
    jobs = generate_trace(
        "SDSC", n_jobs=300, seed=8, estimate_model=InaccurateEstimates()
    )
    result = run_sim(
        fresh_copies(jobs), SpeculativeBackfillScheduler(), n_procs=128
    )
    audit_result(result)
    assert len(result.jobs) == len(jobs)


def test_speculation_trade_off_on_real_mix():
    """Speculation redistributes delay, it does not create capacity.

    What actually happens on an over-estimated mix (and what the
    paper's section V metric discussion turns on): jobs that *get* a
    test run are served far earlier; the wasted occupancy of lost
    gambles taxes the jobs that cannot speculate (the ultra-wide ones),
    and the headline average moves much less than either group.  We
    assert those mechanics rather than a fictitious free lunch.
    """
    from repro.metrics.aggregate import overall_stats

    jobs = generate_trace(
        "SDSC", n_jobs=600, seed=8, estimate_model=InaccurateEstimates(badly_fraction=0.5)
    )
    easy = run_sim(fresh_copies(jobs), EasyBackfillScheduler(), n_procs=128)
    spec = run_sim(fresh_copies(jobs), SpeculativeBackfillScheduler(), n_procs=128)

    # speculations really happened, and thrash stayed bounded
    assert spec.total_kills > 0
    assert all(j.kill_count <= 2 for j in spec.jobs)

    # total wasted capacity is bounded by kills x window x widest job
    waste = sum(j.procs * j.wasted_time for j in spec.jobs)
    assert waste <= spec.total_kills * 900.0 * 128

    # overall slowdown stays in the same regime (no collapse either way)
    sd_easy = overall_stats(easy.jobs).slowdown.mean
    sd_spec = overall_stats(spec.jobs).slowdown.mean
    assert sd_spec <= sd_easy * 1.5

    # the winners won: jobs that completed inside a test run (started
    # once, never killed, badly estimated) beat their EASY twins
    easy_by_id = {j.job_id: j for j in easy.jobs}
    from repro.metrics.slowdown import turnaround_time

    winners = [
        j
        for j in spec.jobs
        if j.kill_count == 0
        and j.estimate > 2 * j.run_time
        and j.run_time <= 900.0
        and j.suspension_count == 0
    ]
    improved = sum(
        1
        for j in winners
        if turnaround_time(j) <= turnaround_time(easy_by_id[j.job_id]) + 1e-6
    )
    assert winners and improved >= 0.5 * len(winners)

"""Event loop: dispatch, clock monotonicity, guards."""

from __future__ import annotations

import pytest

from repro.sim.engine import EventLoop, SimulationError
from repro.sim.events import EventKind


def collecting_loop():
    loop = EventLoop()
    seen: list[tuple[float, object]] = []
    loop.on(EventKind.GENERIC, lambda ev: seen.append((ev.time, ev.payload)))
    return loop, seen


def test_run_dispatches_in_order():
    loop, seen = collecting_loop()
    for t in (3.0, 1.0, 2.0):
        loop.at(t, EventKind.GENERIC, t)
    loop.run()
    assert seen == [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]
    assert loop.now == 3.0


def test_after_schedules_relative():
    loop, seen = collecting_loop()
    loop.after(5.0, EventKind.GENERIC, "x")
    loop.run()
    assert seen == [(5.0, "x")]


def test_scheduling_in_past_raises():
    loop, _ = collecting_loop()
    loop.at(10.0, EventKind.GENERIC)
    loop.run()
    with pytest.raises(SimulationError):
        loop.at(5.0, EventKind.GENERIC)


def test_negative_delay_raises():
    loop, _ = collecting_loop()
    with pytest.raises(SimulationError):
        loop.after(-1.0, EventKind.GENERIC)


def test_unhandled_kind_raises():
    loop = EventLoop()
    loop.at(1.0, EventKind.TIMER)
    with pytest.raises(SimulationError, match="no handler"):
        loop.run()


def test_handler_may_schedule_more_events():
    loop = EventLoop()
    seen: list[float] = []

    def handler(ev):
        seen.append(ev.time)
        if ev.time < 3.0:
            loop.after(1.0, EventKind.GENERIC)

    loop.on(EventKind.GENERIC, handler)
    loop.at(1.0, EventKind.GENERIC)
    loop.run()
    assert seen == [1.0, 2.0, 3.0]


def test_max_events_guard_trips():
    loop = EventLoop(max_events=10)
    loop.on(EventKind.GENERIC, lambda ev: loop.after(1.0, EventKind.GENERIC))
    loop.at(0.0, EventKind.GENERIC)
    with pytest.raises(SimulationError, match="budget"):
        loop.run()


def test_run_until_stops_before_later_events():
    loop, seen = collecting_loop()
    loop.at(1.0, EventKind.GENERIC, "a")
    loop.at(10.0, EventKind.GENERIC, "b")
    loop.run(until=5.0)
    assert [p for _, p in seen] == ["a"]
    loop.run()  # resumes
    assert [p for _, p in seen] == ["a", "b"]


def test_stop_exits_loop():
    loop = EventLoop()
    seen = []

    def handler(ev):
        seen.append(ev.payload)
        loop.stop()

    loop.on(EventKind.GENERIC, handler)
    loop.at(1.0, EventKind.GENERIC, "a")
    loop.at(2.0, EventKind.GENERIC, "b")
    loop.run()
    assert seen == ["a"]


def test_stop_before_run_is_honoured():
    """A stop issued while idle must pre-empt the next run().

    Regression: run() used to reset ``_stopped = False`` on entry,
    silently discarding any stop requested between runs.
    """
    loop, seen = collecting_loop()
    loop.at(1.0, EventKind.GENERIC, "a")
    loop.stop()
    assert loop.stop_pending
    loop.run()
    assert seen == []  # nothing dispatched: the pending stop won
    assert not loop.stop_pending  # ... and was consumed
    loop.run()  # next run resumes normally
    assert [p for _, p in seen] == ["a"]


def test_stop_during_run_consumed_for_next_run():
    """The in-handler ordering: stop mid-run ends that run only."""
    loop = EventLoop()
    seen: list[object] = []

    def handler(ev):
        seen.append(ev.payload)
        if ev.payload == "a":
            loop.stop()

    loop.on(EventKind.GENERIC, handler)
    loop.at(1.0, EventKind.GENERIC, "a")
    loop.at(2.0, EventKind.GENERIC, "b")
    loop.run()
    assert seen == ["a"]
    assert not loop.stop_pending
    loop.run()  # stop was consumed; remaining events dispatch
    assert seen == ["a", "b"]


def test_step_returns_none_when_idle():
    loop, _ = collecting_loop()
    assert loop.step() is None


def test_dispatched_counter():
    loop, _ = collecting_loop()
    for t in range(5):
        loop.at(float(t), EventKind.GENERIC)
    loop.run()
    assert loop.dispatched == 5


def test_cancel_through_loop():
    loop, seen = collecting_loop()
    ev = loop.at(1.0, EventKind.GENERIC, "dead")
    loop.at(2.0, EventKind.GENERIC, "live")
    loop.cancel(ev)
    loop.run()
    assert [p for _, p in seen] == ["live"]


def test_simultaneous_kinds_priority_order():
    loop = EventLoop()
    order: list[str] = []
    loop.on(EventKind.JOB_FINISH, lambda ev: order.append("finish"))
    loop.on(EventKind.JOB_ARRIVAL, lambda ev: order.append("arrival"))
    loop.on(EventKind.TIMER, lambda ev: order.append("timer"))
    loop.at(1.0, EventKind.TIMER)
    loop.at(1.0, EventKind.JOB_ARRIVAL)
    loop.at(1.0, EventKind.JOB_FINISH)
    loop.run()
    assert order == ["finish", "arrival", "timer"]


def test_start_time_offset():
    loop = EventLoop(start_time=100.0)
    assert loop.now == 100.0
    with pytest.raises(SimulationError):
        loop.at(50.0, EventKind.GENERIC)

"""Event calendar: ordering, cancellation, bookkeeping."""

from __future__ import annotations

import pytest

from repro.sim.events import Event, EventKind, EventQueue


def test_pop_orders_by_time():
    q = EventQueue()
    q.schedule(5.0, EventKind.GENERIC, "b")
    q.schedule(1.0, EventKind.GENERIC, "a")
    q.schedule(9.0, EventKind.GENERIC, "c")
    assert [q.pop().payload for _ in range(3)] == ["a", "b", "c"]


def test_same_time_orders_by_kind():
    """Finishes dispatch before arrivals before timers at equal times."""
    q = EventQueue()
    q.schedule(1.0, EventKind.TIMER, "timer")
    q.schedule(1.0, EventKind.JOB_ARRIVAL, "arrival")
    q.schedule(1.0, EventKind.JOB_FINISH, "finish")
    assert [q.pop().payload for _ in range(3)] == ["finish", "arrival", "timer"]


def test_same_time_same_kind_is_fifo():
    q = EventQueue()
    for i in range(5):
        q.schedule(1.0, EventKind.GENERIC, i)
    assert [q.pop().payload for _ in range(5)] == [0, 1, 2, 3, 4]


def test_len_counts_live_events():
    q = EventQueue()
    events = [q.schedule(float(i), EventKind.GENERIC) for i in range(4)]
    assert len(q) == 4
    q.cancel(events[1])
    assert len(q) == 3
    q.pop()
    assert len(q) == 2


def test_cancelled_event_is_skipped():
    q = EventQueue()
    first = q.schedule(1.0, EventKind.GENERIC, "x")
    q.schedule(2.0, EventKind.GENERIC, "y")
    q.cancel(first)
    assert q.pop().payload == "y"


def test_cancel_is_idempotent():
    q = EventQueue()
    ev = q.schedule(1.0, EventKind.GENERIC)
    q.schedule(2.0, EventKind.GENERIC)
    q.cancel(ev)
    q.cancel(ev)
    assert len(q) == 1


def test_cancel_all_leaves_empty_queue():
    q = EventQueue()
    events = [q.schedule(float(i), EventKind.GENERIC) for i in range(3)]
    for ev in events:
        q.cancel(ev)
    assert not q
    assert q.peek_time() is None


def test_pop_empty_raises():
    q = EventQueue()
    with pytest.raises(IndexError):
        q.pop()


def test_peek_time_skips_dead_entries():
    q = EventQueue()
    ev = q.schedule(1.0, EventKind.GENERIC)
    q.schedule(5.0, EventKind.GENERIC)
    q.cancel(ev)
    assert q.peek_time() == 5.0


def test_nan_time_rejected():
    q = EventQueue()
    with pytest.raises(ValueError):
        q.schedule(float("nan"), EventKind.GENERIC)


def test_drain_yields_in_order():
    q = EventQueue()
    for t in (3.0, 1.0, 2.0):
        q.schedule(t, EventKind.GENERIC, t)
    assert [e.payload for e in q.drain()] == [1.0, 2.0, 3.0]
    assert not q


def test_bool_reflects_liveness():
    q = EventQueue()
    assert not q
    ev = q.schedule(1.0, EventKind.GENERIC)
    assert q
    q.cancel(ev)
    assert not q


def test_event_carries_epoch():
    ev = Event(time=1.0, kind=EventKind.JOB_FINISH, payload="j", epoch=3)
    assert ev.epoch == 3
    assert not ev.cancelled
    ev.cancel()
    assert ev.cancelled


def test_push_returns_event():
    q = EventQueue()
    ev = Event(time=1.0, kind=EventKind.GENERIC)
    assert q.push(ev) is ev


def test_negative_times_allowed_and_ordered():
    """The calendar itself is time-agnostic; the loop enforces monotonicity."""
    q = EventQueue()
    q.schedule(-1.0, EventKind.GENERIC, "early")
    q.schedule(0.0, EventKind.GENERIC, "late")
    assert q.pop().payload == "early"


def test_interleaved_push_pop_stays_ordered():
    q = EventQueue()
    q.schedule(10.0, EventKind.GENERIC, "c")
    q.schedule(1.0, EventKind.GENERIC, "a")
    assert q.pop().payload == "a"
    q.schedule(5.0, EventKind.GENERIC, "b")
    assert q.pop().payload == "b"
    assert q.pop().payload == "c"


def test_cancel_after_pop_is_noop():
    """Cancelling a fired event must not debit the live count.

    Regression: the old cancel() decremented ``_live`` for any
    not-yet-cancelled event, including ones already popped -- after
    which ``len(q)`` undercounted the queue and ``bool(q)`` could go
    false with live events still queued (ending the event loop early).
    """
    q = EventQueue()
    first = q.schedule(1.0, EventKind.GENERIC, "a")
    q.schedule(2.0, EventKind.GENERIC, "b")
    popped = q.pop()
    assert popped is first and popped.fired
    q.cancel(popped)  # late cancel of a fired event
    assert len(q) == 1
    assert bool(q)
    assert q.pop().payload == "b"


def test_cancel_after_pop_repeatedly_never_goes_negative():
    q = EventQueue()
    events = [q.schedule(float(i), EventKind.GENERIC, i) for i in range(3)]
    fired = [q.pop() for _ in range(2)]
    for ev in fired:
        q.cancel(ev)
        q.cancel(ev)  # idempotent on fired events too
    assert len(q) == 1
    q.cancel(events[2])
    assert len(q) == 0
    assert q.peek_time() is None


def test_drain_marks_events_fired_and_keeps_count():
    q = EventQueue()
    scheduled = [q.schedule(float(i), EventKind.GENERIC, i) for i in range(4)]
    drained = []
    for ev in q.drain():
        drained.append(ev)
        assert ev.fired
        # live count reflects exactly the entries still queued
        assert len(q) == len(scheduled) - len(drained)
    assert drained == scheduled
    # cancelling everything drained is a no-op
    for ev in drained:
        q.cancel(ev)
    assert len(q) == 0 and not q


def test_cancelled_then_popped_elsewhere_keeps_invariant():
    """Mixed cancel/pop interleavings keep ``len`` == live entries."""
    q = EventQueue()
    a = q.schedule(1.0, EventKind.GENERIC, "a")
    b = q.schedule(2.0, EventKind.GENERIC, "b")
    c = q.schedule(3.0, EventKind.GENERIC, "c")
    q.cancel(b)
    assert len(q) == 2
    assert q.pop() is a
    q.cancel(b)  # second cancel of a dead event: no-op
    q.cancel(a)  # cancel of a fired event: no-op
    assert len(q) == 1
    assert q.pop() is c
    assert len(q) == 0


def test_kill_events_dispatch_after_finishes():
    """A finish and a kill at the same instant: the finish wins, so a
    job completing exactly at its speculation deadline is not killed."""
    q = EventQueue()
    q.schedule(5.0, EventKind.JOB_KILL, "kill")
    q.schedule(5.0, EventKind.JOB_FINISH, "finish")
    assert q.pop().payload == "finish"
    assert q.pop().payload == "kill"

"""Hash-seed invariance: traces are byte-identical across PYTHONHASHSEED.

The whole point of the RPR001 rule (and the PR-2 ``_try_resume`` fix it
generalises) is that no scheduling decision may depend on hash order.
``PYTHONHASHSEED`` is fixed at interpreter start, so the only honest
probe is to run the same small grid -- SS, TSS, EASY and conservative
backfill, covering every scheduler family the paper compares -- in two
sub-interpreters with *different* hash seeds and require the JSONL
decision traces -- the complete record of every dispatch, suspension
and decision -- to match byte for byte.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: runs a tiny SS + TSS grid (parallel workers included) and streams
#: each cell's decision trace to <out>/<scheme>.jsonl
GRID_SCRIPT = """
import sys
from pathlib import Path

from repro.core.selective_suspension import SelectiveSuspensionScheduler
from repro.core.tss import TunableSelectiveSuspensionScheduler
from repro.experiments.parallel import GridCell, run_grid
from repro.schedulers.conservative import ConservativeBackfillScheduler
from repro.schedulers.easy import EasyBackfillScheduler
from repro.schedulers.hybrids import (
    SuspensionWithHeadGuarantee,
    TunableSuspensionWithGuarantees,
)
from repro.workload.archive import get_preset
from repro.workload.synthetic import generate_trace

out = Path(sys.argv[1])
n_procs = get_preset("CTC").n_procs
schemes = [
    ("ss", SelectiveSuspensionScheduler()),
    ("tss", TunableSelectiveSuspensionScheduler(suspension_factor=2.0)),
    ("easy", EasyBackfillScheduler()),
    ("conservative", ConservativeBackfillScheduler()),
    ("ss-easy", SuspensionWithHeadGuarantee()),
    ("tss-conservative", TunableSuspensionWithGuarantees(suspension_factor=2.0)),
]
cells = [
    GridCell(
        key=label,
        # fresh pristine jobs per cell: Job objects are stateful
        jobs=generate_trace("CTC", n_jobs=30, seed=11),
        n_procs=n_procs,
        scheduler_config=sched.config(),
        trace_path=str(out / (label + ".jsonl")),
    )
    for label, sched in schemes
]
outcome = run_grid(cells, workers=2)
assert outcome.executed == len(cells)
"""


def _run_grid_under(hash_seed: int, tmp_path: Path) -> dict[str, bytes]:
    out = tmp_path / f"hashseed-{hash_seed}"
    out.mkdir()
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    subprocess.run(
        [sys.executable, "-c", GRID_SCRIPT, str(out)],
        check=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=300,
    )
    return {p.name: p.read_bytes() for p in sorted(out.glob("*.jsonl"))}


def test_traces_byte_identical_across_hash_seeds(tmp_path: Path) -> None:
    first = _run_grid_under(0, tmp_path)
    second = _run_grid_under(42, tmp_path)

    assert set(first) == {
        "ss.jsonl",
        "tss.jsonl",
        "easy.jsonl",
        "conservative.jsonl",
        "ss-easy.jsonl",
        "tss-conservative.jsonl",
    }
    assert set(second) == set(first)
    for name in first:
        assert first[name], f"{name}: empty trace"
        assert first[name] == second[name], (
            f"{name}: decision trace differs between PYTHONHASHSEED=0 and "
            "PYTHONHASHSEED=42 -- a scheduling decision leaked hash order"
        )

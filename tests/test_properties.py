"""Property-based tests (hypothesis) on core structures and invariants."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.machine import Cluster
from repro.metrics.slowdown import bounded_slowdown, turnaround_time, wait_time
from repro.metrics.utilization import busy_area_from_jobs
from repro.schedulers.easy import EasyBackfillScheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.profiles import AvailabilityProfile
from repro.sim.events import EventKind, EventQueue
from repro.workload.job import Job, JobState
from tests.conftest import run_sim

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
N_PROCS = 16

job_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5000.0),  # submit
        st.floats(min_value=1.0, max_value=5000.0),  # run
        st.integers(min_value=1, max_value=N_PROCS),  # procs
        st.floats(min_value=1.0, max_value=4.0),  # estimate factor
    ),
    min_size=1,
    max_size=25,
)


def build_jobs(raw) -> list[Job]:
    return [
        Job(
            job_id=i,
            submit_time=submit,
            run_time=run,
            estimate=run * est_factor,
            procs=procs,
        )
        for i, (submit, run, procs, est_factor) in enumerate(raw)
    ]


# ----------------------------------------------------------------------
# event queue ordering
# ----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=200))
def test_event_queue_pops_sorted(times):
    q = EventQueue()
    for t in times:
        q.schedule(t, EventKind.GENERIC, t)
    popped = [q.pop().time for _ in range(len(times))]
    assert popped == sorted(times)


@given(
    st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=100),
    st.data(),
)
def test_event_queue_cancellation_preserves_rest(times, data):
    q = EventQueue()
    events = [q.schedule(t, EventKind.GENERIC, i) for i, t in enumerate(times)]
    kill = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(times) - 1), max_size=len(times) - 1)
    )
    for i in kill:
        q.cancel(events[i])
    expected = sorted(
        (t, i) for i, t in enumerate(times) if i not in kill
    )
    popped = [(e.time, e.payload) for e in q.drain()]
    assert [p[1] for p in popped] == [e[1] for e in expected] or [
        p[0] for p in popped
    ] == [e[0] for e in expected]


# ----------------------------------------------------------------------
# availability profile
# ----------------------------------------------------------------------
claims = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1000.0),  # start
        st.floats(min_value=0.1, max_value=1000.0),  # duration
        st.integers(min_value=1, max_value=4),  # count
    ),
    max_size=30,
)


@given(claims)
def test_profile_free_never_negative_or_above_capacity(claim_list):
    p = AvailabilityProfile(32, origin=0.0)
    for start, duration, count in claim_list:
        if p.min_free(start, start + duration) >= count:
            p.claim(start, duration, count)
    for _t, free in p.breakpoints():
        assert 0 <= free <= 32


@given(claims, st.floats(min_value=0.1, max_value=500.0), st.integers(1, 32))
def test_profile_anchor_window_actually_fits(claim_list, duration, count):
    p = AvailabilityProfile(32, origin=0.0)
    for start, dur, cnt in claim_list:
        if p.min_free(start, start + dur) >= cnt:
            p.claim(start, dur, cnt)
    anchor = p.find_anchor(duration, count)
    assert p.fits(anchor, duration, count)
    # and no earlier breakpoint admits the same window
    for t, _ in p.breakpoints():
        if t < anchor:
            assert not p.fits(t, duration, count)


# ----------------------------------------------------------------------
# whole-simulation invariants
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(job_lists)
def test_fcfs_schedule_invariants(raw):
    jobs = build_jobs(raw)
    result = run_sim(jobs, FCFSScheduler(), n_procs=N_PROCS)
    _assert_schedule_sane(jobs, result)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(job_lists)
def test_easy_schedule_invariants(raw):
    jobs = build_jobs(raw)
    result = run_sim(jobs, EasyBackfillScheduler(), n_procs=N_PROCS)
    _assert_schedule_sane(jobs, result)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(job_lists)
def test_ss_schedule_invariants(raw):
    from repro.core.selective_suspension import SelectiveSuspensionScheduler

    jobs = build_jobs(raw)
    result = run_sim(
        jobs,
        SelectiveSuspensionScheduler(suspension_factor=2.0, preemption_interval=60.0),
        n_procs=N_PROCS,
    )
    _assert_schedule_sane(jobs, result)


def _assert_schedule_sane(jobs: list[Job], result) -> None:
    """Invariants every valid schedule satisfies (DESIGN.md section 5)."""
    assert len(result.jobs) == len(jobs)
    for j in result.jobs:
        assert j.state is JobState.FINISHED
        assert j.first_start_time is not None and j.finish_time is not None
        # causality and duration
        assert j.first_start_time >= j.submit_time
        assert turnaround_time(j) >= j.run_time - 1e-6
        assert wait_time(j) >= -1e-6
        assert bounded_slowdown(j) >= 1.0
        # occupancy bookkeeping closed out
        assert j.pending_overhead == 0.0
        assert j.remaining_useful == 0.0
    # conservation: busy integral equals job areas
    assert abs(result.busy_proc_seconds - busy_area_from_jobs(result.jobs)) < 1e-6
    # utilisation in range
    assert 0.0 <= result.utilization <= 1.0 + 1e-9


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(job_lists)
def test_determinism_across_runs(raw):
    """Two identical simulations produce identical schedules."""
    a = run_sim(build_jobs(raw), EasyBackfillScheduler(), n_procs=N_PROCS)
    b = run_sim(build_jobs(raw), EasyBackfillScheduler(), n_procs=N_PROCS)
    assert [(j.job_id, j.first_start_time, j.finish_time) for j in a.jobs] == [
        (j.job_id, j.first_start_time, j.finish_time) for j in b.jobs
    ]


# ----------------------------------------------------------------------
# cluster random-walk
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=1, max_value=8)),
        max_size=60,
    )
)
def test_cluster_random_walk_keeps_invariants(ops):
    c = Cluster(16)
    held: dict[int, frozenset[int]] = {}
    next_owner = 0
    for is_alloc, count in ops:
        if is_alloc and c.can_allocate(count):
            held[next_owner] = c.allocate(count, owner=next_owner)
            next_owner += 1
        elif not is_alloc and held:
            owner, procs = next(iter(held.items()))
            c.release(procs, owner)
            del held[owner]
        c.check_invariants()
        assert c.free_count + sum(len(p) for p in held.values()) == 16


class _SetModelCluster:
    """Reference model for :class:`Cluster`: plain sets and dicts.

    Mirrors the machine-model semantics (lowest-id-first allocation,
    exclusive ownership, all-or-nothing release) with the most obvious
    data structures so the bitmask implementation can be checked
    operation for operation against it.
    """

    def __init__(self, n_procs: int) -> None:
        self.n_procs = n_procs
        self.free: set[int] = set(range(n_procs))
        self.owner_procs: dict[int, set[int]] = {}

    def allocate(self, count: int, owner: int) -> frozenset[int] | None:
        if count <= 0 or count > len(self.free):
            return None
        chosen = set(sorted(self.free)[:count])
        self.free -= chosen
        self.owner_procs.setdefault(owner, set()).update(chosen)
        return frozenset(chosen)

    def allocate_specific(self, procs: set[int], owner: int) -> frozenset[int] | None:
        if not procs or not procs <= self.free:
            return None
        self.free -= procs
        self.owner_procs.setdefault(owner, set()).update(procs)
        return frozenset(procs)

    def release(self, procs: set[int], owner: int) -> bool:
        if not procs <= self.owner_procs.get(owner, set()):
            return False  # all-or-nothing: reject, change nothing
        self.owner_procs[owner] -= procs
        if not self.owner_procs[owner]:
            del self.owner_procs[owner]
        self.free |= procs
        return True


_cluster_ops = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(min_value=1, max_value=10)),
        st.tuples(
            st.just("alloc_specific"),
            st.sets(st.integers(min_value=0, max_value=15), min_size=1, max_size=6),
        ),
        st.tuples(st.just("release"), st.integers(min_value=0, max_value=12)),
        st.tuples(
            st.just("bad_release"),
            st.sets(st.integers(min_value=0, max_value=15), min_size=1, max_size=6),
        ),
    ),
    max_size=80,
)


@settings(max_examples=200, deadline=None)
@given(_cluster_ops)
def test_cluster_agrees_with_set_model(ops):
    """The bitmask Cluster is operation-for-operation equivalent to the
    set-based reference model: same allocations, same rejections, same
    observable state after every step."""
    import pytest

    from repro.cluster.machine import AllocationError

    real = Cluster(16)
    model = _SetModelCluster(16)
    next_owner = 0

    for kind, arg in ops:
        if kind == "alloc":
            expected = model.allocate(arg, owner=next_owner)
            if expected is None:
                with pytest.raises(AllocationError):
                    real.allocate(arg, owner=next_owner)
            else:
                assert real.allocate(arg, owner=next_owner) == expected
                next_owner += 1
        elif kind == "alloc_specific":
            expected = model.allocate_specific(set(arg), owner=next_owner)
            if expected is None:
                with pytest.raises(AllocationError):
                    real.allocate_specific(arg, owner=next_owner)
            else:
                assert real.allocate_specific(arg, owner=next_owner) == expected
                next_owner += 1
        elif kind == "release":
            # release some existing owner's full holding, chosen by index
            owners = sorted(model.owner_procs)
            if not owners:
                continue
            owner = owners[arg % len(owners)]
            procs = set(model.owner_procs[owner])
            assert model.release(procs, owner)
            real.release(procs, owner)
        else:  # bad_release: arbitrary procs under a bogus owner
            assert not model.release(set(arg), owner=-1)
            with pytest.raises(AllocationError):
                real.release(arg, owner=-1)

        # observable state identical after every operation
        real.check_invariants()
        assert real.free_set() == frozenset(model.free)
        assert real.free_mask == sum(1 << p for p in model.free)
        for owner, procs in model.owner_procs.items():
            assert real.owner_mask(owner) == sum(1 << p for p in procs)
        for p in range(16):
            expected_owner = next(
                (o for o, ps in model.owner_procs.items() if p in ps), None
            )
            assert real.owner_of(p) == expected_owner


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(job_lists)
def test_is_schedule_invariants(raw):
    from repro.core.immediate_service import ImmediateServiceScheduler

    jobs = build_jobs(raw)
    result = run_sim(jobs, ImmediateServiceScheduler(), n_procs=N_PROCS)
    _assert_schedule_sane(jobs, result)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(job_lists)
def test_gang_schedule_invariants(raw):
    from repro.schedulers.gang import GangScheduler

    jobs = build_jobs(raw)
    result = run_sim(jobs, GangScheduler(quantum=300.0), n_procs=N_PROCS)
    _assert_schedule_sane(jobs, result)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(job_lists)
def test_speculative_schedule_invariants(raw):
    """Kills discard progress but every invariant the auditor knows
    about must still hold (conservation includes wasted time)."""
    from repro.schedulers.speculative import SpeculativeBackfillScheduler
    from repro.sim.audit import audit_result

    jobs = build_jobs(raw)
    result = run_sim(
        jobs, SpeculativeBackfillScheduler(speculation_window=300.0), n_procs=N_PROCS
    )
    assert len(result.jobs) == len(jobs)
    audit_result(result)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(job_lists)
def test_audit_accepts_every_generated_schedule(raw):
    """The auditor must never flag a schedule the driver produced."""
    from repro.core.tss import TunableSelectiveSuspensionScheduler
    from repro.sim.audit import audit_result

    jobs = build_jobs(raw)
    result = run_sim(
        jobs, TunableSelectiveSuspensionScheduler(suspension_factor=2.0), n_procs=N_PROCS
    )
    audit_result(result)
